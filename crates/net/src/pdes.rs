//! Conservative parallel discrete-event execution *inside* a single
//! gathering run — region-partitioned rounds, bit-identical to the
//! serial kernel.
//!
//! The seed-partitioned runner parallelizes *across* replications; a
//! single city-scale run still pinned one core. This module partitions
//! the node id space into contiguous regions
//! ([`RegionPartition`], cut by the same
//! spatial grid the CSR construction buckets with), executes each
//! round's per-node work region-parallel on an
//! [`ami_sim::runner::RoundPool`], and synchronizes at round barriers
//! where cross-region traffic is merged in a **fixed deterministic
//! reduction order** — region id, then node id, which for contiguous
//! id regions is exactly ascending global node id, the order the
//! serial kernel charges in.
//!
//! # Why the result is bit-identical
//!
//! A round of the serial kernel charges, per budget cell `c`: one idle
//! debit, then — sources walked in ascending id — an `(rx, tx)` pair
//! per packet relayed through `c`, with `c`'s own `tx` interleaved at
//! its id position. All `tx` debits on a cell carry one value (the
//! cached per-hop cost) and all `rx` debits another, so the cell's f64
//! fold is fully determined by three integers: packets arriving from
//! smaller-id sources, whether `c` sent, and packets from larger-id
//! sources. The parallel round records exactly those counts (packet
//! walks are budget-free in a *safe* round — fault truncation depends
//! only on round-constant state) and replays each cell's fold locally;
//! the one genuinely order-sensitive global accumulator, total spent
//! energy, is folded serially from recorded per-source hop paths in
//! source-id order.
//!
//! # The conservative part
//!
//! The replay above is only valid if no budget hit zero mid-round (a
//! mid-round exhaustion makes later walks budget-dependent). Budgets
//! only decrease within a round, so the engine checks its *lookahead
//! margin* after the fact: if every live powered cell's optimistically
//! folded budget stays positive, the serial kernel would have made
//! identical decisions (optimistic finals lower-bound serial finals)
//! and the round commits. Otherwise the round **rolls back** to its
//! start-of-round snapshot and re-executes through the serial phase —
//! the pinned oracle — so death rounds are, by construction, exactly
//! serial. The empty margin check is cheap (one compare per cell) and
//! rounds near death are rare, so city-scale healthy rounds stay
//! parallel.
//!
//! The serial loop in [`simulate_gathering_faulted_with`]
//! (crate::gather) is retained untouched as the pinned oracle, exactly
//! as the retired BinaryHeap/O(N²)-Dijkstra were; the differential
//! suite pins `par ≡ serial` at 1/2/8 threads across random fault
//! schedules.
//!
//! # The lossy engine needs no rollback
//!
//! [`simulate_lossy_gathering_faulted_par_with`] runs the *lossy*/ARQ
//! kernel on the same region machinery, and is simpler than the
//! gathering engine in one essential way: the lossy model has no energy
//! budgets, so there is no cross-packet coupling and no margin to
//! check. Every packet draws from its own counter stream
//! ([`ami_sim::rng::packet_rng`]) and its fate depends only on
//! round-constant state, so region walks commute and every round
//! commits. The commit replays the serial folds — energy subtotals in
//! ascending source order, ledger charges per `(node, category)` from
//! exactly-merged integer attempt counts.
//!
//! # When parallelism cannot pay
//!
//! Region setup, the split, and the round barrier are pure overhead on
//! small runs (BENCH_NET measured `gather_round_par` speedups of
//! 0.75–0.86 below city scale on small hosts), so every `_par` entry
//! point first checks a cheap nodes-per-worker floor
//! ([`PAR_MIN_NODES_PER_WORKER`], overridable per thread) and runs the
//! serial kernel when the run is too small — bit-identical results
//! either way, observable only through
//! [`par_serial_fallback_count`]/[`par_engaged_count`].
//!
//! [`simulate_gathering_faulted_with`]: crate::gather::simulate_gathering_faulted_with

use crate::csr::RegionPartition;
use crate::gather::{GatherState, NetworkConfig, NetworkReport, PacketFate};
use crate::lossy::{LossyConfig, LossyFate, LossyReport, LossyRoundCtx, LossyState};
use crate::routing::{PackedRoutes, RoutingStrategy};
use crate::topology::{NodeId, Position, Topology};
use ami_sim::fault::FaultSchedule;
use ami_sim::obs::{EnergyCategory, LedgerRecorder, NullRecorder, Recorder};
use ami_sim::runner::RoundPool;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// Default floor on nodes-per-worker below which the `_par` entry
/// points run the serial kernel instead of spinning up regions: below
/// city scale the per-round barrier and split overhead outweigh the
/// work (BENCH_NET measured speedups under 1.0 even at n=10⁴ on small
/// hosts). Results are bit-identical either way — the engines exist
/// precisely because parallel ≡ serial — so the threshold is purely a
/// performance heuristic.
pub const PAR_MIN_NODES_PER_WORKER: usize = 4096;

thread_local! {
    static PAR_MIN_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_FALLBACKS: Cell<u64> = const { Cell::new(0) };
    static PAR_ENGAGED: Cell<u64> = const { Cell::new(0) };
}

/// Overrides [`PAR_MIN_NODES_PER_WORKER`] on this thread (`Some(0)`
/// forces the parallel engines on, `None` restores the default).
/// Returns the previous override so callers can scope it. Benchmarks
/// force-engage so `_par` rows measure the engine, not the fallback.
pub fn set_par_min_nodes_per_worker(min: Option<usize>) -> Option<usize> {
    PAR_MIN_OVERRIDE.with(|cell| cell.replace(min))
}

/// The effective nodes-per-worker floor on this thread.
pub fn par_min_nodes_per_worker() -> usize {
    PAR_MIN_OVERRIDE
        .with(Cell::get)
        .unwrap_or(PAR_MIN_NODES_PER_WORKER)
}

/// How many `_par` calls on this thread fell back to the serial kernel.
pub fn par_serial_fallback_count() -> u64 {
    PAR_FALLBACKS.with(Cell::get)
}

/// How many `_par` calls on this thread engaged the region engine.
pub fn par_engaged_count() -> u64 {
    PAR_ENGAGED.with(Cell::get)
}

/// Zeroes both engagement counters on this thread.
pub fn reset_par_engagement_counters() {
    PAR_FALLBACKS.with(|cell| cell.set(0));
    PAR_ENGAGED.with(|cell| cell.set(0));
}

/// Whether region setup can pay for itself: more than one worker and
/// enough nodes to keep each busy between barriers.
fn parallel_pays(n: usize, threads: usize) -> bool {
    threads > 1 && n >= par_min_nodes_per_worker().saturating_mul(threads)
}

fn note_fallback() {
    PAR_FALLBACKS.with(|cell| cell.set(cell.get() + 1));
}

fn note_engaged() {
    PAR_ENGAGED.with(|cell| cell.set(cell.get() + 1));
}

/// One source's send this round: which node, and how many relay hops
/// its packet visited (the hop ids live contiguously in the region's
/// relay list, in walk order, for the spent-energy fold — a send's
/// energy trace is the same shape whether it was delivered or faulted).
struct SendRec {
    src: u32,
    relays: u32,
}

/// Per-region scratch, allocated once per run and reused every round.
#[derive(Default)]
struct RegionScratch {
    records: Vec<SendRec>,
    relays: Vec<u32>,
    offered: u64,
    disconnected: u64,
    faulted: u64,
    delivered: u64,
    /// Live powered sensors in this region (idle charges this round).
    alive_count: u64,
}

impl RegionScratch {
    fn reset(&mut self) {
        self.records.clear();
        self.relays.clear();
        self.offered = 0;
        self.disconnected = 0;
        self.faulted = 0;
        self.delivered = 0;
    }
}

/// Splits `budget` into per-region mutable slices (the partition is
/// contiguous and ascending, so the split is a plain sequence of
/// `split_at_mut`s). Each slice is wrapped in a `Mutex` purely to hand
/// workers `&mut` access through a `Sync` job — one uncontended lock
/// per region per phase.
fn split_regions<'b>(mut rest: &'b mut [f64], part: &RegionPartition) -> Vec<Mutex<&'b mut [f64]>> {
    let mut out = Vec::with_capacity(part.regions());
    let mut offset = 0usize;
    for r in 0..part.regions() {
        let range = part.range(r);
        let (head, tail) = rest.split_at_mut(range.end - offset);
        out.push(Mutex::new(head));
        rest = tail;
        offset = range.end;
    }
    out
}

/// [`simulate_gathering_faulted_with`](crate::gather::simulate_gathering_faulted_with)
/// executed region-parallel on `threads` workers — bit-identical to the
/// serial kernel at any thread count (1 included: the round machinery
/// runs, jobs execute inline).
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero.
pub fn simulate_gathering_faulted_par_with<R: Recorder>(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
    threads: usize,
    recorder: &mut R,
) -> NetworkReport {
    assert!(rounds > 0, "simulate at least one round");
    assert!(threads > 0, "at least one worker thread");
    let n = topology.len();
    if !parallel_pays(n, threads) {
        note_fallback();
        return crate::gather::simulate_gathering_faulted_with(
            topology, strategy, config, rounds, faults, recorder,
        );
    }
    note_engaged();
    let positions: Vec<Position> = topology.ids().map(|id| topology.position(id)).collect();
    // One region per worker, cut by spatial-grid candidate weight so
    // dense districts do not pin one region.
    let part = RegionPartition::balanced(&positions, config.max_hop, threads);

    let mut state = GatherState::new(topology, strategy, config, faults);
    let sink_id = state.sink.0;
    let idle = state.idle_per_round;
    let rx = state.rx_per_hop;

    // Round-start budget snapshot for rollback.
    let mut snapshot = vec![0.0f64; n];
    // Packet arrivals per relay cell, split by source side (below = from
    // smaller-id sources). Integer adds commute, so atomics stay
    // deterministic at any schedule.
    let below: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let above: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let scratch: Vec<Mutex<RegionScratch>> = (0..threads)
        .map(|_| Mutex::new(RegionScratch::default()))
        .collect();
    // Set when the round's energy margin fails: roll back and go serial.
    let rollback = AtomicBool::new(false);
    // Flat next-hop image for the phase-2 walks, refreshed when the
    // route-cache epoch moves.
    let mut packed = PackedRoutes::new(n);

    RoundPool::scoped(threads, |pool| {
        for round in 0..rounds {
            state.begin_round(round);
            packed.ensure(&state.cache);
            snapshot.copy_from_slice(&state.budget);
            rollback.store(false, Ordering::Relaxed);

            {
                // Disjoint field borrows for the parallel phases.
                let GatherState {
                    budget,
                    alive,
                    down_now,
                    cache,
                    timeline,
                    ..
                } = &mut state;
                let alive = &*alive;
                let down_now = &*down_now;
                let cache = &*cache;
                let timeline = &*timeline;
                let connected = cache.connected_flags();
                let parent = packed.parent.as_slice();
                let slices = split_regions(budget, &part);

                // Phase 1 — idle debits, counter reset, and the S1
                // margin pre-check: an idle charge that empties a live
                // cell makes relays through it budget-dependent, so the
                // whole round must run serial.
                pool.run(&|w| {
                    let mut slice = slices[w].lock().expect("region budget slice");
                    let mut region = scratch[w].lock().expect("region scratch");
                    region.reset();
                    let mut alive_count = 0u64;
                    let mut margin_gone = false;
                    for (off, id) in part.range(w).enumerate() {
                        below[id].store(0, Ordering::Relaxed);
                        above[id].store(0, Ordering::Relaxed);
                        if id == sink_id {
                            continue;
                        }
                        if alive[id] && !down_now[id] {
                            slice[off] -= idle;
                            alive_count += 1;
                            if slice[off] <= 0.0 {
                                margin_gone = true;
                            }
                        }
                    }
                    region.alive_count = alive_count;
                    if margin_gone {
                        rollback.store(true, Ordering::Relaxed);
                    }
                });

                if !rollback.load(Ordering::Relaxed) {
                    // Phase 2 — budget-free packet walks. Fault
                    // truncation depends only on round-constant state
                    // (down flags, link windows, the route table), so
                    // every fate and hop path is exact under the S1/S2
                    // margins; arrivals are tallied per relay cell,
                    // split by source side.
                    pool.run(&|w| {
                        let mut region = scratch[w].lock().expect("region scratch");
                        let region = &mut *region;
                        for src in part.range(w) {
                            if src == sink_id || !alive[src] || down_now[src] {
                                continue;
                            }
                            region.offered += 1;
                            if !connected[src] {
                                region.disconnected += 1;
                                continue;
                            }
                            let start = region.relays.len();
                            let mut from = src;
                            let mut fate = PacketFate::Delivered;
                            loop {
                                let hop = parent[from] as usize;
                                debug_assert!(
                                    hop != u32::MAX as usize,
                                    "connected route reaches the sink"
                                );
                                if (hop != sink_id && down_now[hop])
                                    || timeline.link_down(from, hop)
                                {
                                    fate = PacketFate::Fault;
                                    break;
                                }
                                if hop == sink_id {
                                    break;
                                }
                                // The packet landed on relay `hop`.
                                if src < hop {
                                    below[hop].fetch_add(1, Ordering::Relaxed);
                                } else {
                                    above[hop].fetch_add(1, Ordering::Relaxed);
                                }
                                region.relays.push(hop as u32);
                                from = hop;
                            }
                            match fate {
                                PacketFate::Delivered => region.delivered += 1,
                                PacketFate::Fault => region.faulted += 1,
                                PacketFate::DeadHop => unreachable!("walks are budget-free"),
                            }
                            region.records.push(SendRec {
                                src: src as u32,
                                relays: (region.relays.len() - start) as u32,
                            });
                        }
                    });

                    // Phase 3 — per-cell budget replay and the S2
                    // margin check. A cell's serial debit sequence is
                    // `(rx, tx)`×below, own tx, `(rx, tx)`×above, and
                    // every tx (resp. rx) debit carries one value, so
                    // this local fold reproduces the serial f64 result
                    // bit for bit. Budgets are monotone within a round,
                    // so all-positive optimistic finals prove the
                    // serial kernel never saw an exhausted hop —
                    // i.e. it made these exact walks.
                    let tx_costs = cache.tx_costs();
                    pool.run(&|w| {
                        let mut slice = slices[w].lock().expect("region budget slice");
                        let mut margin_gone = false;
                        for (off, id) in part.range(w).enumerate() {
                            if id == sink_id {
                                continue;
                            }
                            let b = below[id].load(Ordering::Relaxed);
                            let a = above[id].load(Ordering::Relaxed);
                            let sent = alive[id] && !down_now[id] && connected[id];
                            if b == 0 && a == 0 && !sent {
                                continue;
                            }
                            let txc = tx_costs[id];
                            let cell = &mut slice[off];
                            for _ in 0..b {
                                *cell -= rx;
                                *cell -= txc;
                            }
                            if sent {
                                *cell -= txc;
                            }
                            for _ in 0..a {
                                *cell -= rx;
                                *cell -= txc;
                            }
                            if alive[id] && !down_now[id] && *cell <= 0.0 {
                                margin_gone = true;
                            }
                        }
                        if margin_gone {
                            rollback.store(true, Ordering::Relaxed);
                        }
                    });
                }
            }

            if rollback.load(Ordering::Relaxed) {
                // Conservative fallback: restore the round-start budgets
                // and run the serial phase — the pinned oracle — so
                // exhaustion rounds are serial by construction.
                state.budget.copy_from_slice(&snapshot);
                state.idle_and_send(recorder);
            } else {
                commit_round(&mut state, recorder, &part, &scratch, &below, &above);
            }
            state.end_round(round);
        }
    });

    state.finish(rounds, recorder)
}

/// Folds a validated parallel round into the run state in the fixed
/// reduction order — regions ascending, nodes ascending within each,
/// which equals ascending global node id, the serial charge order.
fn commit_round<R: Recorder>(
    state: &mut GatherState<'_>,
    recorder: &mut R,
    part: &RegionPartition,
    scratch: &[Mutex<RegionScratch>],
    below: &[AtomicU32],
    above: &[AtomicU32],
) {
    let sink_id = state.sink.0;
    let idle = state.idle_per_round;
    let rx = state.rx_per_hop;
    let GatherState {
        cache,
        alive,
        down_now,
        spent,
        delivered,
        ..
    } = state;
    let tx_costs = cache.tx_costs();
    let connected = cache.connected_flags();

    // Idle energy: the serial kernel adds one identical idle quantum to
    // `spent` per live powered sensor, ascending — a pure count replay.
    // The recorder sees the same single charge per cell it would have.
    let mut offered = 0u64;
    let mut dropped_disconnected = 0u64;
    let mut dropped_fault = 0u64;
    let mut round_delivered = 0u64;
    let mut alive_total = 0u64;
    for region in scratch {
        let region = region.lock().expect("region scratch");
        alive_total += region.alive_count;
        offered += region.offered;
        dropped_disconnected += region.disconnected;
        dropped_fault += region.faulted;
        round_delivered += region.delivered;
    }
    for _ in 0..alive_total {
        *spent += idle;
    }
    for (id, (&is_alive, &is_down)) in alive.iter().zip(down_now.iter()).enumerate() {
        if id != sink_id && is_alive && !is_down {
            recorder.charge(id, EnergyCategory::Idle, idle);
        }
    }

    // Total spent energy is the one order-sensitive global fold: replay
    // the recorded walks source-ascending (region order ⇒ id order),
    // debiting the exact serial value sequence tx(src), then rx, tx(r)
    // per visited relay.
    for region in scratch {
        let region = region.lock().expect("region scratch");
        let mut cursor = 0usize;
        for rec in &region.records {
            *spent += tx_costs[rec.src as usize];
            for &relay in &region.relays[cursor..cursor + rec.relays as usize] {
                *spent += rx;
                *spent += tx_costs[relay as usize];
            }
            cursor += rec.relays as usize;
        }
    }

    // Ledger replay, ascending cell id: all tx debits on one cell carry
    // one value (likewise rx), so per-(cell, category) accumulation is
    // a count replay of the serial sequence.
    for r in 0..part.regions() {
        for id in part.range(r) {
            if id == sink_id {
                continue;
            }
            let b = below[id].load(Ordering::Relaxed) as u64;
            let a = above[id].load(Ordering::Relaxed) as u64;
            let sent = alive[id] && !down_now[id] && connected[id];
            let tx_count = b + a + u64::from(sent);
            for _ in 0..tx_count {
                recorder.charge(id, EnergyCategory::Tx, tx_costs[id]);
            }
            for _ in 0..(b + a) {
                recorder.charge(id, EnergyCategory::RxRelay, rx);
            }
        }
    }

    // Packet tallies are plain counters: bulk-commit the round's sums
    // (region-ascending). Dead-hop drops cannot occur in a committed
    // round — that is precisely what the energy margin proved.
    recorder.packets_offered(offered);
    recorder.packets_delivered(round_delivered);
    recorder.packets_dropped_disconnected(dropped_disconnected);
    recorder.packets_dropped_fault(dropped_fault);
    *delivered += round_delivered;
}

/// Per-region scratch of the lossy engine. Walks from region `w` can
/// land ARQ attempts on *any* node (routes cross regions), so each
/// region keeps full-length attempt arrays; integer counts merge
/// exactly at commit.
struct LossyRegionScratch {
    tx_attempts: Vec<u64>,
    rx_attempts: Vec<u64>,
    offered: u64,
    delivered: u64,
    faulted: u64,
    transmissions: u64,
}

impl LossyRegionScratch {
    fn new(n: usize) -> Self {
        Self {
            tx_attempts: vec![0; n],
            rx_attempts: vec![0; n],
            offered: 0,
            delivered: 0,
            faulted: 0,
            transmissions: 0,
        }
    }

    /// Clears the round tallies. The attempt arrays are cleared during
    /// the commit merge, which touches every entry anyway.
    fn reset_tallies(&mut self) {
        self.offered = 0;
        self.delivered = 0;
        self.faulted = 0;
        self.transmissions = 0;
    }
}

/// [`simulate_lossy_gathering_faulted_with`](crate::lossy::simulate_lossy_gathering_faulted_with)
/// executed region-parallel on `threads` workers — bit-identical to the
/// serial counter-RNG kernel at any thread count.
///
/// No rollback machinery exists here, because none is needed: the lossy
/// model has no energy budgets, so a packet's fate depends only on
/// round-constant state (routes, fault windows) and its own counter
/// stream ([`ami_sim::rng::packet_rng`]) — never on another packet's
/// execution. Each worker walks its region's sources with
/// [`walk_packet`](crate::lossy) — the same function the serial kernel
/// runs — into region-local scratch; the commit then replays the serial
/// folds exactly: per-packet energy subtotals added in ascending source
/// id, per-node ledger charges committed once per `(node, category)`
/// from the merged (exact, integer) attempt counts, packet tallies
/// bulk-committed.
///
/// Below [`par_min_nodes_per_worker`]×`threads` nodes the call runs the
/// serial kernel directly (identical results, less overhead); see
/// [`set_par_min_nodes_per_worker`].
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero, or the BER is outside
/// `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted_par_with<R: Recorder>(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
    threads: usize,
    recorder: &mut R,
) -> LossyReport {
    assert!(threads > 0, "at least one worker thread");
    let n = topology.len();
    if !parallel_pays(n, threads) {
        note_fallback();
        return crate::lossy::simulate_lossy_gathering_faulted_with(
            topology, config, rounds, seed, faults, recorder,
        );
    }
    note_engaged();
    let positions: Vec<Position> = topology.ids().map(|id| topology.position(id)).collect();
    let part = RegionPartition::balanced(&positions, config.max_hop, threads);

    let mut state = LossyState::new(topology, config, rounds, seed, faults);
    let sink_id = state.sink.0;
    // Per-source packet energy subtotals, one slot per node id; region
    // slices of this are the only f64s workers write.
    let mut pkt_energy = vec![0.0f64; n];
    let scratch: Vec<Mutex<LossyRegionScratch>> = (0..threads)
        .map(|_| Mutex::new(LossyRegionScratch::new(n)))
        .collect();

    RoundPool::scoped(threads, |pool| {
        for round in 0..rounds {
            state.begin_round(round);
            {
                let ctx = LossyRoundCtx {
                    sink: state.sink,
                    seed: state.seed,
                    p_hop: state.p_hop,
                    rx: state.rx,
                    max_transmissions: state.max_transmissions,
                    attempts: state.attempts,
                    attempts_f: state.attempts_f,
                    parent: &state.packed.parent,
                    tx_costs: &state.packed.tx,
                    timeline: &state.timeline,
                    down_now: &state.down_now,
                };
                let connected = state.cache.connected_flags();
                let slices = split_regions(&mut pkt_energy, &part);

                // The single parallel phase: walk every source in the
                // region. Draws come from each packet's own stream, so
                // regions cannot perturb one another.
                pool.run(&|w| {
                    let mut slice = slices[w].lock().expect("region energy slice");
                    let mut region = scratch[w].lock().expect("region scratch");
                    let region = &mut *region;
                    region.reset_tallies();
                    for (off, src) in part.range(w).enumerate() {
                        slice[off] = 0.0;
                        if src == sink_id || ctx.down_now[src] || !connected[src] {
                            continue;
                        }
                        region.offered += 1;
                        let (fate, energy) = crate::lossy::walk_packet(
                            &ctx,
                            round,
                            NodeId(src),
                            &mut region.tx_attempts,
                            &mut region.rx_attempts,
                            &mut region.transmissions,
                        );
                        slice[off] = energy;
                        match fate {
                            LossyFate::Delivered => region.delivered += 1,
                            LossyFate::Fault => region.faulted += 1,
                            LossyFate::Channel => {}
                        }
                    }
                });
            }
            commit_lossy_round(&mut state, recorder, &scratch, &pkt_energy);
            state.end_round(round);
        }
    });
    state.finish()
}

/// Folds a parallel lossy round into the run state by replaying the
/// serial folds: energy subtotals ascending source id, merged integer
/// attempt counts charged once per `(node, category)` ascending, packet
/// tallies bulk-committed region-ascending.
fn commit_lossy_round<R: Recorder>(
    state: &mut LossyState<'_>,
    recorder: &mut R,
    scratch: &[Mutex<LossyRegionScratch>],
    pkt_energy: &[f64],
) {
    let mut regions: Vec<_> = scratch
        .iter()
        .map(|region| region.lock().expect("region scratch"))
        .collect();

    // The run-total energy fold: the serial kernel adds each offered
    // packet's private subtotal in ascending source order. Slots of
    // unoffered sources are exactly 0.0 and an offered packet always
    // spends (it makes at least one attempt), so skipping zeros replays
    // the serial fold bitwise.
    for &slot in pkt_energy {
        if slot != 0.0 {
            state.energy += slot;
        }
    }

    // Ledger charges: identical `count as f64 * cost` multiplies as the
    // serial `commit_charges`, from exactly-merged integer counts. All
    // Tx charges ascending, then all RxRelay, matching the serial order.
    let tx_costs = state.cache.tx_costs();
    for (id, &tx_cost) in tx_costs.iter().enumerate() {
        let mut count = 0u64;
        for region in regions.iter_mut() {
            count += region.tx_attempts[id];
            region.tx_attempts[id] = 0;
        }
        if count > 0 {
            recorder.charge(id, EnergyCategory::Tx, count as f64 * tx_cost);
        }
    }
    for id in 0..pkt_energy.len() {
        let mut count = 0u64;
        for region in regions.iter_mut() {
            count += region.rx_attempts[id];
            region.rx_attempts[id] = 0;
        }
        if count > 0 {
            recorder.charge(id, EnergyCategory::RxRelay, count as f64 * state.rx);
        }
    }

    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut faulted = 0u64;
    let mut transmissions = 0u64;
    for region in regions.iter() {
        offered += region.offered;
        delivered += region.delivered;
        faulted += region.faulted;
        transmissions += region.transmissions;
    }
    recorder.packets_offered(offered);
    recorder.packets_delivered(delivered);
    recorder.packets_dropped_fault(faulted);
    state.offered += offered;
    state.delivered += delivered;
    state.dropped_fault += faulted;
    state.transmissions += transmissions;
}

/// [`simulate_lossy_gathering`](crate::simulate_lossy_gathering)
/// executed region-parallel on `threads` workers. See
/// [`simulate_lossy_gathering_faulted_par_with`].
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero, or the BER is outside
/// `[0, 0.5]`.
pub fn simulate_lossy_gathering_par(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    threads: usize,
) -> LossyReport {
    simulate_lossy_gathering_faulted_par(
        topology,
        config,
        rounds,
        seed,
        &FaultSchedule::empty(),
        threads,
    )
}

/// [`simulate_lossy_gathering_faulted`](crate::simulate_lossy_gathering_faulted)
/// executed region-parallel on `threads` workers. See
/// [`simulate_lossy_gathering_faulted_par_with`].
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero, or the BER is outside
/// `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted_par(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
    threads: usize,
) -> LossyReport {
    simulate_lossy_gathering_faulted_par_with(
        topology,
        config,
        rounds,
        seed,
        faults,
        threads,
        &mut NullRecorder,
    )
}

/// [`simulate_lossy_gathering_faulted_observed`](crate::simulate_lossy_gathering_faulted_observed)
/// executed region-parallel on `threads` workers: ledger and counters
/// are byte-identical to the serial counter-RNG kernel's.
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero, or the BER is outside
/// `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted_observed_par(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
    threads: usize,
) -> (LossyReport, LedgerRecorder) {
    let mut recorder = LedgerRecorder::with_nodes(topology.len());
    let report = simulate_lossy_gathering_faulted_par_with(
        topology,
        config,
        rounds,
        seed,
        faults,
        threads,
        &mut recorder,
    );
    (report, recorder)
}

/// [`simulate_gathering`](crate::simulate_gathering) executed
/// region-parallel on `threads` workers. See
/// [`simulate_gathering_faulted_par_with`].
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero.
pub fn simulate_gathering_par(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    threads: usize,
) -> NetworkReport {
    simulate_gathering_faulted_par_with(
        topology,
        strategy,
        config,
        rounds,
        &FaultSchedule::empty(),
        threads,
        &mut NullRecorder,
    )
}

/// [`simulate_gathering_observed`](crate::simulate_gathering_observed)
/// executed region-parallel on `threads` workers: ledger and counters
/// are byte-identical to the serial kernel's.
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero.
pub fn simulate_gathering_observed_par(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    threads: usize,
) -> (NetworkReport, LedgerRecorder) {
    simulate_gathering_faulted_observed_par(
        topology,
        strategy,
        config,
        rounds,
        &FaultSchedule::empty(),
        threads,
    )
}

/// [`simulate_gathering_faulted`](crate::simulate_gathering_faulted)
/// executed region-parallel on `threads` workers. See
/// [`simulate_gathering_faulted_par_with`].
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero.
pub fn simulate_gathering_faulted_par(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
    threads: usize,
) -> NetworkReport {
    simulate_gathering_faulted_par_with(
        topology,
        strategy,
        config,
        rounds,
        faults,
        threads,
        &mut NullRecorder,
    )
}

/// [`simulate_gathering_faulted_observed`](crate::simulate_gathering_faulted_observed)
/// executed region-parallel on `threads` workers.
///
/// # Panics
///
/// Panics if `rounds` or `threads` is zero.
pub fn simulate_gathering_faulted_observed_par(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
    threads: usize,
) -> (NetworkReport, LedgerRecorder) {
    let mut recorder = LedgerRecorder::with_nodes(topology.len());
    let report = simulate_gathering_faulted_par_with(
        topology,
        strategy,
        config,
        rounds,
        faults,
        threads,
        &mut recorder,
    );
    (report, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::{simulate_gathering, simulate_gathering_faulted_observed};
    use ami_sim::fault::{FaultEvent, FaultModel};
    use ami_units::{Energy, Length, Power};

    /// Forces the region engines on for this test thread: the fixtures
    /// here are far below the production nodes-per-worker floor, and
    /// the point is to exercise the engine, not the fallback.
    fn engage_engine() {
        set_par_min_nodes_per_worker(Some(0));
    }

    #[test]
    fn healthy_grid_matches_serial_at_every_thread_count() {
        engage_engine();
        let topo = Topology::grid(6, Length::from_meters(30.0));
        let config = NetworkConfig::sensor_default();
        for strategy in [
            RoutingStrategy::DirectToSink,
            RoutingStrategy::MinimumEnergy,
        ] {
            let serial = simulate_gathering(&topo, strategy, &config, 60);
            for threads in [1, 2, 8] {
                let par = simulate_gathering_par(&topo, strategy, &config, 60, threads);
                assert_eq!(par, serial, "{strategy:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn death_rounds_roll_back_and_match_serial_exactly() {
        // Tiny budgets: nodes die mid-run, exercising S1/S2 rollbacks
        // and post-death route rebuilds.
        engage_engine();
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(40.0);
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let serial = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 2000);
        assert!(serial.first_death_round.is_some(), "the fixture must die");
        for threads in [1, 2, 8] {
            let par = simulate_gathering_par(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config,
                2000,
                threads,
            );
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn faulted_observed_run_matches_serial_ledger_bitwise() {
        engage_engine();
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = Power::from_microwatts(40.0);
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let model = FaultModel {
            death_rate: 0.3,
            outage_rate: 0.3,
            outage_rounds: 12,
            link_outage_rate: 0.2,
            link_outage_rounds: 9,
            fade_rate: 0.2,
            fade_factor: 0.6,
        };
        let faults = model.schedule(2003, topo.len(), 80);
        let (serial_report, serial_obs) = simulate_gathering_faulted_observed(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config,
            80,
            &faults,
        );
        for threads in [1, 2, 8] {
            let (report, obs) = simulate_gathering_faulted_observed_par(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config,
                80,
                &faults,
                threads,
            );
            assert_eq!(report, serial_report, "{threads} threads");
            assert_eq!(obs, serial_obs, "{threads} threads");
        }
    }

    #[test]
    fn exhausted_relay_round_is_bit_exact_via_fallback() {
        // The zombie-relay fixture: node 1's budget dies mid-round, the
        // canonical case the optimistic replay must NOT commit.
        engage_engine();
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(40.0, 0.0),
            crate::topology::Position::new(80.0, 0.0),
        ]);
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = Power::ZERO;
        let bits = config.packet.total_bits();
        let tx = config
            .radio
            .transmit_energy(bits, Length::from_meters(40.0))
            .as_joules();
        let rx = config.radio.receive_energy(bits).as_joules();
        config.node_energy = Energy::from_joules(tx + rx * 0.5);
        let serial = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 5);
        assert_eq!(serial.first_death_round, Some(1));
        for threads in [1, 2, 8] {
            let par =
                simulate_gathering_par(&topo, RoutingStrategy::MinimumEnergy, &config, 5, threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn link_outage_into_the_sink_is_honored() {
        engage_engine();
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(20.0, 0.0),
        ]);
        let config = NetworkConfig::sensor_default();
        let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
            a: 1,
            b: 0,
            from: 1,
            until: 3,
        }]);
        let (serial, serial_obs) = simulate_gathering_faulted_observed(
            &topo,
            RoutingStrategy::DirectToSink,
            &config,
            4,
            &faults,
        );
        for threads in [1, 2] {
            let (par, obs) = simulate_gathering_faulted_observed_par(
                &topo,
                RoutingStrategy::DirectToSink,
                &config,
                4,
                &faults,
                threads,
            );
            assert_eq!(par, serial);
            assert_eq!(obs, serial_obs);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let _ = simulate_gathering_par(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            1,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn lossy_zero_threads_rejected() {
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let _ = simulate_lossy_gathering_par(&topo, &LossyConfig::bruised_channel(), 1, 2003, 0);
    }

    mod lossy_par {
        use super::*;
        use crate::lossy::{
            simulate_lossy_gathering, simulate_lossy_gathering_faulted,
            simulate_lossy_gathering_faulted_observed,
        };

        #[test]
        fn healthy_lossy_grid_matches_serial_at_every_thread_count() {
            engage_engine();
            let topo = Topology::grid(6, Length::from_meters(30.0));
            let config = LossyConfig::bruised_channel();
            let serial = simulate_lossy_gathering(&topo, &config, 80, 2003);
            assert!(serial.delivered > 0 && serial.delivered < serial.offered);
            for threads in [1, 2, 8] {
                let par = simulate_lossy_gathering_par(&topo, &config, 80, 2003, threads);
                assert_eq!(par, serial, "{threads} threads");
            }
        }

        #[test]
        fn faulted_lossy_observed_run_matches_serial_ledger_bitwise() {
            engage_engine();
            let topo = Topology::grid(5, Length::from_meters(30.0));
            let config = LossyConfig::bruised_channel();
            let model = FaultModel {
                death_rate: 0.2,
                outage_rate: 0.3,
                outage_rounds: 10,
                link_outage_rate: 0.2,
                link_outage_rounds: 8,
                fade_rate: 0.0,
                fade_factor: 1.0,
            };
            let faults = model.schedule(5, topo.len(), 80);
            let (serial_report, serial_obs) =
                simulate_lossy_gathering_faulted_observed(&topo, &config, 80, 9, &faults);
            assert!(serial_report.dropped_fault > 0, "fixture must fault");
            for threads in [1, 2, 8] {
                let (report, obs) = simulate_lossy_gathering_faulted_observed_par(
                    &topo, &config, 80, 9, &faults, threads,
                );
                assert_eq!(report, serial_report, "{threads} threads");
                assert_eq!(obs, serial_obs, "{threads} threads");
            }
        }

        #[test]
        fn lossy_fault_schedule_matches_serial_report() {
            engage_engine();
            let topo = Topology::grid(4, Length::from_meters(30.0));
            let config = LossyConfig::bruised_channel();
            let faults = FaultSchedule::new(vec![
                FaultEvent::NodeDeath { node: 5, round: 10 },
                FaultEvent::LinkOutage {
                    a: 3,
                    b: 0,
                    from: 4,
                    until: 20,
                },
            ]);
            let serial = simulate_lossy_gathering_faulted(&topo, &config, 40, 7, &faults);
            for threads in [2, 8] {
                let par =
                    simulate_lossy_gathering_faulted_par(&topo, &config, 40, 7, &faults, threads);
                assert_eq!(par, serial, "{threads} threads");
            }
        }
    }

    mod fallback {
        use super::*;
        use crate::lossy::simulate_lossy_gathering;

        #[test]
        fn small_runs_fall_back_to_serial_and_count_it() {
            // Default heuristic: a 16-node grid can never cover the
            // per-worker floor, so `_par` must run the serial kernel —
            // observable only through the counters, because the results
            // are bit-identical either way.
            set_par_min_nodes_per_worker(None);
            reset_par_engagement_counters();
            let topo = Topology::grid(4, Length::from_meters(30.0));
            let gather = simulate_gathering_par(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &NetworkConfig::sensor_default(),
                10,
                8,
            );
            let lossy =
                simulate_lossy_gathering_par(&topo, &LossyConfig::bruised_channel(), 10, 3, 8);
            assert_eq!(par_serial_fallback_count(), 2);
            assert_eq!(par_engaged_count(), 0);
            assert_eq!(
                gather,
                simulate_gathering(
                    &topo,
                    RoutingStrategy::MinimumEnergy,
                    &NetworkConfig::sensor_default(),
                    10
                )
            );
            assert_eq!(
                lossy,
                simulate_lossy_gathering(&topo, &LossyConfig::bruised_channel(), 10, 3)
            );
        }

        #[test]
        fn one_worker_always_falls_back() {
            set_par_min_nodes_per_worker(Some(0));
            reset_par_engagement_counters();
            let topo = Topology::grid(3, Length::from_meters(30.0));
            let _ = simulate_lossy_gathering_par(&topo, &LossyConfig::bruised_channel(), 5, 1, 1);
            assert_eq!(par_serial_fallback_count(), 1);
            assert_eq!(par_engaged_count(), 0);
        }

        #[test]
        fn override_engages_and_counts() {
            set_par_min_nodes_per_worker(Some(0));
            reset_par_engagement_counters();
            let topo = Topology::grid(3, Length::from_meters(30.0));
            let _ = simulate_lossy_gathering_par(&topo, &LossyConfig::bruised_channel(), 5, 1, 2);
            assert_eq!(par_engaged_count(), 1);
            assert_eq!(par_serial_fallback_count(), 0);
            let restored = set_par_min_nodes_per_worker(None);
            assert_eq!(restored, Some(0));
            assert_eq!(par_min_nodes_per_worker(), PAR_MIN_NODES_PER_WORKER);
        }
    }
}
