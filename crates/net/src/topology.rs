//! Node layouts for ambient networks.

use crate::csr::CsrAdjacency;
use ami_sim::sim_rng;
use ami_units::Length;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Index of a node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A planar position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// x coordinate in metres.
    pub x: f64,
    /// y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "coordinates must be finite");
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(&self, other: &Position) -> Length {
        Length::from_meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }
}

/// Lazily-built single-slot cache for the CSR hop graph of the most
/// recently requested range. Positions are immutable after
/// construction, so a cached graph never goes stale — the slot only
/// turns over when a *different* range is requested.
struct CsrSlot(Mutex<Option<Arc<CsrAdjacency>>>);

impl CsrSlot {
    fn empty() -> Self {
        Self(Mutex::new(None))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Arc<CsrAdjacency>>> {
        // A poisoned slot only means a build panicked; the cache holds
        // no invariants beyond "present means valid", so recover.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A set of node positions with a designated sink (node 0).
///
/// The topology carries a lazily-built [`CsrAdjacency`] cache (one slot,
/// keyed by range) so hot paths resolve bounded-range neighbourhoods
/// without rescanning all pairs; see [`Topology::csr_within`].
///
/// # Example
///
/// ```
/// use ami_net::Topology;
/// use ami_units::Length;
///
/// let grid = Topology::grid(3, Length::from_meters(10.0));
/// assert_eq!(grid.len(), 9);
/// assert_eq!(grid.sink().0, 0);
/// ```
#[derive(Debug)]
pub struct Topology {
    positions: Vec<Position>,
    csr: CsrSlot,
}

impl std::fmt::Debug for CsrSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.lock().as_ref() {
            Some(csr) => write!(f, "CsrSlot(cached, {} edges)", csr.edge_count()),
            None => f.write_str("CsrSlot(empty)"),
        }
    }
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        Self {
            positions: self.positions.clone(),
            // The clone shares the already-built graph (it is immutable
            // behind the Arc), saving a rebuild on cloned topologies.
            csr: CsrSlot(Mutex::new(self.csr.lock().clone())),
        }
    }
}

/// Equality is positional: the CSR cache is derived state and ignored.
impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        self.positions == other.positions
    }
}

/// Serializes exactly like the historical derived impl: a struct named
/// `Topology` with the single field `positions` (the cache is derived
/// state and never leaves the process).
impl Serialize for Topology {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut state = serializer.serialize_struct("Topology", 1)?;
        state.serialize_field("positions", &self.positions)?;
        state.end()
    }
}

impl<'de> Deserialize<'de> for Topology {
    fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        // Mirrors the vendored derive's guarded stub: nothing in the
        // toolkit deserializes today.
        unimplemented!("mini-serde stand-in: deserialization of `Topology` is not supported")
    }
}

impl Topology {
    /// Builds a topology from explicit positions; node 0 is the sink.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions are given.
    pub fn new(positions: Vec<Position>) -> Self {
        assert!(
            positions.len() >= 2,
            "a network needs a sink and at least one node"
        );
        Self {
            positions,
            csr: CsrSlot::empty(),
        }
    }

    /// A square grid of `side × side` nodes spaced `spacing` apart, with
    /// the sink at the corner (0, 0).
    ///
    /// # Panics
    ///
    /// Panics if `side < 2` or spacing is not positive.
    pub fn grid(side: usize, spacing: Length) -> Self {
        assert!(side >= 2, "grid needs at least 2x2 nodes");
        assert!(spacing.as_meters() > 0.0, "spacing must be positive");
        let s = spacing.as_meters();
        let mut positions = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                positions.push(Position::new(col as f64 * s, row as f64 * s));
            }
        }
        Self::new(positions)
    }

    /// `n` nodes uniformly random in a `field × field` square, sink at the
    /// centre; deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `field` is not positive.
    pub fn random(n: usize, field: Length, seed: u64) -> Self {
        assert!(n >= 2, "a network needs a sink and at least one node");
        assert!(field.as_meters() > 0.0, "field size must be positive");
        let f = field.as_meters();
        let mut rng = sim_rng(seed);
        let mut positions = vec![Position::new(f / 2.0, f / 2.0)];
        for _ in 1..n {
            positions.push(Position::new(
                rng.random_range(0.0..f),
                rng.random_range(0.0..f),
            ));
        }
        Self::new(positions)
    }

    /// `n` leaf nodes on a circle of `radius` around a central sink.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1` or `radius` is not positive.
    pub fn star(n: usize, radius: Length) -> Self {
        assert!(n >= 1, "a star needs at least one leaf");
        assert!(radius.as_meters() > 0.0, "radius must be positive");
        let r = radius.as_meters();
        let mut positions = vec![Position::new(0.0, 0.0)];
        for k in 0..n {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            positions.push(Position::new(r * theta.cos(), r * theta.sin()));
        }
        Self::new(positions)
    }

    /// Number of nodes including the sink.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `false` always (a topology has at least two nodes), provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The sink node (always node 0).
    pub fn sink(&self) -> NodeId {
        NodeId(0)
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }

    /// All positions, id-ordered (sink first).
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Length {
        self.positions[a.0].distance_to(&self.positions[b.0])
    }

    /// All node ids, sink first.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(NodeId)
    }

    /// Ids of all non-sink nodes.
    pub fn sensor_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.positions.len()).map(NodeId)
    }

    /// The CSR hop graph for `range`, built on first request and cached
    /// (single slot, bitwise range key) for every later caller — healthy
    /// simulations pay the O(N²) scan exactly once.
    pub fn csr_within(&self, range: Length) -> Arc<CsrAdjacency> {
        let mut slot = self.csr.lock();
        if let Some(csr) = slot.as_ref() {
            if csr.matches_range(range) {
                return Arc::clone(csr);
            }
        }
        let built = Arc::new(CsrAdjacency::build(&self.positions, range));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Neighbours of `node` within `range` (excluding itself), ascending
    /// by id. Backed by the CSR cache; prefer
    /// [`neighbors_within_iter`](Topology::neighbors_within_iter) in hot
    /// paths to skip this `Vec` allocation.
    pub fn neighbors_within(&self, node: NodeId, range: Length) -> Vec<NodeId> {
        self.csr_within(range)
            .neighbors(node.0)
            .iter()
            .map(|&v| NodeId(v as usize))
            .collect()
    }

    /// Allocation-free variant of
    /// [`neighbors_within`](Topology::neighbors_within): iterates the
    /// cached CSR row directly (same ascending-id order).
    pub fn neighbors_within_iter(&self, node: NodeId, range: Length) -> NeighborsWithin {
        let csr = self.csr_within(range);
        let len = csr.neighbors(node.0).len();
        NeighborsWithin {
            csr,
            node: node.0,
            cursor: 0,
            len,
        }
    }

    /// The maximum node-to-sink distance (network radius).
    pub fn radius(&self) -> Length {
        self.sensor_ids()
            .map(|id| self.distance(self.sink(), id))
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Length::ZERO)
    }
}

/// Iterator over one cached CSR row; see
/// [`Topology::neighbors_within_iter`]. Holds the graph alive via `Arc`,
/// so it stays valid even if the topology caches a different range
/// mid-iteration.
pub struct NeighborsWithin {
    csr: Arc<CsrAdjacency>,
    node: usize,
    cursor: usize,
    len: usize,
}

impl Iterator for NeighborsWithin {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let row = self.csr.neighbors(self.node);
        let v = *row.get(self.cursor)?;
        self.cursor += 1;
        Some(NodeId(v as usize))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.len - self.cursor;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for NeighborsWithin {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout() {
        let g = Topology::grid(3, Length::from_meters(10.0));
        assert_eq!(g.len(), 9);
        assert_eq!(g.position(NodeId(0)).x, 0.0);
        assert_eq!(g.position(NodeId(4)).x, 10.0); // centre of 3x3
        assert_eq!(g.position(NodeId(4)).y, 10.0);
        // Corner-to-corner distance.
        let d = g.distance(NodeId(0), NodeId(8));
        assert!((d.as_meters() - 20.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = Topology::random(20, Length::from_meters(100.0), 7);
        let b = Topology::random(20, Length::from_meters(100.0), 7);
        let c = Topology::random(20, Length::from_meters(100.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Sink at the field centre.
        assert_eq!(a.position(a.sink()).x, 50.0);
    }

    #[test]
    fn star_leaves_are_equidistant() {
        let s = Topology::star(8, Length::from_meters(25.0));
        assert_eq!(s.len(), 9);
        for id in s.sensor_ids() {
            assert!((s.distance(s.sink(), id).as_meters() - 25.0).abs() < 1e-9);
        }
        assert!((s.radius().as_meters() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_within_range() {
        let g = Topology::grid(3, Length::from_meters(10.0));
        // Centre node: 4 orthogonal at 10 m, 4 diagonal at 14.1 m.
        let close = g.neighbors_within(NodeId(4), Length::from_meters(10.5));
        assert_eq!(close.len(), 4);
        let all = g.neighbors_within(NodeId(4), Length::from_meters(15.0));
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn neighbors_iter_matches_vec_variant() {
        let g = Topology::random(30, Length::from_meters(90.0), 5);
        for range_m in [20.0, 45.0] {
            let range = Length::from_meters(range_m);
            for id in g.ids() {
                let iter = g.neighbors_within_iter(id, range);
                assert_eq!(iter.len(), g.neighbors_within(id, range).len());
                let collected: Vec<NodeId> = g.neighbors_within_iter(id, range).collect();
                assert_eq!(collected, g.neighbors_within(id, range));
            }
        }
    }

    #[test]
    fn csr_cache_is_reused_for_same_range_and_replaced_on_change() {
        let g = Topology::grid(4, Length::from_meters(10.0));
        let a = g.csr_within(Length::from_meters(12.0));
        let b = g.csr_within(Length::from_meters(12.0));
        assert!(Arc::ptr_eq(&a, &b), "same range must hit the cache");
        let c = g.csr_within(Length::from_meters(20.0));
        assert!(!Arc::ptr_eq(&a, &c));
        // The clone shares the currently-cached graph.
        let cloned = g.clone();
        let d = cloned.csr_within(Length::from_meters(20.0));
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(g, cloned);
    }

    #[test]
    #[should_panic(expected = "sink and at least one node")]
    fn singleton_rejected() {
        let _ = Topology::new(vec![Position::new(0.0, 0.0)]);
    }
}
