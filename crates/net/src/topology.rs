//! Node layouts for ambient networks.

use ami_sim::sim_rng;
use ami_units::Length;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A planar position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// x coordinate in metres.
    pub x: f64,
    /// y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "coordinates must be finite");
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(&self, other: &Position) -> Length {
        Length::from_meters(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }
}

/// A set of node positions with a designated sink (node 0).
///
/// # Example
///
/// ```
/// use ami_net::Topology;
/// use ami_units::Length;
///
/// let grid = Topology::grid(3, Length::from_meters(10.0));
/// assert_eq!(grid.len(), 9);
/// assert_eq!(grid.sink().0, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Position>,
}

impl Topology {
    /// Builds a topology from explicit positions; node 0 is the sink.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions are given.
    pub fn new(positions: Vec<Position>) -> Self {
        assert!(
            positions.len() >= 2,
            "a network needs a sink and at least one node"
        );
        Self { positions }
    }

    /// A square grid of `side × side` nodes spaced `spacing` apart, with
    /// the sink at the corner (0, 0).
    ///
    /// # Panics
    ///
    /// Panics if `side < 2` or spacing is not positive.
    pub fn grid(side: usize, spacing: Length) -> Self {
        assert!(side >= 2, "grid needs at least 2x2 nodes");
        assert!(spacing.as_meters() > 0.0, "spacing must be positive");
        let s = spacing.as_meters();
        let mut positions = Vec::with_capacity(side * side);
        for row in 0..side {
            for col in 0..side {
                positions.push(Position::new(col as f64 * s, row as f64 * s));
            }
        }
        Self::new(positions)
    }

    /// `n` nodes uniformly random in a `field × field` square, sink at the
    /// centre; deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `field` is not positive.
    pub fn random(n: usize, field: Length, seed: u64) -> Self {
        assert!(n >= 2, "a network needs a sink and at least one node");
        assert!(field.as_meters() > 0.0, "field size must be positive");
        let f = field.as_meters();
        let mut rng = sim_rng(seed);
        let mut positions = vec![Position::new(f / 2.0, f / 2.0)];
        for _ in 1..n {
            positions.push(Position::new(
                rng.random_range(0.0..f),
                rng.random_range(0.0..f),
            ));
        }
        Self::new(positions)
    }

    /// `n` leaf nodes on a circle of `radius` around a central sink.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1` or `radius` is not positive.
    pub fn star(n: usize, radius: Length) -> Self {
        assert!(n >= 1, "a star needs at least one leaf");
        assert!(radius.as_meters() > 0.0, "radius must be positive");
        let r = radius.as_meters();
        let mut positions = vec![Position::new(0.0, 0.0)];
        for k in 0..n {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            positions.push(Position::new(r * theta.cos(), r * theta.sin()));
        }
        Self::new(positions)
    }

    /// Number of nodes including the sink.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `false` always (a topology has at least two nodes), provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The sink node (always node 0).
    pub fn sink(&self) -> NodeId {
        NodeId(0)
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }

    /// Distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Length {
        self.positions[a.0].distance_to(&self.positions[b.0])
    }

    /// All node ids, sink first.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(NodeId)
    }

    /// Ids of all non-sink nodes.
    pub fn sensor_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.positions.len()).map(NodeId)
    }

    /// Neighbours of `node` within `range` (excluding itself).
    pub fn neighbors_within(&self, node: NodeId, range: Length) -> Vec<NodeId> {
        self.ids()
            .filter(|&other| other != node && self.distance(node, other) <= range)
            .collect()
    }

    /// The maximum node-to-sink distance (network radius).
    pub fn radius(&self) -> Length {
        self.sensor_ids()
            .map(|id| self.distance(self.sink(), id))
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Length::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout() {
        let g = Topology::grid(3, Length::from_meters(10.0));
        assert_eq!(g.len(), 9);
        assert_eq!(g.position(NodeId(0)).x, 0.0);
        assert_eq!(g.position(NodeId(4)).x, 10.0); // centre of 3x3
        assert_eq!(g.position(NodeId(4)).y, 10.0);
        // Corner-to-corner distance.
        let d = g.distance(NodeId(0), NodeId(8));
        assert!((d.as_meters() - 20.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = Topology::random(20, Length::from_meters(100.0), 7);
        let b = Topology::random(20, Length::from_meters(100.0), 7);
        let c = Topology::random(20, Length::from_meters(100.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Sink at the field centre.
        assert_eq!(a.position(a.sink()).x, 50.0);
    }

    #[test]
    fn star_leaves_are_equidistant() {
        let s = Topology::star(8, Length::from_meters(25.0));
        assert_eq!(s.len(), 9);
        for id in s.sensor_ids() {
            assert!((s.distance(s.sink(), id).as_meters() - 25.0).abs() < 1e-9);
        }
        assert!((s.radius().as_meters() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_within_range() {
        let g = Topology::grid(3, Length::from_meters(10.0));
        // Centre node: 4 orthogonal at 10 m, 4 diagonal at 14.1 m.
        let close = g.neighbors_within(NodeId(4), Length::from_meters(10.5));
        assert_eq!(close.len(), 4);
        let all = g.neighbors_within(NodeId(4), Length::from_meters(15.0));
        assert_eq!(all.len(), 8);
    }

    #[test]
    #[should_panic(expected = "sink and at least one node")]
    fn singleton_rejected() {
        let _ = Topology::new(vec![Position::new(0.0, 0.0)]);
    }
}
