//! In-network aggregation: relays fuse their subtree's reports.
//!
//! Ambient intelligence is about *information*, not packets: a relay that
//! fuses its children's readings (averaging, compressive summaries) into
//! its own report forwards far fewer bits. The `fusion` parameter scales
//! how much of each received payload survives fusion: `1.0` forwards
//! everything (no aggregation), `0.0` absorbs children's payloads into a
//! fixed-size summary. Experiment A5 sweeps it.

use crate::routing::{build_routes, RoutingStrategy};
use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::{DataVolume, Energy, EnergyPerBit, Length};
use serde::{Deserialize, Serialize};

/// Result of one aggregated-gathering round over a static tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationReport {
    /// Payload information generated across all sensors per round.
    pub offered_volume: DataVolume,
    /// Bits arriving at the sink per round (post-fusion).
    pub sink_volume: DataVolume,
    /// Total radio energy per round (all transmits and relay receives).
    pub round_energy: Energy,
    /// Energy per bit of *generated* information (the AmI-relevant metric:
    /// the sink learns about every reading even when bits were fused).
    pub energy_per_generated_bit: EnergyPerBit,
    /// Nodes with no route to the sink.
    pub disconnected: usize,
}

/// Evaluates one round of tree-based gathering with fusion factor
/// `fusion` on the minimum-energy routing tree.
///
/// Every node generates `payload` bits; a relay transmits its own payload
/// plus `fusion ×` the payload bits it received. Framing overhead is
/// charged per transmission.
///
/// # Panics
///
/// Panics if `fusion` is outside `[0, 1]`.
pub fn analyze_aggregation(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
    payload: DataVolume,
    framing: DataVolume,
    fusion: f64,
) -> AggregationReport {
    assert!(
        (0.0..=1.0).contains(&fusion),
        "fusion factor must lie in [0, 1]"
    );
    let table = build_routes(topology, RoutingStrategy::MinimumEnergy, radio, max_hop);
    let n = topology.len();

    let mut disconnected = 0usize;
    for id in topology.sensor_ids() {
        if table[id.0].is_none() {
            disconnected += 1;
        }
    }

    // Post-order accumulation of transmitted payload bits per node:
    // `tx[v] = payload + fusion × Σ_children tx[c]`, the child sum
    // folded in ascending child id. One iterative bottom-up pass over
    // the whole forest computes every node's value exactly once — the
    // retired per-node recursion (kept as the test oracle below)
    // re-walked each node's entire subtree, which is O(N²) on path-like
    // trees and one stack frame per hop, a stack overflow on the deep
    // routing trees city-scale fields produce.
    let tx = tx_payload_forest(&table, n, payload.as_bits(), fusion);

    let mut round_energy = 0.0;
    let mut sink_volume = 0.0;
    // Walk every node (except the sink), computing its transmission.
    for id in topology.sensor_ids() {
        let Some(parent) = table[id.0] else { continue };
        let tx_bits = tx[id.0];
        let frame = DataVolume::from_bits(tx_bits + framing.as_bits());
        let d = topology.distance(id, parent);
        round_energy += radio.transmit_energy(frame, d).as_joules();
        if parent == topology.sink() {
            sink_volume += tx_bits;
        } else {
            round_energy += radio.receive_energy(frame).as_joules();
        }
    }

    let connected = (n - 1 - disconnected) as f64;
    let offered = payload.as_bits() * connected;
    AggregationReport {
        offered_volume: DataVolume::from_bits(offered),
        sink_volume: DataVolume::from_bits(sink_volume),
        round_energy: Energy::from_joules(round_energy),
        energy_per_generated_bit: EnergyPerBit::new(if offered > 0.0 {
            round_energy / offered
        } else {
            0.0
        }),
        disconnected,
    }
}

/// Transmitted payload bits for every node of the routing forest, by
/// one iterative post-order pass with memoized subtree sums.
///
/// Bit-exactness with the recursive definition rests on two order
/// guarantees: children of one parent all sit exactly one depth level
/// below it, and each depth bucket is filled by an ascending id scan —
/// so `received[parent]` accumulates child values in ascending child
/// id, the same order the children-list recursion summed in.
fn tx_payload_forest(table: &[Option<NodeId>], n: usize, payload: f64, fusion: f64) -> Vec<f64> {
    // Depth of every node below its forest root (the sink, or any
    // disconnected node), resolved by iterative chain-walking with
    // memoization: each node is pushed at most once, so the whole pass
    // is O(N) regardless of tree shape.
    const UNRESOLVED: usize = usize::MAX;
    let mut depth = vec![UNRESOLVED; n];
    for (id, parent) in table.iter().enumerate() {
        if parent.is_none() {
            depth[id] = 0;
        }
    }
    let mut chain: Vec<usize> = Vec::new();
    for start in 0..n {
        let mut v = start;
        while depth[v] == UNRESOLVED {
            chain.push(v);
            v = table[v].expect("unresolved nodes have parents").0;
        }
        let mut d = depth[v];
        while let Some(u) = chain.pop() {
            d += 1;
            depth[u] = d;
        }
    }

    // Bucket nodes by depth (ascending id within a bucket), then fold
    // bottom-up: by the time a level is processed, every child one
    // level deeper has already added its tx value to `received`.
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_depth + 1];
    for (id, &d) in depth.iter().enumerate() {
        buckets[d].push(id);
    }
    let mut received = vec![0.0f64; n];
    let mut tx = vec![0.0f64; n];
    for level in (0..=max_depth).rev() {
        for &v in &buckets[level] {
            tx[v] = payload + fusion * received[v];
            if let Some(parent) = table[v] {
                received[parent.0] += tx[v];
            }
        }
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Position;

    fn setup() -> (Topology, RadioEnergyModel) {
        (
            Topology::grid(4, Length::from_meters(30.0)),
            RadioEnergyModel::short_range_2003(),
        )
    }

    fn run(fusion: f64) -> AggregationReport {
        let (topo, radio) = setup();
        analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            fusion,
        )
    }

    #[test]
    fn no_fusion_delivers_everything() {
        let report = run(1.0);
        assert_eq!(report.disconnected, 0);
        assert!(
            (report.sink_volume.as_bits() - report.offered_volume.as_bits()).abs() < 1e-6,
            "fusion=1 must deliver every offered bit"
        );
    }

    #[test]
    fn full_fusion_delivers_one_summary_per_sink_child() {
        let (topo, radio) = setup();
        let report = analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            0.0,
        );
        // Each sink-adjacent child transmits exactly one payload.
        let payload_bits = 16.0 * 8.0;
        let ratio = report.sink_volume.as_bits() / payload_bits;
        assert!((1.0..15.0).contains(&ratio));
        assert!(report.sink_volume < report.offered_volume);
    }

    #[test]
    fn energy_decreases_monotonically_with_fusion() {
        let e1 = run(1.0).round_energy;
        let e05 = run(0.5).round_energy;
        let e0 = run(0.0).round_energy;
        assert!(e0 < e05 && e05 < e1, "{e0} < {e05} < {e1}");
    }

    #[test]
    fn energy_per_generated_bit_improves_with_fusion() {
        assert!(run(0.0).energy_per_generated_bit < run(1.0).energy_per_generated_bit);
    }

    #[test]
    fn disconnected_nodes_counted() {
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(10.0, 0.0),
            crate::topology::Position::new(500.0, 0.0), // marooned
        ]);
        let radio = RadioEnergyModel::short_range_2003();
        let report = analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            1.0,
        );
        assert_eq!(report.disconnected, 1);
    }

    #[test]
    #[should_panic(expected = "fusion factor")]
    fn bad_fusion_rejected() {
        let _ = run(1.5);
    }

    /// The retired per-node recursion, kept verbatim as the bit-exact
    /// oracle for the iterative forest pass.
    fn tx_payload_recursive(
        node: NodeId,
        children: &[Vec<NodeId>],
        payload: f64,
        fusion: f64,
    ) -> (f64, f64, usize) {
        let mut received = 0.0;
        let mut count = 0usize;
        for &child in &children[node.0] {
            let (child_tx, _, child_count) = tx_payload_recursive(child, children, payload, fusion);
            received += child_tx;
            count += child_count;
        }
        (payload + fusion * received, received, count + 1)
    }

    #[test]
    fn iterative_forest_pass_matches_the_recursive_oracle_bitwise() {
        let radio = RadioEnergyModel::short_range_2003();
        let max_hop = Length::from_meters(45.0);
        let payload = 16.0 * 8.0;
        let mut layouts: Vec<Topology> = (0..6u64)
            .map(|seed| Topology::random(80, Length::from_meters(260.0), seed))
            .collect();
        layouts.push(Topology::grid(7, Length::from_meters(30.0)));
        for (k, topo) in layouts.iter().enumerate() {
            let table = build_routes(topo, RoutingStrategy::MinimumEnergy, &radio, max_hop);
            let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); topo.len()];
            for id in topo.sensor_ids() {
                if let Some(parent) = table[id.0] {
                    children[parent.0].push(id);
                }
            }
            for fusion in [0.0, 0.3, 0.7, 1.0] {
                let fast = tx_payload_forest(&table, topo.len(), payload, fusion);
                for id in topo.sensor_ids() {
                    if table[id.0].is_none() {
                        continue;
                    }
                    let (slow, _, _) = tx_payload_recursive(id, &children, payload, fusion);
                    assert_eq!(
                        fast[id.0].to_bits(),
                        slow.to_bits(),
                        "layout {k} fusion {fusion} node {}",
                        id.0
                    );
                }
            }
        }
    }

    #[test]
    fn deep_path_tree_aggregates_without_overflow() {
        // A pure relay chain — the worst case for the retired recursion
        // (one stack frame per hop, O(N²) total work). The iterative
        // pass must handle city-scale depth in one linear sweep. Debug
        // builds use a shorter chain purely for wall-clock; the release
        // run exercises the full n = 100 000 acceptance depth.
        let n: usize = if cfg!(debug_assertions) {
            20_000
        } else {
            100_000
        };
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(i as f64 * 40.0, 0.0))
            .collect();
        let topo = Topology::new(positions);
        let radio = RadioEnergyModel::short_range_2003();
        let payload = DataVolume::from_bytes(16.0);
        let report = analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            payload,
            DataVolume::from_bits(112.0),
            0.5,
        );
        assert_eq!(report.disconnected, 0, "a 40 m chain is fully connected");
        // With fusion ½ on a chain the sink-adjacent node transmits
        // payload × Σ 2⁻ᵏ — at this depth the partial sum rounds to
        // exactly 2 payloads in f64.
        let sink_bits = report.sink_volume.as_bits();
        assert!(sink_bits > payload.as_bits() && sink_bits <= 2.0 * payload.as_bits());
    }
}
