//! In-network aggregation: relays fuse their subtree's reports.
//!
//! Ambient intelligence is about *information*, not packets: a relay that
//! fuses its children's readings (averaging, compressive summaries) into
//! its own report forwards far fewer bits. The `fusion` parameter scales
//! how much of each received payload survives fusion: `1.0` forwards
//! everything (no aggregation), `0.0` absorbs children's payloads into a
//! fixed-size summary. Experiment A5 sweeps it.

use crate::routing::{build_routes, RoutingStrategy};
use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::{DataVolume, Energy, EnergyPerBit, Length};
use serde::{Deserialize, Serialize};

/// Result of one aggregated-gathering round over a static tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationReport {
    /// Payload information generated across all sensors per round.
    pub offered_volume: DataVolume,
    /// Bits arriving at the sink per round (post-fusion).
    pub sink_volume: DataVolume,
    /// Total radio energy per round (all transmits and relay receives).
    pub round_energy: Energy,
    /// Energy per bit of *generated* information (the AmI-relevant metric:
    /// the sink learns about every reading even when bits were fused).
    pub energy_per_generated_bit: EnergyPerBit,
    /// Nodes with no route to the sink.
    pub disconnected: usize,
}

/// Evaluates one round of tree-based gathering with fusion factor
/// `fusion` on the minimum-energy routing tree.
///
/// Every node generates `payload` bits; a relay transmits its own payload
/// plus `fusion ×` the payload bits it received. Framing overhead is
/// charged per transmission.
///
/// # Panics
///
/// Panics if `fusion` is outside `[0, 1]`.
pub fn analyze_aggregation(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
    payload: DataVolume,
    framing: DataVolume,
    fusion: f64,
) -> AggregationReport {
    assert!(
        (0.0..=1.0).contains(&fusion),
        "fusion factor must lie in [0, 1]"
    );
    let table = build_routes(topology, RoutingStrategy::MinimumEnergy, radio, max_hop);
    let n = topology.len();

    // Children lists of the routing tree.
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut disconnected = 0usize;
    for id in topology.sensor_ids() {
        match table[id.0] {
            Some(parent) => children[parent.0].push(id),
            None => disconnected += 1,
        }
    }

    // Post-order accumulation of transmitted payload bits per node.
    fn tx_payload(
        node: NodeId,
        children: &[Vec<NodeId>],
        payload: f64,
        fusion: f64,
    ) -> (f64, f64, usize) {
        // Returns (this node's tx payload bits, subtree energy-relevant
        // received bits at this node, subtree node count).
        let mut received = 0.0;
        let mut count = 0usize;
        for &child in &children[node.0] {
            let (child_tx, _, child_count) = tx_payload(child, children, payload, fusion);
            received += child_tx;
            count += child_count;
        }
        (payload + fusion * received, received, count + 1)
    }

    let mut round_energy = 0.0;
    let mut sink_volume = 0.0;
    // Walk every node (except the sink), computing its transmission.
    for id in topology.sensor_ids() {
        let Some(parent) = table[id.0] else { continue };
        let (tx_bits, _, _) = tx_payload(id, &children, payload.as_bits(), fusion);
        let frame = DataVolume::from_bits(tx_bits + framing.as_bits());
        let d = topology.distance(id, parent);
        round_energy += radio.transmit_energy(frame, d).as_joules();
        if parent == topology.sink() {
            sink_volume += tx_bits;
        } else {
            round_energy += radio.receive_energy(frame).as_joules();
        }
    }

    let connected = (n - 1 - disconnected) as f64;
    let offered = payload.as_bits() * connected;
    AggregationReport {
        offered_volume: DataVolume::from_bits(offered),
        sink_volume: DataVolume::from_bits(sink_volume),
        round_energy: Energy::from_joules(round_energy),
        energy_per_generated_bit: EnergyPerBit::new(if offered > 0.0 {
            round_energy / offered
        } else {
            0.0
        }),
        disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, RadioEnergyModel) {
        (
            Topology::grid(4, Length::from_meters(30.0)),
            RadioEnergyModel::short_range_2003(),
        )
    }

    fn run(fusion: f64) -> AggregationReport {
        let (topo, radio) = setup();
        analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            fusion,
        )
    }

    #[test]
    fn no_fusion_delivers_everything() {
        let report = run(1.0);
        assert_eq!(report.disconnected, 0);
        assert!(
            (report.sink_volume.as_bits() - report.offered_volume.as_bits()).abs() < 1e-6,
            "fusion=1 must deliver every offered bit"
        );
    }

    #[test]
    fn full_fusion_delivers_one_summary_per_sink_child() {
        let (topo, radio) = setup();
        let report = analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            0.0,
        );
        // Each sink-adjacent child transmits exactly one payload.
        let payload_bits = 16.0 * 8.0;
        let ratio = report.sink_volume.as_bits() / payload_bits;
        assert!((1.0..15.0).contains(&ratio));
        assert!(report.sink_volume < report.offered_volume);
    }

    #[test]
    fn energy_decreases_monotonically_with_fusion() {
        let e1 = run(1.0).round_energy;
        let e05 = run(0.5).round_energy;
        let e0 = run(0.0).round_energy;
        assert!(e0 < e05 && e05 < e1, "{e0} < {e05} < {e1}");
    }

    #[test]
    fn energy_per_generated_bit_improves_with_fusion() {
        assert!(run(0.0).energy_per_generated_bit < run(1.0).energy_per_generated_bit);
    }

    #[test]
    fn disconnected_nodes_counted() {
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(10.0, 0.0),
            crate::topology::Position::new(500.0, 0.0), // marooned
        ]);
        let radio = RadioEnergyModel::short_range_2003();
        let report = analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            1.0,
        );
        assert_eq!(report.disconnected, 1);
    }

    #[test]
    #[should_panic(expected = "fusion factor")]
    fn bad_fusion_rejected() {
        let _ = run(1.5);
    }
}
