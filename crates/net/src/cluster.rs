//! Cluster-head rotation: balancing the energy hole.
//!
//! Minimum-energy trees kill the sink-adjacent relays first (F6). The
//! classic counter-measure rotates the relaying burden: each epoch a
//! fraction `p` of nodes self-elect as cluster heads, members send their
//! (fused) reports to the nearest head, and heads forward one aggregate
//! each straight to the sink. Rotation equalizes residual energy at the
//! cost of heads transmitting over long distances.

use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_sim::sim_rng;
use ami_units::{DataVolume, Energy, TimeSpan};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of the rotating-cluster protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Fraction of live nodes electing themselves head each epoch.
    pub head_fraction: f64,
    /// Rounds per epoch (heads rotate between epochs).
    pub rounds_per_epoch: u64,
    /// Payload per report.
    pub payload: DataVolume,
    /// Framing bits per transmission.
    pub framing: DataVolume,
    /// Fusion factor applied at heads (0 = full aggregation).
    pub fusion: f64,
}

impl ClusterConfig {
    /// The classic setup: 10 % heads, 20-round epochs, sensor payloads,
    /// full aggregation at the heads.
    pub fn classic() -> Self {
        Self {
            head_fraction: 0.1,
            rounds_per_epoch: 20,
            payload: DataVolume::from_bytes(16.0),
            framing: DataVolume::from_bits(112.0),
            fusion: 0.0,
        }
    }
}

/// Outcome of a clustered-gathering simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Rounds until the first node died (None = survived the horizon).
    pub first_death_round: Option<u64>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Total radio energy spent.
    pub total_energy: Energy,
    /// Residual energy per sensor node (index = id − 1).
    pub residual_energy: Vec<Energy>,
    /// Coefficient of variation of residual energy (lower = better
    /// balanced) at the end of the run.
    pub residual_cv: f64,
}

impl ClusterReport {
    /// Lifetime given the round interval.
    pub fn lifetime(&self, interval: TimeSpan) -> Option<TimeSpan> {
        self.first_death_round
            .map(|r| TimeSpan::new(interval.as_seconds() * r as f64))
    }
}

/// Simulates `rounds` of rotating-cluster gathering, deterministic in
/// `seed`. Every live node reports once per round; election happens at
/// epoch boundaries among live nodes (at least one head is forced).
///
/// # Panics
///
/// Panics if `rounds` is zero, `head_fraction` outside `(0, 1]`, or
/// `fusion` outside `[0, 1]`.
pub fn simulate_clustered(
    topology: &Topology,
    radio: &RadioEnergyModel,
    config: &ClusterConfig,
    node_energy: Energy,
    rounds: u64,
    seed: u64,
) -> ClusterReport {
    assert!(rounds > 0, "simulate at least one round");
    assert!(
        config.head_fraction > 0.0 && config.head_fraction <= 1.0,
        "head fraction must lie in (0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.fusion),
        "fusion factor must lie in [0, 1]"
    );
    let n = topology.len();
    let mut rng = sim_rng(seed);
    let mut budget = vec![node_energy.as_joules(); n];
    let mut alive = vec![true; n];
    let mut heads: Vec<NodeId> = Vec::new();
    let mut spent = 0.0;
    let mut first_death = None;

    for round in 0..rounds {
        // (Re-)elect heads at epoch boundaries.
        if round % config.rounds_per_epoch == 0 {
            heads = topology
                .sensor_ids()
                .filter(|id| alive[id.0] && rng.random::<f64>() < config.head_fraction)
                .collect();
            if heads.is_empty() {
                if let Some(any) = topology.sensor_ids().find(|id| alive[id.0]) {
                    heads.push(any);
                }
            }
        }
        heads.retain(|id| alive[id.0]);
        if heads.is_empty() {
            break;
        }

        // Members send to the nearest head; heads accumulate.
        let mut head_load = vec![0.0f64; n]; // received payload bits per head
        for id in topology.sensor_ids() {
            if !alive[id.0] || heads.contains(&id) {
                continue;
            }
            let head = *heads
                .iter()
                .min_by(|&&a, &&b| {
                    topology
                        .distance(id, a)
                        .total_cmp(&topology.distance(id, b))
                })
                .expect("heads non-empty");
            let frame = DataVolume::from_bits(config.payload.as_bits() + config.framing.as_bits());
            let tx = radio
                .transmit_energy(frame, topology.distance(id, head))
                .as_joules();
            let rx = radio.receive_energy(frame).as_joules();
            budget[id.0] -= tx;
            budget[head.0] -= rx;
            spent += tx + rx;
            head_load[head.0] += config.payload.as_bits();
        }
        // Heads forward their aggregate to the sink.
        for &head in &heads {
            // The head's own payload plus whatever of its members'
            // payloads survives fusion (0 = fully summarized).
            let bits = config.payload.as_bits() + config.fusion * head_load[head.0];
            let frame = DataVolume::from_bits(bits + config.framing.as_bits());
            let tx = radio
                .transmit_energy(frame, topology.distance(head, topology.sink()))
                .as_joules();
            budget[head.0] -= tx;
            spent += tx;
        }

        for id in topology.sensor_ids() {
            if alive[id.0] && budget[id.0] <= 0.0 {
                alive[id.0] = false;
                first_death.get_or_insert(round + 1);
            }
        }
    }

    let residual: Vec<f64> = budget.iter().skip(1).map(|&j| j.max(0.0)).collect();
    let mean = residual.iter().sum::<f64>() / residual.len() as f64;
    let var = residual.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / residual.len() as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };

    ClusterReport {
        first_death_round: first_death,
        rounds,
        total_energy: Energy::from_joules(spent),
        residual_energy: residual.into_iter().map(Energy::from_joules).collect(),
        residual_cv: cv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::{simulate_gathering, NetworkConfig};
    use crate::routing::RoutingStrategy;
    use ami_units::{Length, Power};

    fn topo() -> Topology {
        Topology::grid(5, Length::from_meters(30.0))
    }

    fn radio() -> RadioEnergyModel {
        RadioEnergyModel::short_range_2003()
    }

    #[test]
    fn survives_with_generous_budgets() {
        let report = simulate_clustered(
            &topo(),
            &radio(),
            &ClusterConfig::classic(),
            Energy::from_joules(50.0),
            500,
            1,
        );
        assert!(report.first_death_round.is_none());
        assert!(report.total_energy.as_joules() > 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            simulate_clustered(
                &topo(),
                &radio(),
                &ClusterConfig::classic(),
                Energy::from_joules(1.0),
                2000,
                seed,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).residual_energy, run(6).residual_energy);
    }

    #[test]
    fn rotation_balances_residual_energy_vs_static_tree() {
        // The headline: clustering's residual-energy spread (CV) is tighter
        // than the static minimum-energy tree's after the same traffic.
        let mut tree_config = NetworkConfig::sensor_default();
        tree_config.idle_power = Power::ZERO;
        tree_config.node_energy = Energy::from_joules(2.0);
        let tree = simulate_gathering(&topo(), RoutingStrategy::MinimumEnergy, &tree_config, 3000);
        let tree_res: Vec<f64> = tree.residual_energy.iter().map(|e| e.as_joules()).collect();
        let mean = tree_res.iter().sum::<f64>() / tree_res.len() as f64;
        let var = tree_res.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / tree_res.len() as f64;
        let tree_cv = var.sqrt() / mean;

        let clustered = simulate_clustered(
            &topo(),
            &radio(),
            &ClusterConfig::classic(),
            Energy::from_joules(2.0),
            3000,
            7,
        );
        assert!(
            clustered.residual_cv < tree_cv,
            "clustering must balance: CV {:.3} vs tree {:.3}",
            clustered.residual_cv,
            tree_cv
        );
    }

    #[test]
    fn everyone_dead_ends_early() {
        let report = simulate_clustered(
            &topo(),
            &radio(),
            &ClusterConfig::classic(),
            Energy::from_millijoules(1.0),
            100_000,
            3,
        );
        assert!(report.first_death_round.is_some());
        assert!(report.residual_energy.iter().all(|e| e.as_joules() >= 0.0));
    }

    #[test]
    #[should_panic(expected = "head fraction")]
    fn zero_head_fraction_rejected() {
        let mut config = ClusterConfig::classic();
        config.head_fraction = 0.0;
        let _ = simulate_clustered(&topo(), &radio(), &config, Energy::from_joules(1.0), 10, 0);
    }
}
