//! Round-based data-gathering simulation and lifetime accounting.
//!
//! Every round, each live sensor node generates one report and forwards it
//! along the route table; every transmit, relay-receive and idle-listening
//! joule is charged against the node's finite energy budget. The sink is
//! mains-powered and never depletes. Nodes die when their budget runs out;
//! dead relays break the routes through them (deliveries stop — the
//! "hole around the sink" effect).

use crate::routing::{build_routes, route_to_sink, RoutingStrategy};
use crate::topology::{NodeId, Topology};
use ami_radio::{Packet, RadioEnergyModel};
use ami_units::{DataVolume, Energy, EnergyPerBit, Length, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Parameters of a gathering network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Radio energy model.
    pub radio: RadioEnergyModel,
    /// Report packet format.
    pub packet: Packet,
    /// Interval between reporting rounds.
    pub report_interval: TimeSpan,
    /// Baseline (MAC listening + sensing + leakage) power per node.
    pub idle_power: Power,
    /// Initial energy budget per sensor node.
    pub node_energy: Energy,
    /// Maximum hop length of the radio.
    pub max_hop: Length,
}

impl NetworkConfig {
    /// The µW-node default: 2003 short-range radio, sensor-report packets,
    /// 1-minute rounds, 20 µW baseline, a 50 J budget (half a small coin
    /// cell's worth dedicated to networking), 45 m hops.
    pub fn sensor_default() -> Self {
        Self {
            radio: RadioEnergyModel::short_range_2003(),
            packet: Packet::sensor_report(),
            report_interval: TimeSpan::from_minutes(1.0),
            idle_power: Power::from_microwatts(20.0),
            node_energy: Energy::from_joules(50.0),
            max_hop: Length::from_meters(45.0),
        }
    }
}

/// Outcome of a gathering simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Packets that reached the sink.
    pub delivered_packets: u64,
    /// Payload information delivered to the sink.
    pub delivered_volume: DataVolume,
    /// Total energy drawn from all sensor budgets.
    pub total_energy: Energy,
    /// Round index at which the first node died, if any.
    pub first_death_round: Option<u64>,
    /// Number of nodes still alive at the end.
    pub alive_nodes: usize,
    /// Residual energy per node (sink excluded, index = id − 1).
    pub residual_energy: Vec<Energy>,
    /// Rounds simulated.
    pub rounds: u64,
}

impl NetworkReport {
    /// Mean energy cost per delivered payload bit.
    ///
    /// # Panics
    ///
    /// Panics if nothing was delivered.
    pub fn energy_per_delivered_bit(&self) -> EnergyPerBit {
        assert!(
            self.delivered_volume.as_bits() > 0.0,
            "no packets were delivered"
        );
        EnergyPerBit::new(self.total_energy.as_joules() / self.delivered_volume.as_bits())
    }

    /// Network lifetime (time to first death) given the round interval.
    pub fn lifetime(&self, interval: TimeSpan) -> Option<TimeSpan> {
        self.first_death_round
            .map(|r| TimeSpan::new(interval.as_seconds() * r as f64))
    }
}

/// Runs `rounds` reporting rounds of `topology` under `strategy`.
///
/// Routes are rebuilt over the surviving nodes whenever a node dies.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> NetworkReport {
    assert!(rounds > 0, "simulate at least one round");
    let n = topology.len();
    let mut budget: Vec<f64> = vec![config.node_energy.as_joules(); n];
    let mut alive = vec![true; n];
    let mut table = build_routes(topology, strategy, &config.radio, config.max_hop);
    let mut delivered = 0u64;
    let mut spent = 0.0f64;
    let mut first_death: Option<u64> = None;
    let bits = config.packet.total_bits();
    let idle_per_round = (config.idle_power * config.report_interval).as_joules();

    for round in 0..rounds {
        // Idle/listening cost for every live sensor node.
        for id in topology.sensor_ids() {
            if alive[id.0] {
                budget[id.0] -= idle_per_round;
                spent += idle_per_round;
            }
        }

        // Each live node reports once.
        for id in topology.sensor_ids() {
            if !alive[id.0] {
                continue;
            }
            let path = route_to_sink(&table, topology, id);
            if path.is_empty() {
                continue; // disconnected this round
            }
            // Charge the sender and every relay; abort if a hop is dead.
            let mut from = id;
            let mut ok = true;
            for &hop in &path {
                if !alive[from.0] || (hop != topology.sink() && !alive[hop.0]) {
                    ok = false;
                    break;
                }
                let d = topology.distance(from, hop);
                let tx = config.radio.transmit_energy(bits, d).as_joules();
                budget[from.0] -= tx;
                spent += tx;
                if hop != topology.sink() {
                    let rx = config.radio.receive_energy(bits).as_joules();
                    budget[hop.0] -= rx;
                    spent += rx;
                }
                from = hop;
            }
            if ok {
                delivered += 1;
            }
        }

        // Bury the dead and rebuild routes if anything changed.
        let mut changed = false;
        for id in topology.sensor_ids() {
            if alive[id.0] && budget[id.0] <= 0.0 {
                alive[id.0] = false;
                changed = true;
                first_death.get_or_insert(round + 1);
            }
        }
        if changed {
            table = rebuild_over_survivors(topology, strategy, config, &alive);
        }
    }

    NetworkReport {
        delivered_packets: delivered,
        delivered_volume: DataVolume::from_bits(
            config.packet.payload().as_bits() * delivered as f64,
        ),
        total_energy: Energy::from_joules(spent),
        first_death_round: first_death,
        alive_nodes: alive.iter().skip(1).filter(|&&a| a).count(),
        residual_energy: budget
            .iter()
            .skip(1)
            .map(|&j| Energy::from_joules(j.max(0.0)))
            .collect(),
        rounds,
    }
}

/// Rebuilds routes over the surviving nodes by giving dead nodes an
/// unreachable position proxy: we simply filter their edges by rebuilding
/// on a reduced topology and mapping ids back.
fn rebuild_over_survivors(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    alive: &[bool],
) -> Vec<Option<NodeId>> {
    // Map surviving ids into a compact topology (sink always survives).
    let mut forward = Vec::new(); // compact -> original
    let mut positions = Vec::new();
    for id in topology.ids() {
        if id == topology.sink() || alive[id.0] {
            forward.push(id);
            positions.push(topology.position(id));
        }
    }
    if positions.len() < 2 {
        // Everyone but the sink is dead: no routes remain.
        return vec![None; topology.len()];
    }
    let compact = Topology::new(positions);
    let compact_table = build_routes(&compact, strategy, &config.radio, config.max_hop);
    let mut table = vec![None; topology.len()];
    for (compact_idx, original) in forward.iter().enumerate() {
        table[original.0] = compact_table[compact_idx].map(|next| forward[next.0]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Topology {
        Topology::grid(3, Length::from_meters(20.0))
    }

    #[test]
    fn every_round_delivers_every_live_node() {
        let report = simulate_gathering(
            &small_grid(),
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            50,
        );
        assert_eq!(report.delivered_packets, 50 * 8);
        assert_eq!(report.alive_nodes, 8);
        assert!(report.first_death_round.is_none());
    }

    #[test]
    fn multihop_beats_direct_on_spread_networks() {
        // 6x6 grid at 30 m: far corner is >210 m from the sink — way past
        // the 44.7 m crossover.
        let topo = Topology::grid(6, Length::from_meters(30.0));
        let config = NetworkConfig::sensor_default();
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 100);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 100);
        assert_eq!(direct.delivered_packets, multi.delivered_packets);
        assert!(
            multi.total_energy < direct.total_energy,
            "multi-hop must spend less: {} vs {}",
            multi.total_energy,
            direct.total_energy
        );
    }

    #[test]
    fn direct_wins_on_tight_star() {
        // All leaves 10 m from the sink: relaying could only add cost.
        let topo = Topology::star(6, Length::from_meters(10.0));
        let config = NetworkConfig::sensor_default();
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 100);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 100);
        assert!(direct.total_energy <= multi.total_energy * 1.000001);
    }

    #[test]
    fn nodes_die_and_network_degrades() {
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(40.0); // tiny budgets
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 2000);
        assert!(report.first_death_round.is_some());
        assert!(report.alive_nodes < 15);
    }

    #[test]
    fn relays_die_first_under_multihop() {
        // The hole-around-the-sink effect: nodes adjacent to the sink relay
        // everyone's traffic and deplete fastest.
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = Power::ZERO; // isolate relaying cost
        config.node_energy = Energy::from_joules(1.0);
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 5000);
        // Node 1 (adjacent to corner sink) must end with less energy than
        // the far corner (node 24) which never relays.
        let near = report.residual_energy[0]; // id 1
        let far = report.residual_energy[23]; // id 24
        assert!(near < far, "sink-adjacent relay must deplete faster");
    }

    #[test]
    fn energy_per_delivered_bit_is_sane() {
        let report = simulate_gathering(
            &small_grid(),
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            10,
        );
        let epb = report.energy_per_delivered_bit();
        // Idle listening dominates at 1-minute rounds: µJ–mJ per bit.
        assert!(epb.as_joules_per_bit() > 1e-9);
        assert!(epb.as_joules_per_bit() < 1.0);
    }

    #[test]
    fn lifetime_converts_rounds() {
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(10.0);
        let report =
            simulate_gathering(&small_grid(), RoutingStrategy::DirectToSink, &config, 1000);
        let round = report.first_death_round.expect("must die");
        let lifetime = report.lifetime(config.report_interval).unwrap();
        assert!((lifetime.as_minutes() - round as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = simulate_gathering(
            &small_grid(),
            RoutingStrategy::DirectToSink,
            &NetworkConfig::sensor_default(),
            0,
        );
    }
}
