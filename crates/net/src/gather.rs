//! Round-based data-gathering simulation and lifetime accounting.
//!
//! Every round, each live sensor node generates one report and forwards it
//! along the route table; every transmit, relay-receive and idle-listening
//! joule is charged against the node's finite energy budget. The sink is
//! mains-powered and never depletes. Nodes die when their budget runs out;
//! dead relays break the routes through them (deliveries stop — the
//! "hole around the sink" effect).
//!
//! Budget exhaustion takes effect **per hop**, not per round: a node whose
//! budget hits zero mid-round immediately stops sending and relaying (the
//! formal death flag and route rebuild still happen at the end-of-round
//! sweep). Residual budgets are reported *unclamped* — a node driven past
//! empty keeps its negative residual, and
//! [`NetworkReport::overdraft`] totals the overshoot instead of hiding it.
//!
//! Every simulation entry point is generic over an
//! [`ami_sim::obs::Recorder`]; [`simulate_gathering`] records nothing
//! (zero cost), [`simulate_gathering_observed`] fills an energy ledger
//! and packet counters.
//!
//! The `*_faulted` entry points additionally take an
//! [`ami_sim::fault::FaultSchedule`] of exogenous failures. A fault-downed
//! node is powered off: it spends nothing, offers nothing, and relays
//! nothing. Routing detects downed nodes with a one-round lag (the sweep
//! that notices them re-resolves next hops over the survivors — it never
//! panics), so packets that hit a freshly downed relay or a downed link
//! burn the sender's transmit energy and drop with the `dropped_fault`
//! counter cause. Capacity-fade events scale a node's initial budget;
//! the unfaulted entry points are the `FaultSchedule::empty()` special
//! case, bit-exact with the pre-fault implementation.

use crate::agg::AggScratch;
use crate::routing::{RouteCache, RoutingStrategy};
use crate::topology::{NodeId, Topology};
use ami_radio::{Packet, RadioEnergyModel};
use ami_sim::fault::{FaultSchedule, FaultTimeline};
use ami_sim::obs::{EnergyCategory, LedgerRecorder, NullRecorder, Recorder};
use ami_units::{DataVolume, Energy, EnergyPerBit, Length, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Parameters of a gathering network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Radio energy model.
    pub radio: RadioEnergyModel,
    /// Report packet format.
    pub packet: Packet,
    /// Interval between reporting rounds.
    pub report_interval: TimeSpan,
    /// Baseline (MAC listening + sensing + leakage) power per node.
    pub idle_power: Power,
    /// Initial energy budget per sensor node.
    pub node_energy: Energy,
    /// Maximum hop length of the radio.
    pub max_hop: Length,
}

impl NetworkConfig {
    /// The µW-node default: 2003 short-range radio, sensor-report packets,
    /// 1-minute rounds, 20 µW baseline, a 50 J budget (half a small coin
    /// cell's worth dedicated to networking), 45 m hops.
    pub fn sensor_default() -> Self {
        Self {
            radio: RadioEnergyModel::short_range_2003(),
            packet: Packet::sensor_report(),
            report_interval: TimeSpan::from_minutes(1.0),
            idle_power: Power::from_microwatts(20.0),
            node_energy: Energy::from_joules(50.0),
            max_hop: Length::from_meters(45.0),
        }
    }
}

/// Outcome of a gathering simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Packets that reached the sink.
    pub delivered_packets: u64,
    /// Payload information delivered to the sink.
    pub delivered_volume: DataVolume,
    /// Total energy drawn from all sensor budgets.
    pub total_energy: Energy,
    /// Round index at which the first node died, if any.
    pub first_death_round: Option<u64>,
    /// Number of nodes still alive at the end.
    pub alive_nodes: usize,
    /// True residual energy per node (sink excluded, index = id − 1).
    /// Negative values mean the node was driven past empty.
    pub residual_energy: Vec<Energy>,
    /// Rounds simulated.
    pub rounds: u64,
}

impl NetworkReport {
    /// Mean energy cost per delivered payload bit, or `None` when the
    /// run delivered nothing (a dead or disconnected network has no
    /// per-bit cost, not an infinite one).
    pub fn energy_per_delivered_bit(&self) -> Option<EnergyPerBit> {
        if self.delivered_volume.as_bits() > 0.0 {
            Some(EnergyPerBit::new(
                self.total_energy.as_joules() / self.delivered_volume.as_bits(),
            ))
        } else {
            None
        }
    }

    /// Total energy drawn past empty, summed over overdrawn nodes.
    ///
    /// Bounded by one round's idle charge plus one packet's worth per
    /// node, since exhausted nodes stop transacting at the next hop.
    pub fn overdraft(&self) -> Energy {
        Energy::from_joules(
            self.residual_energy
                .iter()
                .map(|r| {
                    let j = r.as_joules();
                    if j < 0.0 {
                        -j
                    } else {
                        0.0
                    }
                })
                .sum(),
        )
    }

    /// Network lifetime (time to first death) given the round interval.
    pub fn lifetime(&self, interval: TimeSpan) -> Option<TimeSpan> {
        self.first_death_round
            .map(|r| TimeSpan::new(interval.as_seconds() * r as f64))
    }
}

/// Runs `rounds` reporting rounds of `topology` under `strategy`,
/// recording nothing. See [`simulate_gathering_with`].
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> NetworkReport {
    simulate_gathering_with(topology, strategy, config, rounds, &mut NullRecorder)
}

/// [`simulate_gathering`] with a [`LedgerRecorder`] attached: returns
/// the report plus the per-node energy ledger (rows indexed by raw node
/// id — the sink's row 0 stays zero) and end-to-end packet counters.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering_observed(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> (NetworkReport, LedgerRecorder) {
    let mut recorder = LedgerRecorder::with_nodes(topology.len());
    let report = simulate_gathering_with(topology, strategy, config, rounds, &mut recorder);
    (report, recorder)
}

/// [`simulate_gathering`] under an exogenous [`FaultSchedule`],
/// recording nothing. See [`simulate_gathering_faulted_with`].
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering_faulted(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
) -> NetworkReport {
    simulate_gathering_faulted_with(
        topology,
        strategy,
        config,
        rounds,
        faults,
        &mut NullRecorder,
    )
}

/// [`simulate_gathering_faulted`] with a [`LedgerRecorder`] attached:
/// fault-caused losses land in the recorder's `dropped_fault` counter.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering_faulted_observed(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
) -> (NetworkReport, LedgerRecorder) {
    let mut recorder = LedgerRecorder::with_nodes(topology.len());
    let report =
        simulate_gathering_faulted_with(topology, strategy, config, rounds, faults, &mut recorder);
    (report, recorder)
}

/// Runs `rounds` reporting rounds of `topology` under `strategy`,
/// charging every event through `recorder`.
///
/// Routes are rebuilt over the surviving nodes whenever a node dies.
/// A node participates (sends, relays) only while its budget is
/// positive: exhaustion stops it at the very next hop, so a depleted
/// relay cannot keep forwarding traffic for free until the end-of-round
/// death sweep. Packets that abort on an exhausted hop count as
/// `dropped_dead_hop`; packets generated with no route to the sink
/// count as `dropped_disconnected`.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering_with<R: Recorder>(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    recorder: &mut R,
) -> NetworkReport {
    simulate_gathering_faulted_with(
        topology,
        strategy,
        config,
        rounds,
        &FaultSchedule::empty(),
        recorder,
    )
}

/// How one packet's trip through the route table ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PacketFate {
    Delivered,
    DeadHop,
    Fault,
}

/// The per-run state of the gathering kernel, with the round split into
/// its phases: [`begin_round`](Self::begin_round) (fault refresh +
/// route re-resolution), [`idle_and_send`](Self::idle_and_send) (the
/// serial charge loops), [`end_round`](Self::end_round) (death sweep)
/// and [`finish`](Self::finish) (residuals + report).
///
/// [`simulate_gathering_faulted_with`] drives these phases in a plain
/// loop — that *is* the serial kernel, op for op the historical
/// implementation. The region-parallel engine in [`crate::pdes`] drives
/// `begin_round`/`end_round` unchanged and replaces `idle_and_send`
/// with an optimistic parallel round that falls back to this exact
/// serial phase whenever its energy-margin validation fails — sharing
/// the state machine is what keeps the two bit-identical.
pub(crate) struct GatherState<'a> {
    pub(crate) topology: &'a Topology,
    pub(crate) strategy: RoutingStrategy,
    pub(crate) config: &'a NetworkConfig,
    pub(crate) sink: NodeId,
    /// Bits per report packet (routing metric + rx cost driver).
    pub(crate) bits: DataVolume,
    /// Joules of idle listening per round per powered node.
    pub(crate) idle_per_round: f64,
    /// Joules to receive one packet (distance-independent).
    pub(crate) rx_per_hop: f64,
    pub(crate) faults_active: bool,
    pub(crate) timeline: FaultTimeline,
    /// Remaining budget per node, joules (unclamped).
    pub(crate) budget: Vec<f64>,
    /// Budget-alive flags (exogenous downs are *not* deaths).
    pub(crate) alive: Vec<bool>,
    /// Fault-down state this round / last round (one-round routing lag).
    pub(crate) down_now: Vec<bool>,
    pub(crate) down_prev: Vec<bool>,
    /// The node set routing can see, rebuilt when `routes_dirty`.
    pub(crate) usable: Vec<bool>,
    pub(crate) cache: RouteCache,
    pub(crate) routes_dirty: bool,
    pub(crate) delivered: u64,
    /// Total energy drawn from sensor budgets, folded in charge order.
    pub(crate) spent: f64,
    pub(crate) first_death: Option<u64>,
}

impl<'a> GatherState<'a> {
    pub(crate) fn new(
        topology: &'a Topology,
        strategy: RoutingStrategy,
        config: &'a NetworkConfig,
        faults: &FaultSchedule,
    ) -> Self {
        let n = topology.len();
        let sink = topology.sink();
        let capacity = faults.capacity_factors(n);
        let budget: Vec<f64> = (0..n)
            .map(|id| {
                if id == sink.0 {
                    config.node_energy.as_joules()
                } else {
                    config.node_energy.as_joules() * capacity[id]
                }
            })
            .collect();
        Self {
            topology,
            strategy,
            config,
            sink,
            bits: config.packet.total_bits(),
            idle_per_round: (config.idle_power * config.report_interval).as_joules(),
            // Receive energy is distance-independent: one value serves
            // every hop.
            rx_per_hop: config
                .radio
                .receive_energy(config.packet.total_bits())
                .as_joules(),
            faults_active: !faults.is_empty(),
            // The compiled timeline answers per-round down queries in
            // O(1) instead of scanning the event list; its cursor
            // advances with the round loop and allocates nothing.
            timeline: FaultTimeline::compile(faults, n),
            budget,
            alive: vec![true; n],
            down_now: vec![false; n],
            down_prev: vec![false; n],
            usable: vec![true; n],
            cache: RouteCache::new(n),
            // Usable-set epoch: routes re-resolve only on rounds where a
            // death or a fault transition actually changed what routing
            // can see. Starts dirty so the first round performs the
            // (single) healthy build.
            routes_dirty: true,
            delivered: 0,
            spent: 0.0,
            first_death: None,
        }
    }

    /// Fault-state refresh and (if dirty) route re-resolution — the
    /// start-of-round phase shared by the serial and parallel kernels.
    pub(crate) fn begin_round(&mut self, round: u64) {
        if self.faults_active {
            self.timeline.advance_to(round);
            for (id, down) in self.down_now.iter_mut().enumerate() {
                *down = id != self.sink.0 && self.timeline.node_down(id);
            }
        }

        // Re-resolve routes when the usable set routing can see (one
        // round behind on faults) has changed — deaths, outage starts
        // noticed a round late, reboots rejoining.
        if self.routes_dirty {
            for (id, flag) in self.usable.iter_mut().enumerate() {
                *flag = id == self.sink.0 || (self.alive[id] && !self.down_prev[id]);
            }
            self.cache.ensure(
                self.topology,
                self.strategy,
                &self.config.radio,
                self.config.max_hop,
                self.bits,
                &self.usable,
            );
            self.routes_dirty = false;
        }
    }

    /// The serial mid-round phase: idle charges, then one report per
    /// live, funded, powered-on node, walked hop by hop with per-hop
    /// exhaustion checks. This is the pinned oracle the region-parallel
    /// engine must match bit for bit (and falls back to on rounds its
    /// energy-margin validation rejects).
    pub(crate) fn idle_and_send<R: Recorder>(&mut self, recorder: &mut R) {
        // Idle/listening cost for every live, powered-on sensor node.
        for id in self.topology.sensor_ids() {
            if self.alive[id.0] && !self.down_now[id.0] {
                self.budget[id.0] -= self.idle_per_round;
                self.spent += self.idle_per_round;
                recorder.charge(id.0, EnergyCategory::Idle, self.idle_per_round);
            }
        }

        // Each live, still-funded, powered-on node reports once. (The
        // idle charge above may have emptied a budget; such a node is
        // silent this round and will be buried by the sweep below.)
        for id in self.topology.sensor_ids() {
            if !self.alive[id.0] || self.budget[id.0] <= 0.0 || self.down_now[id.0] {
                continue;
            }
            recorder.packet_offered();
            if !self.cache.is_connected(id) {
                recorder.packet_dropped_disconnected();
                continue; // disconnected this round
            }
            // Charge the sender and every relay by walking the cached
            // table directly (the connectivity check above guarantees
            // the chain reaches the sink); abort when a hop has died,
            // run out mid-round, or gone down to a fault.
            let mut from = id;
            let mut fate = PacketFate::Delivered;
            while from != self.sink {
                let hop = self
                    .cache
                    .next_hop(from)
                    .expect("connected route reaches the sink");
                let from_down = !self.alive[from.0] || self.budget[from.0] <= 0.0;
                let hop_down =
                    hop != self.sink && (!self.alive[hop.0] || self.budget[hop.0] <= 0.0);
                if from_down || hop_down {
                    fate = PacketFate::DeadHop;
                    break;
                }
                let tx = self.cache.tx_cost(from);
                self.budget[from.0] -= tx;
                self.spent += tx;
                recorder.charge(from.0, EnergyCategory::Tx, tx);
                // A hop onto a fault-downed node or across a downed link
                // still costs the sender its transmission — it cannot
                // know in advance — but nothing arrives and the downed
                // receiver spends nothing.
                if (hop != self.sink && self.down_now[hop.0])
                    || self.timeline.link_down(from.0, hop.0)
                {
                    fate = PacketFate::Fault;
                    break;
                }
                if hop != self.sink {
                    self.budget[hop.0] -= self.rx_per_hop;
                    self.spent += self.rx_per_hop;
                    recorder.charge(hop.0, EnergyCategory::RxRelay, self.rx_per_hop);
                }
                from = hop;
            }
            match fate {
                PacketFate::Delivered => {
                    self.delivered += 1;
                    recorder.packet_delivered();
                }
                PacketFate::DeadHop => recorder.packet_dropped_dead_hop(),
                PacketFate::Fault => recorder.packet_dropped_fault(),
            }
        }
    }

    /// End-of-round sweep shared by both kernels: bury the budget-dead,
    /// mark the route epoch dirty on any visible transition, and age the
    /// fault-down state by one round.
    pub(crate) fn end_round(&mut self, round: u64) {
        // Bury the budget-dead; the route re-resolution at the top of
        // the next round folds them (and this round's fault-downs) in.
        for id in self.topology.sensor_ids() {
            if self.alive[id.0] && self.budget[id.0] <= 0.0 {
                self.alive[id.0] = false;
                self.first_death.get_or_insert(round + 1);
                self.routes_dirty = true;
            }
        }
        if self.faults_active && self.down_now != self.down_prev {
            self.routes_dirty = true;
        }
        std::mem::swap(&mut self.down_prev, &mut self.down_now);
    }

    /// Residual recording and the final report.
    pub(crate) fn finish<R: Recorder>(self, rounds: u64, recorder: &mut R) -> NetworkReport {
        for id in self.topology.sensor_ids() {
            recorder.record_residual(id.0, self.budget[id.0]);
        }

        NetworkReport {
            delivered_packets: self.delivered,
            delivered_volume: DataVolume::from_bits(
                self.config.packet.payload().as_bits() * self.delivered as f64,
            ),
            total_energy: Energy::from_joules(self.spent),
            first_death_round: self.first_death,
            // A node down in the final round (dead or still mid-outage)
            // does not count as part of the surviving network. The
            // timeline already sits at `rounds - 1`, so this is a
            // counter read per node, not an event scan.
            alive_nodes: self
                .topology
                .sensor_ids()
                .filter(|id| self.alive[id.0] && !self.timeline.node_down(id.0))
                .count(),
            residual_energy: self
                .budget
                .iter()
                .skip(1)
                .map(|&j| Energy::from_joules(j))
                .collect(),
            rounds,
        }
    }
}

/// Runs `rounds` reporting rounds of `topology` under `strategy` and
/// the exogenous `faults` schedule, charging every event through
/// `recorder`.
///
/// Fault semantics, chosen so the empty schedule degenerates bit-exactly
/// to [`simulate_gathering_with`]:
///
/// * a fault-downed node (death or mid-outage) is powered off: no idle
///   charge, no report, no relaying; its remaining budget survives a
///   transient outage;
/// * routing observes fault state with a **one-round lag** — the network
///   cannot know a relay died until traffic through it fails — and then
///   re-resolves next hops over the usable nodes instead of panicking;
/// * a packet that hits a freshly downed relay or a downed link burns
///   the sender's transmit energy (the sender cannot know), charges the
///   downed receiver nothing, and drops as `dropped_fault`;
/// * capacity-fade events scale the node's *initial* budget;
/// * budget exhaustion keeps its existing semantics: per-hop stop,
///   `dropped_dead_hop` attribution, and `first_death_round` counts
///   energy deaths only (exogenous faults are not "lifetime").
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn simulate_gathering_faulted_with<R: Recorder>(
    topology: &Topology,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
    faults: &FaultSchedule,
    recorder: &mut R,
) -> NetworkReport {
    assert!(rounds > 0, "simulate at least one round");
    // All scratch lives in the state and the aggregation scratch and is
    // reused across rounds — the round loop stays allocation-steady.
    let mut state = GatherState::new(topology, strategy, config, faults);
    let mut scratch = AggScratch::new(topology.len());
    for round in 0..rounds {
        state.begin_round(round);
        state.round_charges(&mut scratch, recorder);
        state.end_round(round);
    }
    state.finish(rounds, recorder)
}

/// A reusable gathering harness: routes are resolved once and kept warm
/// across runs, together with the aggregated kernel's scratch (packed
/// route arrays and, on fault-free epochs, the memoized charge stream).
///
/// [`simulate_gathering`] pays one route build per call; a session pays
/// it once and then measures what city-scale studies actually repeat —
/// marginal rounds. Results are bit-identical to the one-shot entry
/// points: the session drives the same round phases over the same
/// cache, it just keeps the cache (and its route epoch counters) alive
/// between runs.
pub struct GatherSession<'a> {
    topology: &'a Topology,
    strategy: RoutingStrategy,
    config: &'a NetworkConfig,
    cache: RouteCache,
    scratch: AggScratch,
}

impl<'a> GatherSession<'a> {
    /// Creates a session; the first run performs the route build.
    pub fn new(
        topology: &'a Topology,
        strategy: RoutingStrategy,
        config: &'a NetworkConfig,
    ) -> Self {
        Self {
            topology,
            strategy,
            config,
            cache: RouteCache::new(topology.len()),
            scratch: AggScratch::new(topology.len()),
        }
    }

    /// Runs `rounds` fault-free rounds from a fresh network state,
    /// recording nothing. Bit-identical to [`simulate_gathering`].
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn run(&mut self, rounds: u64) -> NetworkReport {
        self.run_faulted_with(rounds, &FaultSchedule::empty(), &mut NullRecorder)
    }

    /// Runs `rounds` rounds under `faults` from a fresh network state,
    /// charging every event through `recorder`. Bit-identical to
    /// [`simulate_gathering_faulted_with`].
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn run_faulted_with<R: Recorder>(
        &mut self,
        rounds: u64,
        faults: &FaultSchedule,
        recorder: &mut R,
    ) -> NetworkReport {
        assert!(rounds > 0, "simulate at least one round");
        let mut state = GatherState::new(self.topology, self.strategy, self.config, faults);
        // Adopt the session's warm cache; `begin_round`'s `ensure` call
        // no-ops when the usable set still matches what it was built
        // over, which is what amortizes the build across runs.
        state.cache = std::mem::replace(&mut self.cache, RouteCache::new(0));
        // The warm cache keeps the route-epoch counter alive across
        // runs, but this run's fault schedule may differ from the one
        // the scratch memoized under at the same epoch — drop the
        // memoized round image and hop probe so every run re-derives
        // them from its own walks.
        self.scratch.invalidate_run_memo();
        for round in 0..rounds {
            state.begin_round(round);
            state.round_charges(&mut self.scratch, recorder);
            state.end_round(round);
        }
        self.cache = std::mem::replace(&mut state.cache, RouteCache::new(0));
        state.finish(rounds, recorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::build_routes_over;
    use crate::topology::Position;

    // The historical compact-rebuild oracle and the test pinning
    // `build_routes_over` against it moved to `tests/common/oracle.rs`
    // + `tests/differential.rs`, shared with the incremental-repair
    // differential layer.

    #[test]
    fn subset_routing_handles_the_everyone_dead_case() {
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let config = NetworkConfig::sensor_default();
        let mut usable = vec![false; topo.len()];
        usable[0] = true;
        let table = build_routes_over(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config.radio,
            config.max_hop,
            &usable,
        );
        assert!(table.iter().all(Option::is_none));
    }

    fn small_grid() -> Topology {
        Topology::grid(3, Length::from_meters(20.0))
    }

    #[test]
    fn every_round_delivers_every_live_node() {
        let report = simulate_gathering(
            &small_grid(),
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            50,
        );
        assert_eq!(report.delivered_packets, 50 * 8);
        assert_eq!(report.alive_nodes, 8);
        assert!(report.first_death_round.is_none());
    }

    #[test]
    fn multihop_beats_direct_on_spread_networks() {
        // 6x6 grid at 30 m: far corner is >210 m from the sink — way past
        // the 44.7 m crossover.
        let topo = Topology::grid(6, Length::from_meters(30.0));
        let config = NetworkConfig::sensor_default();
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 100);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 100);
        assert_eq!(direct.delivered_packets, multi.delivered_packets);
        assert!(
            multi.total_energy < direct.total_energy,
            "multi-hop must spend less: {} vs {}",
            multi.total_energy,
            direct.total_energy
        );
    }

    #[test]
    fn direct_wins_on_tight_star() {
        // All leaves 10 m from the sink: relaying could only add cost.
        let topo = Topology::star(6, Length::from_meters(10.0));
        let config = NetworkConfig::sensor_default();
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 100);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 100);
        assert!(direct.total_energy <= multi.total_energy * 1.000001);
    }

    #[test]
    fn nodes_die_and_network_degrades() {
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(40.0); // tiny budgets
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 2000);
        assert!(report.first_death_round.is_some());
        assert!(report.alive_nodes < 15);
    }

    #[test]
    fn relays_die_first_under_multihop() {
        // The hole-around-the-sink effect: nodes adjacent to the sink relay
        // everyone's traffic and deplete fastest.
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = Power::ZERO; // isolate relaying cost
        config.node_energy = Energy::from_joules(1.0);
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 5000);
        // Node 1 (adjacent to corner sink) must end with less energy than
        // the far corner (node 24) which never relays.
        let near = report.residual_energy[0]; // id 1
        let far = report.residual_energy[23]; // id 24
        assert!(near < far, "sink-adjacent relay must deplete faster");
    }

    #[test]
    fn energy_per_delivered_bit_is_sane() {
        let report = simulate_gathering(
            &small_grid(),
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            10,
        );
        let epb = report.energy_per_delivered_bit().expect("grid delivers");
        // Idle listening dominates at 1-minute rounds: µJ–mJ per bit.
        assert!(epb.as_joules_per_bit() > 1e-9);
        assert!(epb.as_joules_per_bit() < 1.0);
    }

    #[test]
    fn zero_delivery_has_no_per_bit_cost() {
        // Sink at the origin, one sensor far out of radio range: energy
        // is spent idling but nothing is ever delivered.
        let topo = Topology::new(vec![Position::new(0.0, 0.0), Position::new(500.0, 0.0)]);
        let report = simulate_gathering(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &NetworkConfig::sensor_default(),
            5,
        );
        assert_eq!(report.delivered_packets, 0);
        assert!(report.total_energy.as_joules() > 0.0);
        assert_eq!(report.energy_per_delivered_bit(), None);
    }

    /// Sink—node1—node2 line, 40 m apart with 45 m hops, so node2 must
    /// relay through node1; idle power zero so only radio charges move
    /// budgets. Node1's budget covers exactly one transmit plus half a
    /// receive, making its exhaustion land mid-round.
    fn relay_line(radio_halves: f64) -> (Topology, NetworkConfig) {
        let topo = Topology::new(vec![
            Position::new(0.0, 0.0),
            Position::new(40.0, 0.0),
            Position::new(80.0, 0.0),
        ]);
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = Power::ZERO;
        let bits = config.packet.total_bits();
        let tx = config
            .radio
            .transmit_energy(bits, Length::from_meters(40.0))
            .as_joules();
        let rx = config.radio.receive_energy(bits).as_joules();
        config.node_energy = Energy::from_joules(tx + rx * radio_halves);
        (topo, config)
    }

    #[test]
    fn exhausted_relay_stops_forwarding_mid_round() {
        // Round 1: node1 sends its own report (one tx), then receives
        // node2's packet, which drives it past empty mid-round. The
        // relay must stop *there* — before the zombie-relay fix, node1's
        // stale alive flag let node2's packet through, so round 1
        // delivered 2 packets instead of 1.
        let (topo, config) = relay_line(0.5);
        let (report, obs) =
            simulate_gathering_observed(&topo, RoutingStrategy::MinimumEnergy, &config, 5);
        assert_eq!(report.delivered_packets, 1);
        assert_eq!(report.first_death_round, Some(1));
        assert_eq!(obs.packets.offered, 6); // node1 once, node2 every round
        assert_eq!(obs.packets.delivered, 1);
        assert_eq!(obs.packets.dropped_dead_hop, 1); // node2's round-1 packet
        assert_eq!(obs.packets.dropped_disconnected, 4); // node2, rounds 2-5
        assert!(obs.packets.is_conserved());
    }

    #[test]
    fn overdraft_is_reported_not_clamped() {
        let (topo, config) = relay_line(0.5);
        let (report, obs) =
            simulate_gathering_observed(&topo, RoutingStrategy::MinimumEnergy, &config, 5);
        let rx = config
            .radio
            .receive_energy(config.packet.total_bits())
            .as_joules();
        // Node1 ends exactly half a receive-energy past empty: one tx
        // (own report) plus one full rx against a budget of tx + rx/2.
        let node1 = report.residual_energy[0].as_joules();
        assert!((node1 + rx / 2.0).abs() < 1e-15, "residual {node1}");
        assert!((report.overdraft().as_joules() - rx / 2.0).abs() < 1e-15);
        assert_eq!(
            report.overdraft().as_joules(),
            obs.ledger.overdraft().as_joules()
        );
    }

    #[test]
    fn observation_does_not_change_the_report() {
        let config = NetworkConfig::sensor_default();
        for strategy in [
            RoutingStrategy::DirectToSink,
            RoutingStrategy::MinimumEnergy,
        ] {
            let plain = simulate_gathering(&small_grid(), strategy, &config, 25);
            let (observed, _) = simulate_gathering_observed(&small_grid(), strategy, &config, 25);
            assert_eq!(plain, observed);
        }
    }

    #[test]
    fn ledger_accounts_for_every_joule() {
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(40.0); // force deaths
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let (report, obs) =
            simulate_gathering_observed(&topo, RoutingStrategy::MinimumEnergy, &config, 2000);
        let total = report.total_energy.as_joules();
        // Ledger categories partition the report's total energy.
        assert!((obs.ledger.total().as_joules() - total).abs() <= 1e-9 * total);
        // Conservation: initial budgets − true residuals == spent.
        let initial = config.node_energy.as_joules() * (topo.len() - 1) as f64;
        let residual: f64 = report.residual_energy.iter().map(|e| e.as_joules()).sum();
        assert!((initial - residual - total).abs() <= 1e-9 * initial);
        assert!(obs.packets.is_conserved());
    }

    #[test]
    fn lifetime_converts_rounds() {
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(10.0);
        let report =
            simulate_gathering(&small_grid(), RoutingStrategy::DirectToSink, &config, 1000);
        let round = report.first_death_round.expect("must die");
        let lifetime = report.lifetime(config.report_interval).unwrap();
        assert!((lifetime.as_minutes() - round as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = simulate_gathering(
            &small_grid(),
            RoutingStrategy::DirectToSink,
            &NetworkConfig::sensor_default(),
            0,
        );
    }

    mod faulted {
        use super::*;
        use ami_sim::fault::{FaultEvent, FaultModel, FaultSchedule};

        #[test]
        fn empty_schedule_is_bit_exact_with_the_unfaulted_path() {
            let config = NetworkConfig::sensor_default();
            let topo = Topology::grid(4, Length::from_meters(30.0));
            for strategy in [
                RoutingStrategy::DirectToSink,
                RoutingStrategy::MinimumEnergy,
            ] {
                let plain = simulate_gathering(&topo, strategy, &config, 40);
                let (faulted, obs) = simulate_gathering_faulted_observed(
                    &topo,
                    strategy,
                    &config,
                    40,
                    &FaultSchedule::empty(),
                );
                assert_eq!(plain, faulted);
                assert_eq!(obs.packets.dropped_fault, 0);
            }
        }

        #[test]
        fn heavy_death_faults_never_panic_and_attribute_every_loss() {
            // Kill relays aggressively on a multi-hop grid: the sim must
            // degrade (re-resolving routes), not collapse, and packet
            // accounting must stay conserved with fault losses visible.
            let config = NetworkConfig::sensor_default();
            let topo = Topology::grid(5, Length::from_meters(30.0));
            let model = FaultModel {
                death_rate: 0.4,
                outage_rate: 0.3,
                outage_rounds: 20,
                link_outage_rate: 0.2,
                link_outage_rounds: 15,
                fade_rate: 0.3,
                fade_factor: 0.6,
            };
            let faults = model.schedule(2003, topo.len(), 100);
            let (report, obs) = simulate_gathering_faulted_observed(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config,
                100,
                &faults,
            );
            assert!(obs.packets.is_conserved());
            assert!(obs.packets.dropped_fault > 0, "faults must cost packets");
            assert!(
                report.delivered_packets > 0,
                "the network must degrade, not die"
            );
            assert_eq!(report.delivered_packets, obs.packets.delivered);
            // The ledger still partitions the report's total energy.
            let total = report.total_energy.as_joules();
            assert!((obs.ledger.total().as_joules() - total).abs() <= 1e-9 * total);
        }

        #[test]
        fn relay_death_drops_as_fault_then_routing_re_resolves() {
            // Sink—1—2 line: node 2 must relay through node 1. Kill node
            // 1 at round 2: node 2's round-2 packet burns tx into the
            // dead relay (dropped_fault); from round 3 routing has
            // noticed and node 2 is disconnected.
            let topo = Topology::new(vec![
                Position::new(0.0, 0.0),
                Position::new(40.0, 0.0),
                Position::new(80.0, 0.0),
            ]);
            let mut config = NetworkConfig::sensor_default();
            config.idle_power = Power::ZERO;
            let faults = FaultSchedule::new(vec![FaultEvent::NodeDeath { node: 1, round: 2 }]);
            let (report, obs) = simulate_gathering_faulted_observed(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config,
                6,
                &faults,
            );
            // Rounds 0–1: both nodes deliver. Round 2: node 1 is off (no
            // offer), node 2 drops on the dead relay. Rounds 3–5: node 2
            // is disconnected.
            assert_eq!(obs.packets.offered, 4 + 1 + 3);
            assert_eq!(obs.packets.delivered, 4);
            assert_eq!(obs.packets.dropped_fault, 1);
            assert_eq!(obs.packets.dropped_disconnected, 3);
            assert!(obs.packets.is_conserved());
            assert_eq!(report.alive_nodes, 1);
            // Exogenous death is not an energy death.
            assert_eq!(report.first_death_round, None);
        }

        #[test]
        fn outage_powers_off_then_reboots_with_budget_intact() {
            // A single direct-to-sink node with an outage window: it
            // spends nothing while down and resumes reporting after.
            let topo = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let config = NetworkConfig::sensor_default();
            let faults = FaultSchedule::new(vec![FaultEvent::NodeOutage {
                node: 1,
                from: 2,
                until: 5,
            }]);
            let (report, obs) = simulate_gathering_faulted_observed(
                &topo,
                RoutingStrategy::DirectToSink,
                &config,
                8,
                &faults,
            );
            // Offered in rounds 0, 1, 5, 6, 7.
            assert_eq!(obs.packets.offered, 5);
            // Routing notices the reboot one round late: the round-5
            // report finds no route yet and drops as disconnected.
            assert_eq!(obs.packets.delivered, 4);
            assert_eq!(obs.packets.dropped_disconnected, 1);
            assert_eq!(report.alive_nodes, 1);
            // Exactly 5 rounds of idle + 4 transmissions were spent.
            let idle = (config.idle_power * config.report_interval).as_joules();
            let tx = config
                .radio
                .transmit_energy(config.packet.total_bits(), Length::from_meters(20.0))
                .as_joules();
            let expect = 5.0 * idle + 4.0 * tx;
            assert!((report.total_energy.as_joules() - expect).abs() < 1e-12);
        }

        #[test]
        fn link_outage_burns_tx_and_drops_as_fault() {
            let topo = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let mut config = NetworkConfig::sensor_default();
            config.idle_power = Power::ZERO;
            let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
                a: 1,
                b: 0,
                from: 1,
                until: 3,
            }]);
            let (report, obs) = simulate_gathering_faulted_observed(
                &topo,
                RoutingStrategy::DirectToSink,
                &config,
                4,
                &faults,
            );
            // The node keeps transmitting into the dead link (it cannot
            // know): 4 tx spent, rounds 1 and 2 lost to the fault.
            assert_eq!(obs.packets.offered, 4);
            assert_eq!(obs.packets.delivered, 2);
            assert_eq!(obs.packets.dropped_fault, 2);
            let tx = config
                .radio
                .transmit_energy(config.packet.total_bits(), Length::from_meters(20.0))
                .as_joules();
            assert!((report.total_energy.as_joules() - 4.0 * tx).abs() < 1e-12);
        }

        #[test]
        fn capacity_fade_scales_the_initial_budget() {
            let topo = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let config = NetworkConfig::sensor_default();
            let faults = FaultSchedule::new(vec![FaultEvent::CapacityFade {
                node: 1,
                factor: 0.25,
            }]);
            let plain = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 3);
            let faded = simulate_gathering_faulted(
                &topo,
                RoutingStrategy::DirectToSink,
                &config,
                3,
                &faults,
            );
            // Same spend, but the faded node starts 75% lower.
            assert_eq!(plain.total_energy, faded.total_energy);
            let lost = 0.75 * config.node_energy.as_joules();
            let gap = plain.residual_energy[0].as_joules() - faded.residual_energy[0].as_joules();
            assert!((gap - lost).abs() < 1e-9);
        }
    }
}
