//! Compressed-sparse-row adjacency for bounded-range hop graphs.
//!
//! [`Topology::neighbors_within`](crate::Topology::neighbors_within) is
//! an O(N) scan that allocates per call; every Dijkstra relaxation used
//! to pay it. A [`CsrAdjacency`] pre-resolves the whole hop graph for
//! one (topology, range) pair in a single O(N²) pass and stores it as
//! the classic offsets/targets pair, **id-ordered per row** so that
//! iteration order — and therefore deterministic tie-breaking and every
//! golden manifest downstream — is identical to the scan it replaces.
//! Hop distances are captured alongside each edge (the same
//! [`Position::distance_to`](crate::Position::distance_to) floats the
//! scan produced), so routing never recomputes a square root.
//!
//! Built lazily by [`Topology::csr_within`](crate::Topology::csr_within)
//! and cached on the topology behind an `Arc`, one slot per range:
//! healthy simulations build it exactly once.

use crate::topology::Position;
use ami_units::Length;

/// A bounded-range hop graph in compressed-sparse-row form.
///
/// Row `u` holds the ids of every node within `range` of `u` (itself
/// excluded) in ascending id order, plus the matching hop distances.
///
/// # Example
///
/// ```
/// use ami_net::Topology;
/// use ami_units::Length;
///
/// let grid = Topology::grid(3, Length::from_meters(10.0));
/// let csr = grid.csr_within(Length::from_meters(10.5));
/// // The centre node has its 4 orthogonal neighbours, id-ordered.
/// assert_eq!(csr.neighbors(4), &[1, 3, 5, 7]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    /// The range this graph was built for, as raw bits (the cache key).
    range_bits: u64,
    /// `offsets[u]..offsets[u + 1]` indexes row `u` in `targets`.
    offsets: Vec<u32>,
    /// Neighbour ids, ascending within each row.
    targets: Vec<u32>,
    /// Hop distance to the matching entry of `targets`, in metres.
    distances_m: Vec<f64>,
}

impl CsrAdjacency {
    /// Builds the hop graph over `positions` with hops bounded by
    /// `range` (inclusive, matching `neighbors_within`).
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` nodes.
    pub fn build(positions: &[Position], range: Length) -> Self {
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "CSR ids are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut distances_m = Vec::new();
        offsets.push(0u32);
        for (u, pu) in positions.iter().enumerate() {
            for (v, pv) in positions.iter().enumerate() {
                if u == v {
                    continue;
                }
                let d = pu.distance_to(pv);
                if d <= range {
                    targets.push(v as u32);
                    distances_m.push(d.as_meters());
                }
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            range_bits: range.as_meters().to_bits(),
            offsets,
            targets,
            distances_m,
        }
    }

    /// Whether this graph was built for `range` (bitwise-exact key).
    pub fn matches_range(&self, range: Length) -> bool {
        self.range_bits == range.as_meters().to_bits()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Neighbour ids of `node`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Neighbour ids of `node` paired with hop distances in metres,
    /// ascending by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors_with_distance(&self, node: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        (&self.targets[lo..hi], &self.distances_m[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};

    #[test]
    fn csr_rows_match_the_scan_exactly() {
        let topo = Topology::random(40, Length::from_meters(120.0), 7);
        for range_m in [15.0, 40.0, 80.0] {
            let range = Length::from_meters(range_m);
            let csr = CsrAdjacency::build(
                &topo.ids().map(|id| topo.position(id)).collect::<Vec<_>>(),
                range,
            );
            for u in topo.ids() {
                let scan: Vec<u32> = topo
                    .ids()
                    .filter(|&v| v != u && topo.distance(u, v) <= range)
                    .map(|v| v.0 as u32)
                    .collect();
                assert_eq!(csr.neighbors(u.0), scan.as_slice(), "row {u}");
                let (ids, dists) = csr.neighbors_with_distance(u.0);
                for (&v, &d) in ids.iter().zip(dists) {
                    assert_eq!(
                        d.to_bits(),
                        topo.distance(u, NodeId(v as usize)).as_meters().to_bits(),
                        "distance {u}->{v} must be bit-identical to the scan"
                    );
                }
            }
        }
    }

    #[test]
    fn range_key_is_bitwise() {
        let topo = Topology::grid(3, Length::from_meters(10.0));
        let positions: Vec<Position> = topo.ids().map(|id| topo.position(id)).collect();
        let csr = CsrAdjacency::build(&positions, Length::from_meters(10.5));
        assert!(csr.matches_range(Length::from_meters(10.5)));
        assert!(!csr.matches_range(Length::from_meters(15.0)));
        assert_eq!(csr.len(), 9);
        // 4 corners x 2 + 4 edges x 3 + centre x 4 edges, directed.
        assert_eq!(csr.edge_count(), 24);
    }
}
