//! Compressed-sparse-row adjacency for bounded-range hop graphs.
//!
//! [`Topology::neighbors_within`](crate::Topology::neighbors_within) is
//! an O(N) scan that allocates per call; every Dijkstra relaxation used
//! to pay it. A [`CsrAdjacency`] pre-resolves the whole hop graph for
//! one (topology, range) pair — candidate pairs drawn from a uniform
//! spatial grid (3×3 cell probe, O(N · candidates) work; the historical
//! all-pairs O(N²) scan survives as [`CsrAdjacency::build_scan`], the
//! pinned oracle) — and stores it as
//! the classic offsets/targets pair, **id-ordered per row** so that
//! iteration order — and therefore deterministic tie-breaking and every
//! golden manifest downstream — is identical to the scan it replaces.
//! Hop distances are captured alongside each edge (the same
//! [`Position::distance_to`](crate::Position::distance_to) floats the
//! scan produced), so routing never recomputes a square root.
//!
//! Built lazily by [`Topology::csr_within`](crate::Topology::csr_within)
//! and cached on the topology behind an `Arc`, one slot per range:
//! healthy simulations build it exactly once.

use crate::topology::Position;
use ami_units::Length;

/// A bounded-range hop graph in compressed-sparse-row form.
///
/// Row `u` holds the ids of every node within `range` of `u` (itself
/// excluded) in ascending id order, plus the matching hop distances.
///
/// # Example
///
/// ```
/// use ami_net::Topology;
/// use ami_units::Length;
///
/// let grid = Topology::grid(3, Length::from_meters(10.0));
/// let csr = grid.csr_within(Length::from_meters(10.5));
/// // The centre node has its 4 orthogonal neighbours, id-ordered.
/// assert_eq!(csr.neighbors(4), &[1, 3, 5, 7]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    /// The range this graph was built for, as raw bits (the cache key).
    range_bits: u64,
    /// `offsets[u]..offsets[u + 1]` indexes row `u` in `targets`.
    offsets: Vec<u32>,
    /// Neighbour ids, ascending within each row.
    targets: Vec<u32>,
    /// Hop distance to the matching entry of `targets`, in metres.
    distances_m: Vec<f64>,
}

impl CsrAdjacency {
    /// Builds the hop graph over `positions` with hops bounded by
    /// `range` (inclusive, matching `neighbors_within`).
    ///
    /// Candidate pairs come from a uniform spatial grid with cells at
    /// least `range` wide (probing the 3×3 block around each node), so
    /// construction is O(N · candidates) instead of the all-pairs scan —
    /// the difference between seconds and hours at city scale. Rows are
    /// still emitted in ascending id order with the exact same
    /// [`Position::distance_to`] floats, so the result is bit-identical
    /// to [`build_scan`](Self::build_scan) (pinned by tests).
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` nodes.
    pub fn build(positions: &[Position], range: Length) -> Self {
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "CSR ids are u32");
        let r = range.as_meters();
        if n == 0 || !r.is_finite() || r <= 0.0 {
            // Degenerate ranges have no useful cell size; the scan is
            // exact and these cases are never hot.
            return Self::build_scan(positions, range);
        }

        // Deployment bounding box.
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }

        // Cell size: at least `range` so the 3×3 probe covers every
        // in-range pair, and at least extent/√n so the grid stays O(n)
        // cells even when the range is tiny relative to the field.
        let cap = (n as f64).sqrt().ceil().max(1.0);
        let cell = r.max((max_x - min_x) / cap).max((max_y - min_y) / cap);
        let nx = ((max_x - min_x) / cell) as usize + 1;
        let ny = ((max_y - min_y) / cell) as usize + 1;
        let cell_xy = |p: &Position| -> (usize, usize) {
            let cx = (((p.x - min_x) / cell) as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell) as usize).min(ny - 1);
            (cx, cy)
        };

        // Counting-sort node ids into cells (ascending id per cell).
        let cells = nx * ny;
        let mut start = vec![0u32; cells + 1];
        for p in positions {
            let (cx, cy) = cell_xy(p);
            start[cy * nx + cx + 1] += 1;
        }
        for c in 0..cells {
            start[c + 1] += start[c];
        }
        let mut bucket = vec![0u32; n];
        let mut cursor = start.clone();
        for (id, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_xy(p);
            let c = cy * nx + cx;
            bucket[cursor[c] as usize] = id as u32;
            cursor[c] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut distances_m = Vec::new();
        let mut candidates: Vec<u32> = Vec::new();
        offsets.push(0u32);
        for (u, pu) in positions.iter().enumerate() {
            let (cx, cy) = cell_xy(pu);
            candidates.clear();
            for gy in cy.saturating_sub(1)..=(cy + 1).min(ny - 1) {
                for gx in cx.saturating_sub(1)..=(cx + 1).min(nx - 1) {
                    let c = gy * nx + gx;
                    candidates.extend_from_slice(&bucket[start[c] as usize..start[c + 1] as usize]);
                }
            }
            // Nine ascending runs merge into one ascending row: the sort
            // restores the id order the scan produced.
            candidates.sort_unstable();
            for &vid in &candidates {
                let v = vid as usize;
                if v == u {
                    continue;
                }
                let d = pu.distance_to(&positions[v]);
                if d <= range {
                    targets.push(vid);
                    distances_m.push(d.as_meters());
                }
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            range_bits: range.as_meters().to_bits(),
            offsets,
            targets,
            distances_m,
        }
    }

    /// The historical all-pairs O(N²) construction, kept in-tree as the
    /// pinned oracle for the spatial-grid [`build`](Self::build): tests
    /// diff the two row-for-row (ids *and* distance bits) on random and
    /// degenerate layouts.
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` nodes.
    pub fn build_scan(positions: &[Position], range: Length) -> Self {
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "CSR ids are u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut distances_m = Vec::new();
        offsets.push(0u32);
        for (u, pu) in positions.iter().enumerate() {
            for (v, pv) in positions.iter().enumerate() {
                if u == v {
                    continue;
                }
                let d = pu.distance_to(pv);
                if d <= range {
                    targets.push(v as u32);
                    distances_m.push(d.as_meters());
                }
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            range_bits: range.as_meters().to_bits(),
            offsets,
            targets,
            distances_m,
        }
    }

    /// Whether this graph was built for `range` (bitwise-exact key).
    pub fn matches_range(&self, range: Length) -> bool {
        self.range_bits == range.as_meters().to_bits()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Neighbour ids of `node`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Neighbour ids of `node` paired with hop distances in metres,
    /// ascending by id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors_with_distance(&self, node: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        (&self.targets[lo..hi], &self.distances_m[lo..hi])
    }
}

/// A partition of the node id space into contiguous regions for
/// intra-run parallel execution.
///
/// Regions are **ascending contiguous id ranges**: region `r` owns ids
/// `range(r)`, and `r < s` implies every id of `r` precedes every id of
/// `s`. That makes the PDES merge contract trivial — folding regions in
/// region-id order, nodes in node-id order, is exactly ascending global
/// node id, the order the serial kernel charges in — and lets workers
/// take disjoint `&mut` slices of per-node state without locks.
///
/// [`balanced`](Self::balanced) places the cut points using the same
/// spatial grid the CSR construction buckets with: each node is
/// weighted by its 3×3-block candidate count (a degree estimate, i.e.
/// expected relay/forwarding work), and cuts equalize cumulative weight
/// instead of raw node counts, so a dense downtown cell does not pin
/// one region while suburban regions idle.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPartition {
    /// `bounds[r]..bounds[r + 1]` is region `r`; `bounds[0] == 0` and
    /// `bounds[regions] == n`.
    bounds: Vec<u32>,
}

impl RegionPartition {
    /// An even split of `n` ids into `regions` contiguous ranges
    /// (earlier regions take the remainder).
    ///
    /// # Panics
    ///
    /// Panics if `regions` is 0 or `n` exceeds `u32::MAX`.
    pub fn contiguous(n: usize, regions: usize) -> Self {
        assert!(regions > 0, "at least one region");
        assert!(u32::try_from(n).is_ok(), "region ids are u32");
        let mut bounds = Vec::with_capacity(regions + 1);
        bounds.push(0u32);
        let base = n / regions;
        let extra = n % regions;
        let mut at = 0usize;
        for r in 0..regions {
            at += base + usize::from(r < extra);
            bounds.push(at as u32);
        }
        Self { bounds }
    }

    /// A degree-balanced split of `positions` into `regions` contiguous
    /// id ranges, weighted by spatial-grid candidate counts at `range`.
    /// Degenerate ranges (no grid) fall back to [`contiguous`](Self::contiguous).
    ///
    /// # Panics
    ///
    /// Panics if `regions` is 0 or there are more than `u32::MAX` nodes.
    pub fn balanced(positions: &[Position], range: Length, regions: usize) -> Self {
        assert!(regions > 0, "at least one region");
        let n = positions.len();
        assert!(u32::try_from(n).is_ok(), "region ids are u32");
        let r = range.as_meters();
        if n == 0 || regions == 1 || !r.is_finite() || r <= 0.0 {
            return Self::contiguous(n, regions);
        }

        // The same grid the CSR construction uses (bounding box, cell
        // side at least `range` and at least extent/√n).
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let cap = (n as f64).sqrt().ceil().max(1.0);
        let cell = r.max((max_x - min_x) / cap).max((max_y - min_y) / cap);
        let nx = ((max_x - min_x) / cell) as usize + 1;
        let ny = ((max_y - min_y) / cell) as usize + 1;
        let cell_xy = |p: &Position| -> (usize, usize) {
            let cx = (((p.x - min_x) / cell) as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell) as usize).min(ny - 1);
            (cx, cy)
        };
        let mut count = vec![0u64; nx * ny];
        for p in positions {
            let (cx, cy) = cell_xy(p);
            count[cy * nx + cx] += 1;
        }

        // Node weight = 3×3-block occupancy (the CSR candidate count).
        // Cuts land where the cumulative weight crosses each region's
        // equal share.
        let mut total = 0u64;
        let weights: Vec<u64> = positions
            .iter()
            .map(|p| {
                let (cx, cy) = cell_xy(p);
                let mut w = 0u64;
                for gy in cy.saturating_sub(1)..=(cy + 1).min(ny - 1) {
                    for gx in cx.saturating_sub(1)..=(cx + 1).min(nx - 1) {
                        w += count[gy * nx + gx];
                    }
                }
                total += w;
                w
            })
            .collect();

        let mut bounds = Vec::with_capacity(regions + 1);
        bounds.push(0u32);
        let mut acc = 0u64;
        let mut id = 0usize;
        for r in 1..regions {
            // Integer-exact target: region r's share boundary.
            let target = total * r as u64 / regions as u64;
            while id < n && acc < target {
                acc += weights[id];
                id += 1;
            }
            bounds.push(id as u32);
        }
        bounds.push(n as u32);
        Self { bounds }
    }

    /// Number of regions (some may be empty).
    pub fn regions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The id range owned by `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn range(&self, region: usize) -> std::ops::Range<usize> {
        self.bounds[region] as usize..self.bounds[region + 1] as usize
    }

    /// The region owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is past the partitioned id space.
    pub fn region_of(&self, node: usize) -> usize {
        let n = *self.bounds.last().expect("bounds non-empty") as usize;
        assert!(node < n, "node {node} outside the partitioned ids 0..{n}");
        self.bounds.partition_point(|&b| b as usize <= node) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, Topology};

    #[test]
    fn csr_rows_match_the_scan_exactly() {
        let topo = Topology::random(40, Length::from_meters(120.0), 7);
        for range_m in [15.0, 40.0, 80.0] {
            let range = Length::from_meters(range_m);
            let csr = CsrAdjacency::build(
                &topo.ids().map(|id| topo.position(id)).collect::<Vec<_>>(),
                range,
            );
            for u in topo.ids() {
                let scan: Vec<u32> = topo
                    .ids()
                    .filter(|&v| v != u && topo.distance(u, v) <= range)
                    .map(|v| v.0 as u32)
                    .collect();
                assert_eq!(csr.neighbors(u.0), scan.as_slice(), "row {u}");
                let (ids, dists) = csr.neighbors_with_distance(u.0);
                for (&v, &d) in ids.iter().zip(dists) {
                    assert_eq!(
                        d.to_bits(),
                        topo.distance(u, NodeId(v as usize)).as_meters().to_bits(),
                        "distance {u}->{v} must be bit-identical to the scan"
                    );
                }
            }
        }
    }

    fn assert_is_partition(part: &RegionPartition, n: usize) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for r in 0..part.regions() {
            let range = part.range(r);
            assert_eq!(range.start, prev_end, "regions are contiguous");
            prev_end = range.end;
            for id in range.clone() {
                assert_eq!(part.region_of(id), r);
            }
            covered += range.len();
        }
        assert_eq!(covered, n, "every id owned exactly once");
        assert_eq!(prev_end, n);
    }

    #[test]
    fn contiguous_partition_covers_every_id() {
        for (n, regions) in [(0, 3), (1, 4), (10, 3), (97, 8), (8, 8), (5, 9)] {
            let part = RegionPartition::contiguous(n, regions);
            assert_eq!(part.regions(), regions);
            assert_is_partition(&part, n);
            // Even split: region sizes differ by at most one.
            let sizes: Vec<usize> = (0..regions).map(|r| part.range(r).len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn balanced_partition_covers_and_tracks_density() {
        let range = Length::from_meters(45.0);
        for seed in 0..4u64 {
            let topo = Topology::random(400, Length::from_meters(500.0), seed);
            let positions: Vec<Position> = topo.ids().map(|id| topo.position(id)).collect();
            for regions in [1, 2, 8, 16] {
                let part = RegionPartition::balanced(&positions, range, regions);
                assert_eq!(part.regions(), regions);
                assert_is_partition(&part, positions.len());
            }
        }
        // Degenerate range falls back to the even split.
        let positions = vec![Position::new(3.0, 4.0); 12];
        let part = RegionPartition::balanced(&positions, Length::from_meters(0.0), 4);
        assert_eq!(part, RegionPartition::contiguous(12, 4));
    }

    #[test]
    fn region_of_rejects_out_of_range_ids() {
        let part = RegionPartition::contiguous(10, 2);
        assert_eq!(part.region_of(9), 1);
        let out = std::panic::catch_unwind(|| part.region_of(10));
        assert!(out.is_err());
    }

    #[test]
    fn range_key_is_bitwise() {
        let topo = Topology::grid(3, Length::from_meters(10.0));
        let positions: Vec<Position> = topo.ids().map(|id| topo.position(id)).collect();
        let csr = CsrAdjacency::build(&positions, Length::from_meters(10.5));
        assert!(csr.matches_range(Length::from_meters(10.5)));
        assert!(!csr.matches_range(Length::from_meters(15.0)));
        assert_eq!(csr.len(), 9);
        // 4 corners x 2 + 4 edges x 3 + centre x 4 edges, directed.
        assert_eq!(csr.edge_count(), 24);
    }
}
