//! Multi-seed replication of gathering simulations over random
//! topologies, on the parallel runner.
//!
//! A single random field says little: the keynote's network-level claims
//! (multi-hop savings, the energy hole, delivery under loss) need
//! confidence intervals over topology draws. This module replicates
//! [`simulate_gathering`] across `base_seed + k` topologies with the
//! same seed-partitioning scheme as `ami_sim::replicate` — replication
//! `k` always sees seed `base_seed + k`, and reports come back in seed
//! order, so the parallel path is bit-exact with a serial loop at any
//! worker count (enforced by `tests/determinism.rs`).
//!
//! Each replication inherits the gather core's hot-path machinery
//! (CSR adjacency, epoch-cached routing, allocation-free rounds — see
//! DESIGN.md "Performance"): route tables rebuild only when a fault
//! or death changes the usable set, and since every replication draws
//! a fresh [`Topology`], the per-topology CSR is built once per
//! replication, never shared nor rebuilt across rounds. The
//! `faulted_replication` group of `expt_bench_snapshot` /
//! `BENCH_NET.json` tracks this path end-to-end.

use crate::gather::{
    simulate_gathering, simulate_gathering_faulted_observed, simulate_gathering_observed,
    NetworkConfig, NetworkReport,
};
use crate::routing::RoutingStrategy;
use crate::topology::Topology;
use ami_sim::fault::FaultSchedule;
use ami_sim::obs::LedgerRecorder;
use ami_sim::summarize;
use ami_sim::Summary;

/// Replicates a gathering study across seeded random topologies with
/// the default [`thread_count`](ami_sim::runner::thread_count),
/// returning one report per seed, in seed order.
///
/// `topology` builds the field for a given seed — typically
/// `|seed| Topology::random(n, field, seed)`, but any deterministic
/// seed-to-field map works (e.g. jittered grids).
///
/// # Panics
///
/// Panics if `replications` or `rounds` is zero.
pub fn replicate_gathering(
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> Vec<NetworkReport> {
    replicate_gathering_threads(
        ami_sim::runner::thread_count(),
        replications,
        base_seed,
        topology,
        strategy,
        config,
        rounds,
    )
}

/// [`replicate_gathering`] with an explicit worker count (1 = serial
/// loop). Exposed so tests and benchmarks can pin the thread topology.
///
/// # Panics
///
/// Panics if `threads`, `replications` or `rounds` is zero.
pub fn replicate_gathering_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> Vec<NetworkReport> {
    assert!(replications > 0, "at least one replication");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    ami_sim::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        simulate_gathering(&topology(seed), strategy, config, rounds)
    })
}

/// [`replicate_gathering`] with observation: returns the per-seed
/// reports plus one [`LedgerRecorder`] accumulated over all
/// replications. Per-replication recorders are merged **in seed order**
/// regardless of which worker finished first, so the combined ledger and
/// counters are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `replications` or `rounds` is zero.
pub fn replicate_gathering_observed(
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> (Vec<NetworkReport>, LedgerRecorder) {
    replicate_gathering_observed_threads(
        ami_sim::runner::thread_count(),
        replications,
        base_seed,
        topology,
        strategy,
        config,
        rounds,
    )
}

/// [`replicate_gathering_observed`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `threads`, `replications` or `rounds` is zero.
pub fn replicate_gathering_observed_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> (Vec<NetworkReport>, LedgerRecorder) {
    assert!(replications > 0, "at least one replication");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    let observed = ami_sim::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        simulate_gathering_observed(&topology(seed), strategy, config, rounds)
    });
    // par_map returns results in seed order, so this serial fold is the
    // deterministic index-order merge.
    let mut merged = LedgerRecorder::with_nodes(0);
    let mut reports = Vec::with_capacity(observed.len());
    for (report, recorder) in observed {
        merged.merge(&recorder);
        reports.push(report);
    }
    (reports, merged)
}

/// [`replicate_gathering_observed`] under per-replication fault
/// schedules, with the default worker count.
///
/// `faults` maps each replication's seed to its [`FaultSchedule`] —
/// typically `|seed| spec.schedule_for(seed, nodes, rounds)` so every
/// topology draw gets a decorrelated but reproducible fault history.
/// Like `topology`, it must be a pure function of the seed: the runner
/// may call it from any worker.
///
/// # Panics
///
/// Panics if `replications` or `rounds` is zero.
pub fn replicate_gathering_faulted_observed(
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    faults: impl Fn(u64) -> FaultSchedule + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> (Vec<NetworkReport>, LedgerRecorder) {
    replicate_gathering_faulted_observed_threads(
        ami_sim::runner::thread_count(),
        replications,
        base_seed,
        topology,
        faults,
        strategy,
        config,
        rounds,
    )
}

/// [`replicate_gathering_faulted_observed`] with an explicit worker
/// count (1 = serial loop). Reports come back in seed order and the
/// recorder merge is index-ordered, so results are bit-identical at any
/// thread count.
///
/// # Panics
///
/// Panics if `threads`, `replications` or `rounds` is zero.
#[allow(clippy::too_many_arguments)]
pub fn replicate_gathering_faulted_observed_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    topology: impl Fn(u64) -> Topology + Sync,
    faults: impl Fn(u64) -> FaultSchedule + Sync,
    strategy: RoutingStrategy,
    config: &NetworkConfig,
    rounds: u64,
) -> (Vec<NetworkReport>, LedgerRecorder) {
    assert!(replications > 0, "at least one replication");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    let observed = ami_sim::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        simulate_gathering_faulted_observed(
            &topology(seed),
            strategy,
            config,
            rounds,
            &faults(seed),
        )
    });
    let mut merged = LedgerRecorder::with_nodes(0);
    let mut reports = Vec::with_capacity(observed.len());
    for (report, recorder) in observed {
        merged.merge(&recorder);
        reports.push(report);
    }
    (reports, merged)
}

/// Summarizes one scalar observable over replicated reports — the
/// confidence-interval companion to [`replicate_gathering`].
///
/// # Example
///
/// ```
/// use ami_net::{replicate_gathering, summarize_reports, NetworkConfig,
///     RoutingStrategy, Topology};
/// use ami_units::Length;
///
/// let reports = replicate_gathering(
///     8, 42,
///     |seed| Topology::random(12, Length::from_meters(80.0), seed),
///     RoutingStrategy::MinimumEnergy,
///     &NetworkConfig::sensor_default(),
///     20,
/// );
/// let delivered = summarize_reports(&reports, |r| r.delivered_packets as f64);
/// assert_eq!(delivered.n, 8);
/// assert!(delivered.mean > 0.0);
/// ```
///
/// # Panics
///
/// Panics if `reports` is empty or the observable is non-finite.
pub fn summarize_reports(
    reports: &[NetworkReport],
    observable: impl Fn(&NetworkReport) -> f64,
) -> Summary {
    let values: Vec<f64> = reports.iter().map(observable).collect();
    summarize(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ami_units::Length;

    fn field(seed: u64) -> Topology {
        Topology::random(10, Length::from_meters(70.0), seed)
    }

    #[test]
    fn reports_come_back_in_seed_order() {
        let config = NetworkConfig::sensor_default();
        let replicated =
            replicate_gathering(4, 7, field, RoutingStrategy::MinimumEnergy, &config, 10);
        for (k, report) in replicated.iter().enumerate() {
            let solo = simulate_gathering(
                &field(7 + k as u64),
                RoutingStrategy::MinimumEnergy,
                &config,
                10,
            );
            assert_eq!(*report, solo, "replication {k}");
        }
    }

    #[test]
    fn thread_count_does_not_change_reports() {
        let config = NetworkConfig::sensor_default();
        let serial = replicate_gathering_threads(
            1,
            6,
            99,
            field,
            RoutingStrategy::MinimumEnergy,
            &config,
            15,
        );
        for threads in [2, 4, 8] {
            let parallel = replicate_gathering_threads(
                threads,
                6,
                99,
                field,
                RoutingStrategy::MinimumEnergy,
                &config,
                15,
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn summary_matches_hand_fold() {
        let config = NetworkConfig::sensor_default();
        let reports = replicate_gathering(5, 1, field, RoutingStrategy::DirectToSink, &config, 5);
        let summary = summarize_reports(&reports, |r| r.delivered_packets as f64);
        let mean = reports
            .iter()
            .map(|r| r.delivered_packets as f64)
            .sum::<f64>()
            / reports.len() as f64;
        assert_eq!(summary.n, 5);
        assert!((summary.mean - mean).abs() < 1e-12);
    }

    #[test]
    fn observed_replication_merges_in_seed_order() {
        let config = NetworkConfig::sensor_default();
        let (reports, merged) = replicate_gathering_observed_threads(
            1,
            5,
            42,
            field,
            RoutingStrategy::MinimumEnergy,
            &config,
            10,
        );
        // Merged counters equal the sum over per-seed runs.
        let mut expect = ami_sim::obs::LedgerRecorder::with_nodes(0);
        for k in 0..5u64 {
            let (_, solo) = simulate_gathering_observed(
                &field(42 + k),
                RoutingStrategy::MinimumEnergy,
                &config,
                10,
            );
            expect.merge(&solo);
        }
        assert_eq!(merged, expect);
        assert_eq!(
            merged.packets.delivered,
            reports.iter().map(|r| r.delivered_packets).sum::<u64>()
        );

        // And the merge is bit-identical at any worker count.
        for threads in [2, 4, 8] {
            let (par_reports, par_merged) = replicate_gathering_observed_threads(
                threads,
                5,
                42,
                field,
                RoutingStrategy::MinimumEnergy,
                &config,
                10,
            );
            assert_eq!(reports, par_reports, "threads = {threads}");
            assert_eq!(merged, par_merged, "threads = {threads}");
        }
    }

    #[test]
    fn faulted_replication_is_thread_invariant() {
        use ami_sim::fault::FaultModel;
        let config = NetworkConfig::sensor_default();
        let model = FaultModel {
            death_rate: 0.15,
            outage_rate: 0.2,
            outage_rounds: 5,
            link_outage_rate: 0.1,
            link_outage_rounds: 4,
            fade_rate: 0.2,
            fade_factor: 0.5,
        };
        let schedule = |seed: u64| model.schedule(seed, 10, 12);
        let (serial, serial_obs) = replicate_gathering_faulted_observed_threads(
            1,
            6,
            77,
            field,
            schedule,
            RoutingStrategy::MinimumEnergy,
            &config,
            12,
        );
        assert!(serial_obs.packets.is_conserved());
        assert!(
            serial_obs.packets.dropped_fault > 0,
            "this fault mix must cost packets somewhere in 6 replications"
        );
        for threads in [2, 8] {
            let (parallel, parallel_obs) = replicate_gathering_faulted_observed_threads(
                threads,
                6,
                77,
                field,
                schedule,
                RoutingStrategy::MinimumEnergy,
                &config,
                12,
            );
            assert_eq!(serial, parallel, "threads = {threads}");
            assert_eq!(serial_obs, parallel_obs, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = replicate_gathering(
            0,
            0,
            field,
            RoutingStrategy::DirectToSink,
            &NetworkConfig::sensor_default(),
            1,
        );
    }
}
