//! Route construction: who relays for whom.
//!
//! The minimum-energy strategy runs a binary-heap Dijkstra over the
//! topology's cached [`CsrAdjacency`](crate::csr::CsrAdjacency) hop
//! graph, with deterministic tie-breaking on [`NodeId`]: among equal
//! tentative distances the lowest id settles first, exactly like the
//! O(N²) scan it replaced, so route tables — and every golden manifest
//! built on them — are bit-identical to the historical implementation
//! (`tests` pin this against a reference scan).
//!
//! [`RouteCache`] wraps a table in a usable-set epoch: the table is
//! recomputed only when the usable set actually differs from the one the
//! routes were last built over, and each build pre-resolves per-node
//! next-hop transmit costs and sink connectivity so the simulators'
//! round loops touch no allocator and recompute no distances.
//!
//! Since the city-scale work, a usable-set *transition* no longer pays a
//! full-graph Dijkstra: the cache keeps the final distance labels of the
//! last build and performs **incremental route repair** — it invalidates
//! exactly the parent-tree subtrees hanging off newly-unusable nodes
//! (plus any rebooted nodes), re-seeds the frontier from untouched
//! neighbours, and re-relaxes only that wave. Because heap Dijkstra with
//! `(dist, id)` tie-breaking makes every node's parent a pure function
//! of the final distance labels (the lowest-`(dist, id)` optimal
//! predecessor), the repaired table is bit-identical to a from-scratch
//! rebuild — a contract pinned by the differential tests in
//! `tests/differential.rs`, which drive random topologies × random fault
//! schedules through both paths. The full-rebuild path stays in-tree as
//! that oracle, reachable via [`set_route_repair_enabled`]. Repairs are
//! observable through [`route_repair_count`] next to the existing
//! [`route_build_count`].

use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::{DataVolume, Length};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The routing strategies compared in experiment F6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Every node transmits straight to the sink, whatever the distance.
    DirectToSink,
    /// Dijkstra shortest paths to the sink under the first-order radio
    /// energy metric, with hops bounded by the radio range.
    MinimumEnergy,
}

impl std::fmt::Display for RoutingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingStrategy::DirectToSink => "direct-to-sink",
            RoutingStrategy::MinimumEnergy => "minimum-energy multi-hop",
        })
    }
}

thread_local! {
    /// Route builds performed on this thread (test instrumentation).
    static ROUTE_BUILDS: Cell<u64> = const { Cell::new(0) };
    /// Incremental route repairs performed on this thread.
    static ROUTE_REPAIRS: Cell<u64> = const { Cell::new(0) };
    /// Whether [`RouteCache`] may repair instead of rebuilding.
    static REPAIR_ENABLED: Cell<bool> = const { Cell::new(true) };
}

fn note_route_build() {
    ROUTE_BUILDS.with(|count| count.set(count.get() + 1));
}

fn note_route_repair() {
    ROUTE_REPAIRS.with(|count| count.set(count.get() + 1));
}

/// Number of route-table builds performed on this thread since the last
/// [`reset_route_build_count`]. Test instrumentation: the epoch-cache
/// regression tests count builds across whole simulations with it.
///
/// # Thread safety
///
/// The counter is **thread-local**: builds performed by worker threads
/// (the region-parallel PDES engine included — its workers replay routing
/// on the caller's thread, which is why `expt_f15_city_scale` can read
/// it) are visible only on the thread that performed them. When a test
/// needs counts attributable to one simulation rather than one thread,
/// prefer the per-cache [`RouteCache::builds`] / [`RouteCache::repairs`]
/// accessors, which need no global state at all.
pub fn route_build_count() -> u64 {
    ROUTE_BUILDS.with(Cell::get)
}

/// Resets this thread's [`route_build_count`] to zero.
pub fn reset_route_build_count() {
    ROUTE_BUILDS.with(|count| count.set(0));
}

/// Number of incremental route repairs performed on this thread since
/// the last [`reset_route_repair_count`]. A usable-set transition costs
/// one repair instead of one build whenever the cache can splice the
/// affected subtrees; builds + repairs together account for every
/// transition.
///
/// # Thread safety
///
/// Thread-local, exactly as [`route_build_count`]; see the note there.
pub fn route_repair_count() -> u64 {
    ROUTE_REPAIRS.with(Cell::get)
}

/// Resets this thread's [`route_repair_count`] to zero.
pub fn reset_route_repair_count() {
    ROUTE_REPAIRS.with(|count| count.set(0));
}

/// Whether [`RouteCache`] repairs incrementally on this thread.
pub fn route_repair_enabled() -> bool {
    REPAIR_ENABLED.with(Cell::get)
}

/// Enables or disables incremental repair on this thread, returning the
/// previous setting. Disabling forces every usable-set transition back
/// onto the historical full-rebuild path — the in-tree oracle the
/// differential tests diff the repair path against.
///
/// # Thread safety
///
/// The flag is **thread-local**: it affects only [`RouteCache`]s driven
/// from the calling thread, and caches carrying a per-cache override
/// ([`RouteCache::set_repair_enabled`]) ignore it entirely. Code that
/// owns its cache should prefer the per-cache override — it cannot leak
/// into sibling simulations on the same thread, and restoring it is a
/// field write rather than a thread-wide toggle.
pub fn set_route_repair_enabled(enabled: bool) -> bool {
    REPAIR_ENABLED.with(|flag| flag.replace(enabled))
}

/// Builds the next-hop table: `table[node] = Some(next)` for every
/// non-sink node that can reach the sink, `None` for disconnected nodes
/// (and for the sink itself).
///
/// For [`RoutingStrategy::MinimumEnergy`] edges exist between nodes within
/// `max_hop` of each other, weighted by the per-bit hop energy of the
/// radio model; [`RoutingStrategy::DirectToSink`] ignores `max_hop`
/// (the amplifier simply pays the full distance).
pub fn build_routes(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
) -> Vec<Option<NodeId>> {
    note_route_build();
    match strategy {
        RoutingStrategy::DirectToSink => topology
            .ids()
            .map(|id| {
                if id == topology.sink() {
                    None
                } else {
                    Some(topology.sink())
                }
            })
            .collect(),
        RoutingStrategy::MinimumEnergy => dijkstra_to_sink(topology, radio, max_hop, None),
    }
}

/// [`build_routes`] restricted to the `usable` node subset: nodes with
/// `usable[id] == false` get no route and relay for nobody (the sink is
/// always usable). Equivalent to rebuilding on the sub-topology of the
/// usable nodes, but reuses the full topology's cached CSR hop graph —
/// the id-order-preserving subset walk keeps the result bit-identical
/// to a compact rebuild (pinned in `gather::tests`).
///
/// # Panics
///
/// Panics if `usable` is shorter than the topology.
pub fn build_routes_over(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: &[bool],
) -> Vec<Option<NodeId>> {
    assert!(usable.len() >= topology.len(), "usable mask too short");
    note_route_build();
    let sink = topology.sink();
    match strategy {
        RoutingStrategy::DirectToSink => topology
            .ids()
            .map(|id| {
                if id != sink && usable[id.0] {
                    Some(sink)
                } else {
                    None
                }
            })
            .collect(),
        RoutingStrategy::MinimumEnergy => dijkstra_to_sink(topology, radio, max_hop, Some(usable)),
    }
}

/// A pending heap entry; ordered by `(dist, node)` so ties settle
/// lowest-id-first, matching the historical linear scan.
#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Distances are finite, non-negative path sums: total_cmp is a
        // plain numeric order here, it just satisfies Ord's contract.
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from the sink outwards over the bounded-range CSR hop
/// graph; each node's parent toward the sink becomes its next hop.
/// With `usable`, non-usable nodes are treated as absent.
fn dijkstra_to_sink(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: Option<&[bool]>,
) -> Vec<Option<NodeId>> {
    let n = topology.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    dijkstra_into(
        topology,
        radio,
        max_hop,
        usable,
        &mut dist,
        &mut parent,
        &mut heap,
    );
    parent
}

/// The Dijkstra core behind [`dijkstra_to_sink`] and the full-build arm
/// of [`RouteCache`]: resets `dist`/`parent` in place and fills both,
/// reusing the caller's heap scratch. Stale heap entries are skipped by
/// the `d > dist[u]` check alone — with strictly positive weights a
/// node's first pop carries its final distance, so a separate visited
/// set changes nothing.
fn dijkstra_into(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: Option<&[bool]>,
    dist: &mut [f64],
    parent: &mut [Option<NodeId>],
    heap: &mut BinaryHeap<Reverse<HeapEntry>>,
) {
    let sink = topology.sink();
    let csr = topology.csr_within(max_hop);
    dist.fill(f64::INFINITY);
    parent.fill(None);
    heap.clear();
    dist[sink.0] = 0.0;
    heap.push(Reverse(HeapEntry {
        dist: 0.0,
        node: sink.0 as u32,
    }));

    while let Some(Reverse(HeapEntry { dist: d, node })) = heap.pop() {
        let u = node as usize;
        if d > dist[u] {
            continue; // stale entry superseded by a better one
        }
        let (targets, hops_m) = csr.neighbors_with_distance(u);
        for (&target, &hop_m) in targets.iter().zip(hops_m) {
            let v = target as usize;
            if let Some(mask) = usable {
                if v != sink.0 && !mask[v] {
                    continue;
                }
            }
            let weight = radio
                .hop_energy_per_bit(Length::from_meters(hop_m))
                .as_joules_per_bit();
            let candidate = dist[u] + weight;
            if candidate < dist[v] {
                dist[v] = candidate;
                parent[v] = Some(NodeId(u));
                heap.push(Reverse(HeapEntry {
                    dist: candidate,
                    node: target,
                }));
            }
        }
    }
}

/// Walks a route table from `node` to the sink, returning the hop
/// sequence (empty when disconnected or when `node` is the sink).
pub fn route_to_sink(table: &[Option<NodeId>], topology: &Topology, node: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut current = node;
    // Bounded walk guards against accidental cycles.
    for _ in 0..table.len() {
        match table[current.0] {
            Some(next) => {
                path.push(next);
                if next == topology.sink() {
                    return path;
                }
                current = next;
            }
            None => return Vec::new(),
        }
    }
    Vec::new()
}

/// A next-hop table cached behind a usable-set epoch.
///
/// The simulators' round loops call [`ensure`](RouteCache::ensure) every
/// time the usable set *may* have changed; the table is recomputed only
/// when it *did* change (fault events are sparse, and a healthy run
/// builds exactly once). Each build also pre-resolves, per node, the
/// transmit energy to its next hop and whether its route reaches the
/// sink, so the per-packet hot loop is pure array reads — no `Vec`
/// allocation, no distance recomputation.
///
/// A minimum-energy transition after the first build runs as an
/// **incremental repair** (see the module docs): only the parent-tree
/// subtrees hanging off the changed nodes are re-relaxed, against the
/// retained distance labels of the previous epoch, using scratch buffers
/// that the cache reuses across transitions. The result is bit-identical
/// to a full rebuild; [`builds`](RouteCache::builds) and
/// [`repairs`](RouteCache::repairs) say which path each transition took.
///
/// # Example
///
/// ```
/// use ami_net::routing::RouteCache;
/// use ami_net::{RoutingStrategy, Topology};
/// use ami_radio::{Packet, RadioEnergyModel};
/// use ami_units::Length;
///
/// let topo = Topology::grid(3, Length::from_meters(20.0));
/// let radio = RadioEnergyModel::short_range_2003();
/// let bits = Packet::sensor_report().total_bits();
/// let mut cache = RouteCache::new(topo.len());
/// let usable = vec![true; topo.len()];
/// let hop = Length::from_meters(45.0);
/// // First ensure builds; an identical usable set is a cache hit.
/// assert!(cache.ensure(&topo, RoutingStrategy::MinimumEnergy, &radio, hop, bits, &usable));
/// assert!(!cache.ensure(&topo, RoutingStrategy::MinimumEnergy, &radio, hop, bits, &usable));
/// assert_eq!(cache.builds(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RouteCache {
    table: Vec<Option<NodeId>>,
    routed_over: Vec<bool>,
    connected: Vec<bool>,
    tx_cost: Vec<f64>,
    /// Final Dijkstra distance labels of the current epoch; the anchor
    /// the repair wave re-relaxes against. Infinity for routeless nodes
    /// and for every node under [`RoutingStrategy::DirectToSink`].
    dist: Vec<f64>,
    builds: u64,
    repairs: u64,
    primed: bool,
    /// Strategy of the current epoch; repair is only sound on top of a
    /// minimum-energy table.
    built_with: Option<RoutingStrategy>,
    /// Per-cache repair policy: `Some(_)` wins over the thread-local
    /// default, so one cache can be pinned to the full-rebuild oracle
    /// without disturbing caches on other threads (or later on this
    /// one).
    repair_override: Option<bool>,
    scratch: RepairScratch,
}

/// Reusable buffers for [`RouteCache::repair`] and connectivity
/// resolution: after the first transition of a run, repairs and rebuilds
/// touch the allocator not at all (proven by `tests/zero_alloc_faulted`).
#[derive(Debug, Clone, Default)]
struct RepairScratch {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    /// Children CSR over the current parent table: row `p` is
    /// `child_ids[child_off[p]..child_off[p + 1]]`.
    child_off: Vec<u32>,
    child_cursor: Vec<u32>,
    child_ids: Vec<u32>,
    /// Invalidated (or rebooted) nodes, doubling as the BFS worklist.
    affected: Vec<u32>,
    in_affected: Vec<bool>,
    /// Connectivity resolution: 0 unresolved, 1 connected, 2 not.
    conn_state: Vec<u8>,
    conn_chain: Vec<u32>,
}

impl RouteCache {
    /// An unprimed cache for an `nodes`-node topology; the first
    /// [`ensure`](RouteCache::ensure) always builds.
    pub fn new(nodes: usize) -> Self {
        Self {
            table: vec![None; nodes],
            routed_over: vec![false; nodes],
            connected: vec![false; nodes],
            tx_cost: vec![0.0; nodes],
            dist: vec![f64::INFINITY; nodes],
            builds: 0,
            repairs: 0,
            primed: false,
            built_with: None,
            repair_override: None,
            scratch: RepairScratch::default(),
        }
    }

    /// Whether this cache may repair incrementally: the per-cache
    /// override when one was set via
    /// [`set_repair_enabled`](Self::set_repair_enabled), else the
    /// thread-local default ([`route_repair_enabled`]).
    pub fn repair_enabled(&self) -> bool {
        self.repair_override.unwrap_or_else(route_repair_enabled)
    }

    /// Pins this cache's repair policy, returning the previous override.
    /// `Some(false)` forces every usable-set transition onto the
    /// historical full-rebuild path (the differential-test oracle);
    /// `Some(true)` keeps repairs on even if the thread-local default is
    /// off; `None` restores deference to the thread-local default.
    ///
    /// Unlike [`set_route_repair_enabled`] this is scoped to one cache,
    /// so it composes with worker threads and with other caches on the
    /// same thread.
    pub fn set_repair_enabled(&mut self, enabled: Option<bool>) -> Option<bool> {
        std::mem::replace(&mut self.repair_override, enabled)
    }

    /// Makes the cached table current for `usable`, recomputing only
    /// when the set differs from the one routes were last built over.
    /// Returns whether a recompute (build or repair) happened. `volume`
    /// sizes the cached per-hop transmit costs (one packet's bits).
    ///
    /// Minimum-energy transitions after the first build repair
    /// incrementally unless [`set_route_repair_enabled`] turned the
    /// optimization off for this thread; either path yields bit-identical
    /// tables, costs, and connectivity.
    ///
    /// # Panics
    ///
    /// Panics if `usable` or the topology disagree with the node count
    /// the cache was created for.
    pub fn ensure(
        &mut self,
        topology: &Topology,
        strategy: RoutingStrategy,
        radio: &RadioEnergyModel,
        max_hop: Length,
        volume: DataVolume,
        usable: &[bool],
    ) -> bool {
        let n = self.table.len();
        assert_eq!(topology.len(), n, "topology/cache node count mismatch");
        assert_eq!(usable.len(), n, "usable mask/cache node count mismatch");
        if self.primed && self.routed_over == usable {
            return false;
        }
        let repairable = self.primed
            && strategy == RoutingStrategy::MinimumEnergy
            && self.built_with == Some(RoutingStrategy::MinimumEnergy)
            && self.repair_enabled();
        if repairable {
            self.repair(topology, radio, max_hop, usable);
            note_route_repair();
            self.repairs += 1;
        } else {
            match strategy {
                RoutingStrategy::DirectToSink => {
                    let sink = topology.sink();
                    for id in topology.ids() {
                        self.table[id.0] = if id != sink && usable[id.0] {
                            Some(sink)
                        } else {
                            None
                        };
                    }
                    self.dist.fill(f64::INFINITY);
                }
                RoutingStrategy::MinimumEnergy => {
                    dijkstra_into(
                        topology,
                        radio,
                        max_hop,
                        Some(usable),
                        &mut self.dist,
                        &mut self.table,
                        &mut self.scratch.heap,
                    );
                }
            }
            note_route_build();
            self.builds += 1;
        }
        self.routed_over.copy_from_slice(usable);
        for id in topology.ids() {
            self.tx_cost[id.0] = match self.table[id.0] {
                Some(next) => radio
                    .transmit_energy(volume, topology.distance(id, next))
                    .as_joules(),
                None => 0.0,
            };
        }
        self.resolve_connectivity(topology.sink());
        self.built_with = Some(strategy);
        self.primed = true;
        true
    }

    /// Splices the cached minimum-energy table from the previous usable
    /// set onto `usable` without a full Dijkstra.
    ///
    /// Correctness rests on the canonical-parent property of the full
    /// build: with `(dist, id)` heap ordering and strictly positive
    /// weights, `table[v]` is always the optimal predecessor minimizing
    /// `(dist, id)`. Nodes outside the subtrees of changed nodes keep
    /// both labels — removals can only lengthen paths elsewhere, so
    /// their surviving tree path and parent choice stand — while every
    /// node inside is re-seeded from the untouched frontier and
    /// re-relaxed; reboots enter the same wave as improvement sources.
    /// Ties discovered during the wave adopt a predecessor only when its
    /// `(dist, id)` beats the incumbent's, reproducing the settle order
    /// of a from-scratch run bit for bit.
    fn repair(
        &mut self,
        topology: &Topology,
        radio: &RadioEnergyModel,
        max_hop: Length,
        usable: &[bool],
    ) {
        let n = self.table.len();
        let sink = topology.sink().0;
        let csr = topology.csr_within(max_hop);
        let s = &mut self.scratch;

        // Children index over the outgoing parent table, so subtree
        // invalidation is O(subtree) instead of O(N) per changed node.
        s.child_off.clear();
        s.child_off.resize(n + 1, 0);
        for parent in self.table.iter().flatten() {
            s.child_off[parent.0 + 1] += 1;
        }
        for p in 0..n {
            s.child_off[p + 1] += s.child_off[p];
        }
        s.child_cursor.clear();
        s.child_cursor.extend_from_slice(&s.child_off[..n]);
        s.child_ids.clear();
        s.child_ids.resize(s.child_off[n] as usize, 0);
        for (v, parent) in self.table.iter().enumerate() {
            if let Some(p) = parent {
                let slot = s.child_cursor[p.0] as usize;
                s.child_ids[slot] = v as u32;
                s.child_cursor[p.0] += 1;
            }
        }

        // Diff the epochs. Newly-unusable nodes lose their labels and
        // stay routeless; rebooted nodes join the affected set so the
        // wave gives them (back) a route. The sink is always usable.
        s.affected.clear();
        s.in_affected.clear();
        s.in_affected.resize(n, false);
        for (v, &now_usable) in usable.iter().enumerate() {
            if v == sink || self.routed_over[v] == now_usable {
                continue;
            }
            if !now_usable {
                self.dist[v] = f64::INFINITY;
                self.table[v] = None;
            }
            s.in_affected[v] = true;
            s.affected.push(v as u32);
        }

        // Everything routing *through* a changed node is stale too:
        // invalidate the parent-tree subtrees breadth-first.
        let mut head = 0;
        while head < s.affected.len() {
            let u = s.affected[head] as usize;
            head += 1;
            let lo = s.child_off[u] as usize;
            let hi = s.child_off[u + 1] as usize;
            for idx in lo..hi {
                let c = s.child_ids[idx] as usize;
                if !s.in_affected[c] {
                    s.in_affected[c] = true;
                    self.dist[c] = f64::INFINITY;
                    self.table[c] = None;
                    s.affected.push(c as u32);
                }
            }
        }

        // Seed each affected usable node from its best untouched usable
        // neighbour: among minimum-candidate predecessors the one with
        // the lowest (dist, id) — exactly the parent a full run's settle
        // order would have recorded first.
        s.heap.clear();
        for &vu in &s.affected {
            let v = vu as usize;
            if !usable[v] {
                continue;
            }
            let (targets, hops_m) = csr.neighbors_with_distance(v);
            let mut best = f64::INFINITY;
            let mut best_pred = usize::MAX;
            let mut best_pred_dist = f64::INFINITY;
            for (&target, &hop_m) in targets.iter().zip(hops_m) {
                let p = target as usize;
                if s.in_affected[p] || (p != sink && !usable[p]) {
                    continue;
                }
                let dp = self.dist[p];
                if !dp.is_finite() {
                    continue;
                }
                let weight = radio
                    .hop_energy_per_bit(Length::from_meters(hop_m))
                    .as_joules_per_bit();
                let candidate = dp + weight;
                if candidate < best || (candidate == best && (dp, p) < (best_pred_dist, best_pred))
                {
                    best = candidate;
                    best_pred = p;
                    best_pred_dist = dp;
                }
            }
            if best_pred != usize::MAX {
                self.dist[v] = best;
                self.table[v] = Some(NodeId(best_pred));
                s.heap.push(Reverse(HeapEntry {
                    dist: best,
                    node: vu,
                }));
            }
        }

        // Bounded re-relaxation wave. Strict improvements propagate as
        // in a full run; an equal-distance candidate only steals the
        // parent slot when its (dist, id) precedes the incumbent's (and
        // needs no re-push: children pick parents by label values, which
        // a tie does not change).
        while let Some(Reverse(HeapEntry { dist: d, node })) = s.heap.pop() {
            let u = node as usize;
            if d > self.dist[u] {
                continue;
            }
            let du = self.dist[u];
            let (targets, hops_m) = csr.neighbors_with_distance(u);
            for (&target, &hop_m) in targets.iter().zip(hops_m) {
                let v = target as usize;
                if v == sink || !usable[v] {
                    continue;
                }
                let weight = radio
                    .hop_energy_per_bit(Length::from_meters(hop_m))
                    .as_joules_per_bit();
                let candidate = du + weight;
                let dv = self.dist[v];
                if candidate < dv {
                    self.dist[v] = candidate;
                    self.table[v] = Some(NodeId(u));
                    s.heap.push(Reverse(HeapEntry {
                        dist: candidate,
                        node: target,
                    }));
                } else if candidate == dv {
                    if let Some(incumbent) = self.table[v] {
                        if (du, u) < (self.dist[incumbent.0], incumbent.0) {
                            self.table[v] = Some(NodeId(u));
                        }
                    }
                }
            }
        }
    }

    /// Fills `connected` by walking the table with memoization: each
    /// node is marked by the verdict of the first already-resolved node
    /// (or the sink / a dead end / the cycle bound) its chain reaches.
    fn resolve_connectivity(&mut self, sink: NodeId) {
        let n = self.table.len();
        let state = &mut self.scratch.conn_state;
        state.clear();
        state.resize(n, 0);
        let chain = &mut self.scratch.conn_chain;
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            chain.clear();
            let mut current = start;
            let verdict = loop {
                if state[current] != 0 {
                    break state[current];
                }
                chain.push(current as u32);
                match self.table[current] {
                    None => break 2,
                    Some(next) if next == sink => break 1,
                    // Longer than n hops means a cycle: disconnected,
                    // matching `route_to_sink`'s bounded walk.
                    Some(next) => {
                        if chain.len() > n {
                            break 2;
                        }
                        current = next.0;
                    }
                }
            };
            for &id in chain.iter() {
                state[id as usize] = verdict;
            }
        }
        for (flag, s) in self.connected.iter_mut().zip(state.iter()) {
            *flag = *s == 1;
        }
    }

    /// The cached next-hop table.
    pub fn table(&self) -> &[Option<NodeId>] {
        &self.table
    }

    /// Next hop of `node`, `None` when routeless (or the sink).
    pub fn next_hop(&self, node: NodeId) -> Option<NodeId> {
        self.table[node.0]
    }

    /// Whether `node`'s cached route reaches the sink.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.connected[node.0]
    }

    /// Transmit energy (joules) for `node` to push one cached-volume
    /// packet to its next hop; `0.0` for routeless nodes.
    pub fn tx_cost(&self, node: NodeId) -> f64 {
        self.tx_cost[node.0]
    }

    /// All per-node transmit costs, indexed by raw id — the bulk form
    /// of [`tx_cost`](Self::tx_cost) for kernels that fold charges over
    /// many nodes per round (the region-parallel replay loops index
    /// this slice directly instead of paying a method call per hop).
    pub fn tx_costs(&self) -> &[f64] {
        &self.tx_cost
    }

    /// All per-node connectivity flags, indexed by raw id — the bulk
    /// form of [`is_connected`](Self::is_connected).
    pub fn connected_flags(&self) -> &[bool] {
        &self.connected
    }

    /// Route builds this cache has performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Incremental repairs this cache has performed; together with
    /// [`builds`](RouteCache::builds) this accounts for every usable-set
    /// transition the cache has absorbed.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// The cache's route epoch: bumped by every build or repair, so two
    /// equal epochs on the same cache instance mean an identical table.
    pub fn epoch(&self) -> u64 {
        self.builds + self.repairs
    }
}

/// Route arrays packed for hop-walk hot loops: a 4-byte next-hop id and
/// an 8-byte transmit cost per node, refreshed lazily per route epoch.
///
/// The cache's own `table()` stores `Option<NodeId>` (16 bytes, with a
/// discriminant test per fetch); packing it once per epoch lets the
/// aggregation, lossy-ARQ and region-parallel walk loops chase routes
/// through two flat reads per hop. Values are copied verbatim from the
/// cache, so every consumer stays bit-identical to the method-call
/// path.
#[derive(Debug, Clone)]
pub(crate) struct PackedRoutes {
    /// Next hop per node; `u32::MAX` = routeless (or the sink).
    pub(crate) parent: Vec<u32>,
    /// Transmit cost along the parent edge, joules.
    pub(crate) tx: Vec<f64>,
    epoch: Option<u64>,
}

impl PackedRoutes {
    pub(crate) fn new(nodes: usize) -> Self {
        Self {
            parent: vec![u32::MAX; nodes],
            tx: vec![0.0; nodes],
            epoch: None,
        }
    }

    /// Repacks from `cache` if its epoch moved since the last call.
    /// Returns true when a repack happened.
    pub(crate) fn ensure(&mut self, cache: &RouteCache) -> bool {
        if self.epoch == Some(cache.epoch()) {
            return false;
        }
        for (slot, hop) in self.parent.iter_mut().zip(cache.table()) {
            *slot = hop.map_or(u32::MAX, |h| h.0 as u32);
        }
        self.tx.copy_from_slice(cache.tx_costs());
        self.epoch = Some(cache.epoch());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioEnergyModel {
        RadioEnergyModel::short_range_2003()
    }

    // The historical O(N²) scan-Dijkstra oracle and the tests diffing
    // the heap implementation against it live in
    // `tests/common/oracle.rs` + `tests/differential.rs`, shared with
    // the incremental-repair differential layer.

    #[test]
    fn direct_routes_all_point_at_sink() {
        let topo = Topology::grid(3, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            Length::from_meters(15.0),
        );
        assert_eq!(table[0], None);
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()));
        }
    }

    #[test]
    fn min_energy_relays_long_paths() {
        // A 5-wide grid at 30 m spacing: corner-to-corner is 120 m+,
        // far beyond the 44.7 m crossover, so far nodes must relay.
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
        );
        let far = NodeId(24); // opposite corner
        let path = route_to_sink(&table, &topo, far);
        assert!(
            path.len() >= 2,
            "the far corner must take multiple hops, got {path:?}"
        );
        assert_eq!(*path.last().unwrap(), topo.sink());
    }

    #[test]
    fn min_energy_prefers_direct_when_close() {
        let topo = Topology::star(4, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(50.0),
        );
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()), "close leaves go direct");
        }
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        // Two nodes 100 m apart with a 10 m radio: unreachable.
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(100.0, 0.0),
        ]);
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(10.0),
        );
        assert_eq!(table[1], None);
        assert!(route_to_sink(&table, &topo, NodeId(1)).is_empty());
    }

    #[test]
    fn dijkstra_paths_never_exceed_range() {
        let topo = Topology::random(40, Length::from_meters(120.0), 11);
        let range = Length::from_meters(40.0);
        let table = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio(), range);
        for id in topo.sensor_ids() {
            let mut current = id;
            for hop in route_to_sink(&table, &topo, id) {
                assert!(topo.distance(current, hop) <= range);
                current = hop;
            }
        }
    }

    #[test]
    fn build_routes_over_excludes_unusable_relays() {
        // Sink—1—2 line: with node 1 masked out, node 2 is routeless.
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(40.0, 0.0),
            crate::topology::Position::new(80.0, 0.0),
        ]);
        let table = build_routes_over(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
            &[true, false, true],
        );
        assert_eq!(table[1], None);
        assert_eq!(table[2], None);
        // DirectToSink ignores relays but still drops masked senders.
        let direct = build_routes_over(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            Length::from_meters(45.0),
            &[true, false, true],
        );
        assert_eq!(direct, vec![None, None, Some(NodeId(0))]);
    }

    #[test]
    fn route_cache_rebuilds_only_on_usable_changes() {
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let mut usable = vec![true; topo.len()];
        assert!(cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable
        ));
        for _ in 0..10 {
            assert!(!cache.ensure(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &radio(),
                hop,
                bits,
                &usable
            ));
        }
        usable[5] = false;
        assert!(cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable
        ));
        // The transition is absorbed by an incremental repair, not a
        // second full build.
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.repairs(), 1);
        assert_eq!(cache.next_hop(NodeId(5)), None);
        assert!(!cache.is_connected(NodeId(5)));
        assert_eq!(cache.tx_cost(NodeId(5)), 0.0);
    }

    #[test]
    fn disabling_repair_restores_the_full_rebuild_oracle_path() {
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let mut usable = vec![true; topo.len()];
        let previous = set_route_repair_enabled(false);
        cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        usable[5] = false;
        cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        set_route_repair_enabled(previous);
        assert_eq!(cache.builds(), 2, "oracle path rebuilds per transition");
        assert_eq!(cache.repairs(), 0);
    }

    #[test]
    fn per_cache_override_beats_the_thread_local_default() {
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut usable = vec![true; topo.len()];

        // Two caches on the same thread: the pinned one stays on the
        // full-rebuild oracle while its sibling keeps repairing under
        // the (enabled) thread-local default.
        let mut oracle = RouteCache::new(topo.len());
        assert_eq!(oracle.set_repair_enabled(Some(false)), None);
        assert!(!oracle.repair_enabled());
        let mut repairing = RouteCache::new(topo.len());
        assert!(repairing.repair_enabled(), "thread default is on");

        for cache in [&mut oracle, &mut repairing] {
            cache.ensure(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &radio(),
                hop,
                bits,
                &usable,
            );
        }
        usable[5] = false;
        for cache in [&mut oracle, &mut repairing] {
            cache.ensure(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &radio(),
                hop,
                bits,
                &usable,
            );
        }
        assert_eq!((oracle.builds(), oracle.repairs()), (2, 0));
        assert_eq!((repairing.builds(), repairing.repairs()), (1, 1));

        // `Some(true)` likewise wins over a disabled thread default,
        // and clearing the override restores deference to it.
        usable[6] = false;
        let previous = set_route_repair_enabled(false);
        assert_eq!(repairing.set_repair_enabled(Some(true)), None);
        repairing.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        assert_eq!((repairing.builds(), repairing.repairs()), (1, 2));
        assert_eq!(repairing.set_repair_enabled(None), Some(true));
        assert!(!repairing.repair_enabled(), "deference restored");
        set_route_repair_enabled(previous);
    }

    #[test]
    fn strategy_change_falls_back_to_a_full_build() {
        // A direct-to-sink epoch leaves no distance labels to repair
        // against; switching strategies must rebuild, not splice.
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let mut usable = vec![true; topo.len()];
        cache.ensure(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            hop,
            bits,
            &usable,
        );
        usable[4] = false;
        cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.repairs(), 0);
        let fresh = build_routes_over(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            &usable,
        );
        assert_eq!(cache.table(), fresh.as_slice());
    }

    #[test]
    fn cached_tx_costs_match_inline_computation() {
        let topo = Topology::random(30, Length::from_meters(120.0), 3);
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let usable = vec![true; topo.len()];
        cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        for id in topo.ids() {
            match cache.next_hop(id) {
                Some(next) => {
                    let inline = radio()
                        .transmit_energy(bits, topo.distance(id, next))
                        .as_joules();
                    assert_eq!(
                        cache.tx_cost(id).to_bits(),
                        inline.to_bits(),
                        "tx cost for {id} must be bit-identical"
                    );
                    assert_eq!(
                        cache.is_connected(id),
                        !route_to_sink(cache.table(), &topo, id).is_empty()
                    );
                }
                None => assert_eq!(cache.tx_cost(id), 0.0),
            }
        }
    }

    #[test]
    fn build_count_hook_tracks_thread_local_builds() {
        reset_route_build_count();
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let before = route_build_count();
        let _ = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
        );
        assert_eq!(route_build_count(), before + 1);
    }
}
