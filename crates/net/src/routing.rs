//! Route construction: who relays for whom.

use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::Length;
use serde::{Deserialize, Serialize};

/// The routing strategies compared in experiment F6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Every node transmits straight to the sink, whatever the distance.
    DirectToSink,
    /// Dijkstra shortest paths to the sink under the first-order radio
    /// energy metric, with hops bounded by the radio range.
    MinimumEnergy,
}

impl std::fmt::Display for RoutingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingStrategy::DirectToSink => "direct-to-sink",
            RoutingStrategy::MinimumEnergy => "minimum-energy multi-hop",
        })
    }
}

/// Builds the next-hop table: `table[node] = Some(next)` for every
/// non-sink node that can reach the sink, `None` for disconnected nodes
/// (and for the sink itself).
///
/// For [`RoutingStrategy::MinimumEnergy`] edges exist between nodes within
/// `max_hop` of each other, weighted by the per-bit hop energy of the
/// radio model; [`RoutingStrategy::DirectToSink`] ignores `max_hop`
/// (the amplifier simply pays the full distance).
pub fn build_routes(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
) -> Vec<Option<NodeId>> {
    match strategy {
        RoutingStrategy::DirectToSink => topology
            .ids()
            .map(|id| {
                if id == topology.sink() {
                    None
                } else {
                    Some(topology.sink())
                }
            })
            .collect(),
        RoutingStrategy::MinimumEnergy => dijkstra_to_sink(topology, radio, max_hop),
    }
}

/// Dijkstra from the sink outwards over the bounded-range hop graph;
/// each node's parent toward the sink becomes its next hop.
fn dijkstra_to_sink(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
) -> Vec<Option<NodeId>> {
    let n = topology.len();
    let sink = topology.sink();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    dist[sink.0] = 0.0;

    for _ in 0..n {
        // Extract the unvisited node with the smallest distance.
        let mut best: Option<usize> = None;
        for (idx, &d) in dist.iter().enumerate() {
            if !visited[idx] && d.is_finite() && best.is_none_or(|b| d < dist[b]) {
                best = Some(idx);
            }
        }
        let Some(u) = best else { break };
        visited[u] = true;
        for v in topology.neighbors_within(NodeId(u), max_hop) {
            if visited[v.0] {
                continue;
            }
            let hop = topology.distance(NodeId(u), v);
            let weight = radio.hop_energy_per_bit(hop).as_joules_per_bit();
            if dist[u] + weight < dist[v.0] {
                dist[v.0] = dist[u] + weight;
                parent[v.0] = Some(NodeId(u));
            }
        }
    }
    parent
}

/// Walks a route table from `node` to the sink, returning the hop
/// sequence (empty when disconnected or when `node` is the sink).
pub fn route_to_sink(table: &[Option<NodeId>], topology: &Topology, node: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut current = node;
    // Bounded walk guards against accidental cycles.
    for _ in 0..table.len() {
        match table[current.0] {
            Some(next) => {
                path.push(next);
                if next == topology.sink() {
                    return path;
                }
                current = next;
            }
            None => return Vec::new(),
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioEnergyModel {
        RadioEnergyModel::short_range_2003()
    }

    #[test]
    fn direct_routes_all_point_at_sink() {
        let topo = Topology::grid(3, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            Length::from_meters(15.0),
        );
        assert_eq!(table[0], None);
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()));
        }
    }

    #[test]
    fn min_energy_relays_long_paths() {
        // A 5-wide grid at 30 m spacing: corner-to-corner is 120 m+,
        // far beyond the 44.7 m crossover, so far nodes must relay.
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
        );
        let far = NodeId(24); // opposite corner
        let path = route_to_sink(&table, &topo, far);
        assert!(
            path.len() >= 2,
            "the far corner must take multiple hops, got {path:?}"
        );
        assert_eq!(*path.last().unwrap(), topo.sink());
    }

    #[test]
    fn min_energy_prefers_direct_when_close() {
        let topo = Topology::star(4, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(50.0),
        );
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()), "close leaves go direct");
        }
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        // Two nodes 100 m apart with a 10 m radio: unreachable.
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(100.0, 0.0),
        ]);
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(10.0),
        );
        assert_eq!(table[1], None);
        assert!(route_to_sink(&table, &topo, NodeId(1)).is_empty());
    }

    #[test]
    fn dijkstra_paths_never_exceed_range() {
        let topo = Topology::random(40, Length::from_meters(120.0), 11);
        let range = Length::from_meters(40.0);
        let table = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio(), range);
        for id in topo.sensor_ids() {
            let mut current = id;
            for hop in route_to_sink(&table, &topo, id) {
                assert!(topo.distance(current, hop) <= range);
                current = hop;
            }
        }
    }
}
