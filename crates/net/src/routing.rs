//! Route construction: who relays for whom.
//!
//! The minimum-energy strategy runs a binary-heap Dijkstra over the
//! topology's cached [`CsrAdjacency`](crate::csr::CsrAdjacency) hop
//! graph, with deterministic tie-breaking on [`NodeId`]: among equal
//! tentative distances the lowest id settles first, exactly like the
//! O(N²) scan it replaced, so route tables — and every golden manifest
//! built on them — are bit-identical to the historical implementation
//! (`tests` pin this against a reference scan).
//!
//! [`RouteCache`] wraps a table in a usable-set epoch: the table is
//! rebuilt only when the usable set actually differs from the one the
//! routes were last built over, and each build pre-resolves per-node
//! next-hop transmit costs and sink connectivity so the simulators'
//! round loops touch no allocator and recompute no distances.

use crate::topology::{NodeId, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::{DataVolume, Length};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The routing strategies compared in experiment F6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Every node transmits straight to the sink, whatever the distance.
    DirectToSink,
    /// Dijkstra shortest paths to the sink under the first-order radio
    /// energy metric, with hops bounded by the radio range.
    MinimumEnergy,
}

impl std::fmt::Display for RoutingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingStrategy::DirectToSink => "direct-to-sink",
            RoutingStrategy::MinimumEnergy => "minimum-energy multi-hop",
        })
    }
}

thread_local! {
    /// Route builds performed on this thread (test instrumentation).
    static ROUTE_BUILDS: Cell<u64> = const { Cell::new(0) };
}

fn note_route_build() {
    ROUTE_BUILDS.with(|count| count.set(count.get() + 1));
}

/// Number of route-table builds performed on this thread since the last
/// [`reset_route_build_count`]. Test instrumentation: the epoch-cache
/// regression tests count builds across whole simulations with it.
pub fn route_build_count() -> u64 {
    ROUTE_BUILDS.with(Cell::get)
}

/// Resets this thread's [`route_build_count`] to zero.
pub fn reset_route_build_count() {
    ROUTE_BUILDS.with(|count| count.set(0));
}

/// Builds the next-hop table: `table[node] = Some(next)` for every
/// non-sink node that can reach the sink, `None` for disconnected nodes
/// (and for the sink itself).
///
/// For [`RoutingStrategy::MinimumEnergy`] edges exist between nodes within
/// `max_hop` of each other, weighted by the per-bit hop energy of the
/// radio model; [`RoutingStrategy::DirectToSink`] ignores `max_hop`
/// (the amplifier simply pays the full distance).
pub fn build_routes(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
) -> Vec<Option<NodeId>> {
    note_route_build();
    match strategy {
        RoutingStrategy::DirectToSink => topology
            .ids()
            .map(|id| {
                if id == topology.sink() {
                    None
                } else {
                    Some(topology.sink())
                }
            })
            .collect(),
        RoutingStrategy::MinimumEnergy => dijkstra_to_sink(topology, radio, max_hop, None),
    }
}

/// [`build_routes`] restricted to the `usable` node subset: nodes with
/// `usable[id] == false` get no route and relay for nobody (the sink is
/// always usable). Equivalent to rebuilding on the sub-topology of the
/// usable nodes, but reuses the full topology's cached CSR hop graph —
/// the id-order-preserving subset walk keeps the result bit-identical
/// to a compact rebuild (pinned in `gather::tests`).
///
/// # Panics
///
/// Panics if `usable` is shorter than the topology.
pub fn build_routes_over(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: &[bool],
) -> Vec<Option<NodeId>> {
    assert!(usable.len() >= topology.len(), "usable mask too short");
    note_route_build();
    let sink = topology.sink();
    match strategy {
        RoutingStrategy::DirectToSink => topology
            .ids()
            .map(|id| {
                if id != sink && usable[id.0] {
                    Some(sink)
                } else {
                    None
                }
            })
            .collect(),
        RoutingStrategy::MinimumEnergy => dijkstra_to_sink(topology, radio, max_hop, Some(usable)),
    }
}

/// A pending heap entry; ordered by `(dist, node)` so ties settle
/// lowest-id-first, matching the historical linear scan.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Distances are finite, non-negative path sums: total_cmp is a
        // plain numeric order here, it just satisfies Ord's contract.
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from the sink outwards over the bounded-range CSR hop
/// graph; each node's parent toward the sink becomes its next hop.
/// With `usable`, non-usable nodes are treated as absent.
fn dijkstra_to_sink(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: Option<&[bool]>,
) -> Vec<Option<NodeId>> {
    let n = topology.len();
    let sink = topology.sink();
    let csr = topology.csr_within(max_hop);
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    dist[sink.0] = 0.0;
    heap.push(Reverse(HeapEntry {
        dist: 0.0,
        node: sink.0 as u32,
    }));

    while let Some(Reverse(HeapEntry { dist: d, node })) = heap.pop() {
        let u = node as usize;
        if visited[u] || d > dist[u] {
            continue; // stale entry superseded by a better one
        }
        visited[u] = true;
        let (targets, hops_m) = csr.neighbors_with_distance(u);
        for (&target, &hop_m) in targets.iter().zip(hops_m) {
            let v = target as usize;
            if visited[v] {
                continue;
            }
            if let Some(mask) = usable {
                if v != sink.0 && !mask[v] {
                    continue;
                }
            }
            let weight = radio
                .hop_energy_per_bit(Length::from_meters(hop_m))
                .as_joules_per_bit();
            let candidate = dist[u] + weight;
            if candidate < dist[v] {
                dist[v] = candidate;
                parent[v] = Some(NodeId(u));
                heap.push(Reverse(HeapEntry {
                    dist: candidate,
                    node: target,
                }));
            }
        }
    }
    parent
}

/// Walks a route table from `node` to the sink, returning the hop
/// sequence (empty when disconnected or when `node` is the sink).
pub fn route_to_sink(table: &[Option<NodeId>], topology: &Topology, node: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut current = node;
    // Bounded walk guards against accidental cycles.
    for _ in 0..table.len() {
        match table[current.0] {
            Some(next) => {
                path.push(next);
                if next == topology.sink() {
                    return path;
                }
                current = next;
            }
            None => return Vec::new(),
        }
    }
    Vec::new()
}

/// A next-hop table cached behind a usable-set epoch.
///
/// The simulators' round loops call [`ensure`](RouteCache::ensure) every
/// time the usable set *may* have changed; the table is actually rebuilt
/// only when it *did* change (fault events are sparse, and a healthy run
/// builds exactly once). Each build also pre-resolves, per node, the
/// transmit energy to its next hop and whether its route reaches the
/// sink, so the per-packet hot loop is pure array reads — no `Vec`
/// allocation, no distance recomputation.
///
/// # Example
///
/// ```
/// use ami_net::routing::RouteCache;
/// use ami_net::{RoutingStrategy, Topology};
/// use ami_radio::{Packet, RadioEnergyModel};
/// use ami_units::Length;
///
/// let topo = Topology::grid(3, Length::from_meters(20.0));
/// let radio = RadioEnergyModel::short_range_2003();
/// let bits = Packet::sensor_report().total_bits();
/// let mut cache = RouteCache::new(topo.len());
/// let usable = vec![true; topo.len()];
/// let hop = Length::from_meters(45.0);
/// // First ensure builds; an identical usable set is a cache hit.
/// assert!(cache.ensure(&topo, RoutingStrategy::MinimumEnergy, &radio, hop, bits, &usable));
/// assert!(!cache.ensure(&topo, RoutingStrategy::MinimumEnergy, &radio, hop, bits, &usable));
/// assert_eq!(cache.builds(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RouteCache {
    table: Vec<Option<NodeId>>,
    routed_over: Vec<bool>,
    connected: Vec<bool>,
    tx_cost: Vec<f64>,
    builds: u64,
    primed: bool,
}

impl RouteCache {
    /// An unprimed cache for an `nodes`-node topology; the first
    /// [`ensure`](RouteCache::ensure) always builds.
    pub fn new(nodes: usize) -> Self {
        Self {
            table: vec![None; nodes],
            routed_over: vec![false; nodes],
            connected: vec![false; nodes],
            tx_cost: vec![0.0; nodes],
            builds: 0,
            primed: false,
        }
    }

    /// Makes the cached table current for `usable`, rebuilding only when
    /// the set differs from the one routes were last built over. Returns
    /// whether a rebuild happened. `volume` sizes the cached per-hop
    /// transmit costs (one packet's bits).
    ///
    /// # Panics
    ///
    /// Panics if `usable` or the topology disagree with the node count
    /// the cache was created for.
    pub fn ensure(
        &mut self,
        topology: &Topology,
        strategy: RoutingStrategy,
        radio: &RadioEnergyModel,
        max_hop: Length,
        volume: DataVolume,
        usable: &[bool],
    ) -> bool {
        let n = self.table.len();
        assert_eq!(topology.len(), n, "topology/cache node count mismatch");
        assert_eq!(usable.len(), n, "usable mask/cache node count mismatch");
        if self.primed && self.routed_over == usable {
            return false;
        }
        self.table = build_routes_over(topology, strategy, radio, max_hop, usable);
        self.routed_over.copy_from_slice(usable);
        for id in topology.ids() {
            self.tx_cost[id.0] = match self.table[id.0] {
                Some(next) => radio
                    .transmit_energy(volume, topology.distance(id, next))
                    .as_joules(),
                None => 0.0,
            };
        }
        self.resolve_connectivity(topology.sink());
        self.builds += 1;
        self.primed = true;
        true
    }

    /// Fills `connected` by walking the table with memoization: each
    /// node is marked by the verdict of the first already-resolved node
    /// (or the sink / a dead end / the cycle bound) its chain reaches.
    fn resolve_connectivity(&mut self, sink: NodeId) {
        let n = self.table.len();
        // 0 = unresolved, 1 = connected, 2 = disconnected.
        let mut state = vec![0u8; n];
        let mut chain: Vec<usize> = Vec::new();
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            chain.clear();
            let mut current = start;
            let verdict = loop {
                if state[current] != 0 {
                    break state[current];
                }
                chain.push(current);
                match self.table[current] {
                    None => break 2,
                    Some(next) if next == sink => break 1,
                    // Longer than n hops means a cycle: disconnected,
                    // matching `route_to_sink`'s bounded walk.
                    Some(next) => {
                        if chain.len() > n {
                            break 2;
                        }
                        current = next.0;
                    }
                }
            };
            for &id in &chain {
                state[id] = verdict;
            }
        }
        for (flag, s) in self.connected.iter_mut().zip(&state) {
            *flag = *s == 1;
        }
    }

    /// The cached next-hop table.
    pub fn table(&self) -> &[Option<NodeId>] {
        &self.table
    }

    /// Next hop of `node`, `None` when routeless (or the sink).
    pub fn next_hop(&self, node: NodeId) -> Option<NodeId> {
        self.table[node.0]
    }

    /// Whether `node`'s cached route reaches the sink.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.connected[node.0]
    }

    /// Transmit energy (joules) for `node` to push one cached-volume
    /// packet to its next hop; `0.0` for routeless nodes.
    pub fn tx_cost(&self, node: NodeId) -> f64 {
        self.tx_cost[node.0]
    }

    /// Route builds this cache has performed.
    pub fn builds(&self) -> u64 {
        self.builds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioEnergyModel {
        RadioEnergyModel::short_range_2003()
    }

    /// The historical O(N²) scan Dijkstra, kept verbatim as the
    /// bit-exactness reference for the heap implementation.
    fn dijkstra_reference_scan(
        topology: &Topology,
        radio: &RadioEnergyModel,
        max_hop: Length,
    ) -> Vec<Option<NodeId>> {
        let n = topology.len();
        let sink = topology.sink();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[sink.0] = 0.0;
        for _ in 0..n {
            let mut best: Option<usize> = None;
            for (idx, &d) in dist.iter().enumerate() {
                if !visited[idx] && d.is_finite() && best.is_none_or(|b| d < dist[b]) {
                    best = Some(idx);
                }
            }
            let Some(u) = best else { break };
            visited[u] = true;
            for v in topology.neighbors_within(NodeId(u), max_hop) {
                if visited[v.0] {
                    continue;
                }
                let hop = topology.distance(NodeId(u), v);
                let weight = radio.hop_energy_per_bit(hop).as_joules_per_bit();
                if dist[u] + weight < dist[v.0] {
                    dist[v.0] = dist[u] + weight;
                    parent[v.0] = Some(NodeId(u));
                }
            }
        }
        parent
    }

    #[test]
    fn heap_dijkstra_matches_the_reference_scan_exactly() {
        for seed in 0..20u64 {
            let topo = Topology::random(60, Length::from_meters(160.0), seed);
            for range_m in [30.0, 45.0, 70.0] {
                let range = Length::from_meters(range_m);
                let fast = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio(), range);
                let slow = dijkstra_reference_scan(&topo, &radio(), range);
                assert_eq!(fast, slow, "seed {seed} range {range_m}");
            }
        }
    }

    #[test]
    fn direct_routes_all_point_at_sink() {
        let topo = Topology::grid(3, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            Length::from_meters(15.0),
        );
        assert_eq!(table[0], None);
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()));
        }
    }

    #[test]
    fn min_energy_relays_long_paths() {
        // A 5-wide grid at 30 m spacing: corner-to-corner is 120 m+,
        // far beyond the 44.7 m crossover, so far nodes must relay.
        let topo = Topology::grid(5, Length::from_meters(30.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
        );
        let far = NodeId(24); // opposite corner
        let path = route_to_sink(&table, &topo, far);
        assert!(
            path.len() >= 2,
            "the far corner must take multiple hops, got {path:?}"
        );
        assert_eq!(*path.last().unwrap(), topo.sink());
    }

    #[test]
    fn min_energy_prefers_direct_when_close() {
        let topo = Topology::star(4, Length::from_meters(10.0));
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(50.0),
        );
        for id in topo.sensor_ids() {
            assert_eq!(table[id.0], Some(topo.sink()), "close leaves go direct");
        }
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        // Two nodes 100 m apart with a 10 m radio: unreachable.
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(100.0, 0.0),
        ]);
        let table = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(10.0),
        );
        assert_eq!(table[1], None);
        assert!(route_to_sink(&table, &topo, NodeId(1)).is_empty());
    }

    #[test]
    fn dijkstra_paths_never_exceed_range() {
        let topo = Topology::random(40, Length::from_meters(120.0), 11);
        let range = Length::from_meters(40.0);
        let table = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio(), range);
        for id in topo.sensor_ids() {
            let mut current = id;
            for hop in route_to_sink(&table, &topo, id) {
                assert!(topo.distance(current, hop) <= range);
                current = hop;
            }
        }
    }

    #[test]
    fn build_routes_over_excludes_unusable_relays() {
        // Sink—1—2 line: with node 1 masked out, node 2 is routeless.
        let topo = Topology::new(vec![
            crate::topology::Position::new(0.0, 0.0),
            crate::topology::Position::new(40.0, 0.0),
            crate::topology::Position::new(80.0, 0.0),
        ]);
        let table = build_routes_over(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
            &[true, false, true],
        );
        assert_eq!(table[1], None);
        assert_eq!(table[2], None);
        // DirectToSink ignores relays but still drops masked senders.
        let direct = build_routes_over(
            &topo,
            RoutingStrategy::DirectToSink,
            &radio(),
            Length::from_meters(45.0),
            &[true, false, true],
        );
        assert_eq!(direct, vec![None, None, Some(NodeId(0))]);
    }

    #[test]
    fn route_cache_rebuilds_only_on_usable_changes() {
        let topo = Topology::grid(4, Length::from_meters(30.0));
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let mut usable = vec![true; topo.len()];
        assert!(cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable
        ));
        for _ in 0..10 {
            assert!(!cache.ensure(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &radio(),
                hop,
                bits,
                &usable
            ));
        }
        usable[5] = false;
        assert!(cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable
        ));
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.next_hop(NodeId(5)), None);
        assert!(!cache.is_connected(NodeId(5)));
        assert_eq!(cache.tx_cost(NodeId(5)), 0.0);
    }

    #[test]
    fn cached_tx_costs_match_inline_computation() {
        let topo = Topology::random(30, Length::from_meters(120.0), 3);
        let bits = ami_radio::Packet::sensor_report().total_bits();
        let hop = Length::from_meters(45.0);
        let mut cache = RouteCache::new(topo.len());
        let usable = vec![true; topo.len()];
        cache.ensure(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            hop,
            bits,
            &usable,
        );
        for id in topo.ids() {
            match cache.next_hop(id) {
                Some(next) => {
                    let inline = radio()
                        .transmit_energy(bits, topo.distance(id, next))
                        .as_joules();
                    assert_eq!(
                        cache.tx_cost(id).to_bits(),
                        inline.to_bits(),
                        "tx cost for {id} must be bit-identical"
                    );
                    assert_eq!(
                        cache.is_connected(id),
                        !route_to_sink(cache.table(), &topo, id).is_empty()
                    );
                }
                None => assert_eq!(cache.tx_cost(id), 0.0),
            }
        }
    }

    #[test]
    fn build_count_hook_tracks_thread_local_builds() {
        reset_route_build_count();
        let topo = Topology::grid(3, Length::from_meters(20.0));
        let before = route_build_count();
        let _ = build_routes(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &radio(),
            Length::from_meters(45.0),
        );
        assert_eq!(route_build_count(), before + 1);
    }
}
