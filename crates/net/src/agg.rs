//! The O(N)-per-round aggregated charge kernel for the gathering
//! simulation.
//!
//! [`GatherState::idle_and_send`] walks every packet hop by hop and
//! charges budgets as it goes — O(N·avg_hops) pointer-chasing per round,
//! the super-linearity that makes 100k–1M-node runs intractable
//! (ROADMAP item 1). This module replaces the mid-round phase with a
//! traffic-aggregation pass that does the same accounting in three
//! O(N)-shaped sweeps while staying **bit-exact** with the hop walk:
//!
//! 1. **Margin precheck (S1).** A pure read over the budgets proves the
//!    idle charge alone empties nobody. If it would, fates can depend on
//!    intra-round charge order, so the round falls back to the retained
//!    hop-walk oracle before anything is touched.
//! 2. **Traffic aggregation.** One pass over the routing forest
//!    tallies, for every relay `v`, how many packets from sources below
//!    `v` and above `v` arrive cleanly (fault-truncated packets stop
//!    contributing at the downed edge, exactly where the serial walk
//!    stops charging). On fault-free rounds the pass also memoizes the
//!    total-spent **value stream** — the exact sequence of `tx`/`rx`
//!    joules the serial kernel folds into `spent` — so later rounds of
//!    the same route epoch skip the walk entirely and replay the fold
//!    over a flat array (`O(hops)` sequential adds, the latency floor
//!    set by the bit-exactness contract; see DESIGN.md).
//! 3. **Per-cell replay + validation (S2).** Each budget cell is
//!    charged in ascending-id order with the *identical* per-cell
//!    operation sequence the serial kernel applies — idle, then
//!    `below`×(rx, tx), own tx, `above`×(rx, tx) — into a scratch
//!    buffer. If any live powered cell ends at or below zero the round
//!    is discarded untouched and the oracle re-runs it (mid-round
//!    death makes packet fates order-dependent). Budgets only decrease
//!    within a round, so all-positive finals prove the serial kernel
//!    never saw an exhausted hop — the same optimistic argument the
//!    region-parallel engine in [`crate::pdes`] validates with.
//!
//! Commitment then swaps the scratch finals in, folds the memoized
//! spent stream in serial charge order, and replays ledger charges and
//! packet counters per cell — the commit-order contract established by
//! the PDES engine (ledger and counter *totals* are position-invariant;
//! per-accumulator sequences are preserved).
//!
//! The hop-walk kernel is retained verbatim as the differential oracle:
//! `AMBIENCE_AGG=0` (or [`set_aggregated_rounds`]`(Some(false))`) pins
//! every round to it, and `tests/differential_agg.rs` pins the two
//! kernels against each other at report, ledger and manifest level.

use crate::gather::GatherState;
use crate::routing::PackedRoutes;
use ami_sim::obs::{EnergyCategory, Recorder};
use std::cell::Cell;

/// Upper bound on memoized spent-stream length, in f64 values.
///
/// n=100k city rounds carry ~9.5M hop charges (~150 MB of stream fits
/// comfortably); n=1M rounds would need ~2.4 GB, so they re-walk every
/// round instead — the stream is a speed memo, never a correctness
/// requirement, and capping it is what keeps memory O(N).
const STREAM_VALUE_CAP: usize = 24 << 20;

thread_local! {
    /// Per-thread override of the `AMBIENCE_AGG` kill switch.
    static AGG_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
    /// Rounds committed by the aggregated kernel on this thread.
    static AGG_ENGAGED: Cell<u64> = const { Cell::new(0) };
    /// Rounds the margin checks handed back to the hop-walk oracle.
    static AGG_FALLBACKS: Cell<u64> = const { Cell::new(0) };
}

/// Overrides the `AMBIENCE_AGG` environment switch for this thread
/// (`Some(false)` pins every round to the hop-walk oracle, `Some(true)`
/// force-enables, `None` defers to the environment). Returns the
/// previous override, mirroring
/// [`crate::pdes::set_par_min_nodes_per_worker`].
pub fn set_aggregated_rounds(enabled: Option<bool>) -> Option<bool> {
    AGG_OVERRIDE.with(|c| c.replace(enabled))
}

/// Whether the aggregated kernel may run rounds on this thread.
/// Defaults to enabled; `AMBIENCE_AGG=0` disables it process-wide.
pub fn aggregated_rounds_enabled() -> bool {
    if let Some(forced) = AGG_OVERRIDE.with(Cell::get) {
        return forced;
    }
    std::env::var("AMBIENCE_AGG").map_or(true, |v| v != "0")
}

/// Rounds this thread committed through the aggregated kernel.
pub fn agg_engaged_count() -> u64 {
    AGG_ENGAGED.with(Cell::get)
}

/// Rounds this thread's margin checks returned to the hop-walk oracle.
pub fn agg_fallback_count() -> u64 {
    AGG_FALLBACKS.with(Cell::get)
}

/// Zeroes both engagement counters (test isolation).
pub fn reset_agg_counters() {
    AGG_ENGAGED.with(|c| c.set(0));
    AGG_FALLBACKS.with(|c| c.set(0));
}

pub(crate) fn note_engaged() {
    AGG_ENGAGED.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_fallback() {
    AGG_FALLBACKS.with(|c| c.set(c.get() + 1));
}

/// Reusable scratch for the aggregated kernel — allocated once per run
/// (or once per [`crate::GatherSession`], surviving across runs) and
/// reused by every round, so the round loop stays allocation-steady.
///
/// All hot state is struct-of-arrays: the packed route arrays
/// (`parent`/`tx`) give the traffic pass 4-byte next-hop fetches
/// instead of 16-byte `Option<NodeId>` reads, and the transit tallies
/// (`below`/`above`) plus the charge scratch (`finals`) are the flat
/// per-node columns the per-cell replay streams through.
pub(crate) struct AggScratch {
    /// Packed next-hop / tx-cost arrays, refreshed per route epoch.
    routes: PackedRoutes,
    /// Clean transit arrivals at each node from sources with smaller /
    /// larger ids — the position split the per-cell fold needs because
    /// the node's own transmission sits between the two groups.
    below: Vec<u32>,
    above: Vec<u32>,
    /// Per-cell replay scratch; swapped with the live budgets on commit.
    finals: Vec<f64>,
    /// Memoized spent value stream (fault-free rounds only).
    stream: Vec<f64>,
    /// Route epoch the memoized round image (stream + tallies +
    /// counters) is valid for. Fault-free epochs only: exogenous faults
    /// change per-round fates without necessarily changing routes, so
    /// the replay branch additionally requires a fault-free round and
    /// [`Self::invalidate_run_memo`] clears this at every session-run
    /// boundary.
    image_epoch: Option<u64>,
    /// Total hop charges seen by the last walk of `hops_epoch` — sizes
    /// the stream reservation and gates memoization against the cap.
    hops_epoch: Option<u64>,
    hops: u64,
    // Round packet tallies (valid after a walk or with a valid image).
    senders: u64,
    delivered: u64,
    disconnected: u64,
    faulted: u64,
}

impl AggScratch {
    pub(crate) fn new(nodes: usize) -> Self {
        Self {
            routes: PackedRoutes::new(nodes),
            below: vec![0; nodes],
            above: vec![0; nodes],
            finals: vec![0.0; nodes],
            stream: Vec::new(),
            image_epoch: None,
            hops_epoch: None,
            hops: 0,
            senders: 0,
            delivered: 0,
            disconnected: 0,
            faulted: 0,
        }
    }

    /// Drops everything memoized from earlier runs: the round image and
    /// the probed hop count. Both are keyed on the route epoch, and the
    /// epoch alone cannot distinguish two runs of a warm session — a new
    /// run may carry a different fault schedule without ever moving the
    /// epoch (routing sees faults one round late, and link faults never
    /// change the usable set) — so a session must call this at every
    /// run start and let the run's own walks re-establish both.
    pub(crate) fn invalidate_run_memo(&mut self) {
        self.image_epoch = None;
        self.hops_epoch = None;
    }
}

impl GatherState<'_> {
    /// The mid-round phase with the aggregated kernel in front: commit
    /// the round through the O(N) pass when the energy margins allow,
    /// fall back to the serial hop walk otherwise.
    pub(crate) fn round_charges<R: Recorder>(
        &mut self,
        scratch: &mut AggScratch,
        recorder: &mut R,
    ) {
        if aggregated_rounds_enabled() {
            if self.try_aggregated_round(scratch, recorder) {
                note_engaged();
                return;
            }
            note_fallback();
        }
        self.idle_and_send(recorder);
    }

    /// Attempts one aggregated round. Returns `false` — with the state
    /// completely untouched — when a margin check shows the round's
    /// fates could depend on mid-round charge order.
    fn try_aggregated_round<R: Recorder>(
        &mut self,
        scratch: &mut AggScratch,
        recorder: &mut R,
    ) -> bool {
        let n = self.topology.len();
        let idle = self.idle_per_round;

        // S1: the idle charge alone must strand nobody at or below
        // zero. Same rounding as the serial debit: one subtraction.
        let mut powered = 0u64;
        for v in 1..n {
            if self.alive[v] && !self.down_now[v] {
                if self.budget[v] - idle <= 0.0 {
                    return false;
                }
                powered += 1;
            }
        }

        let epoch = self.cache.epoch();
        if scratch.routes.ensure(&self.cache) {
            scratch.image_epoch = None;
        }

        // The spent fold continues from the live accumulator in serial
        // charge order: the round's idle debits first, then the send
        // phase's tx/rx stream.
        let mut spent = self.spent;
        for _ in 0..powered {
            spent += idle;
        }
        if !self.faults_active && scratch.image_epoch == Some(epoch) {
            // Fault-free steady state: fates, tallies and the value
            // stream are round-constant within a route epoch, so the
            // whole walk collapses to one flat sequential fold. The
            // image captures fault-free fates only — a fault schedule
            // changes fates without necessarily moving the epoch, so
            // faulted rounds always re-walk.
            for &v in &scratch.stream {
                spent += v;
            }
        } else {
            spent = self.walk_and_tally(scratch, epoch, spent);
        }

        // Per-cell replay + S2. Nothing below mutates live state until
        // every live powered cell is proven to finish above zero.
        if !self.replay_cells(scratch) {
            return false;
        }

        self.commit_aggregated(scratch, spent, recorder);
        true
    }

    /// The traffic-aggregation pass: walks each report along the packed
    /// route arrays, folding the spent stream inline, tallying clean
    /// transit arrivals per relay, and counting fates. Pure with
    /// respect to simulation state. On fault-free rounds whose hop
    /// count fits [`STREAM_VALUE_CAP`], also memoizes the value stream
    /// for the epoch.
    fn walk_and_tally(&self, scratch: &mut AggScratch, epoch: u64, mut spent: f64) -> f64 {
        let n = self.topology.len();
        let sink = self.sink.0 as u32;
        let rx = self.rx_per_hop;
        let connected = self.cache.connected_flags();

        scratch.below[..n].fill(0);
        scratch.above[..n].fill(0);
        scratch.stream.clear();
        // Record the stream only once the epoch's hop count is known to
        // fit the cap (the first walk of an epoch probes it), so large
        // runs never transiently allocate an over-cap buffer.
        let record = !self.faults_active
            && scratch.hops_epoch == Some(epoch)
            && scratch.hops <= STREAM_VALUE_CAP as u64;
        if record {
            scratch.stream.reserve_exact(scratch.hops as usize);
        }
        // Split the scratch into disjoint field borrows so the route
        // reads and the tally/stream writes carry distinct noalias
        // pointers — one struct-wide borrow would serialize every
        // `parent` load behind every tally store.
        let AggScratch {
            routes,
            below,
            above,
            stream,
            ..
        } = scratch;
        let parent = routes.parent.as_slice();
        let tx_costs = routes.tx.as_slice();
        let below = below.as_mut_slice();
        let above = above.as_mut_slice();

        let mut hops = 0u64;
        let mut senders = 0u64;
        let mut delivered = 0u64;
        let mut disconnected = 0u64;
        let mut faulted = 0u64;
        for (src, &conn) in connected.iter().enumerate().take(n).skip(1) {
            if !self.alive[src] || self.down_now[src] {
                continue;
            }
            senders += 1;
            if !conn {
                disconnected += 1;
                continue;
            }
            let mut from = src as u32;
            loop {
                let fu = from as usize;
                let hop = parent[fu];
                let tx = tx_costs[fu];
                // The sender pays for its transmission before learning
                // whether the hop ahead is faulted — mirror the serial
                // charge-then-check order exactly.
                spent += tx;
                hops += 1;
                if record {
                    stream.push(tx);
                }
                if self.faults_active
                    && ((hop != sink && self.down_now[hop as usize])
                        || self.timeline.link_down(fu, hop as usize))
                {
                    faulted += 1;
                    break;
                }
                if hop == sink {
                    delivered += 1;
                    break;
                }
                spent += rx;
                hops += 1;
                if record {
                    stream.push(rx);
                }
                if (src as u32) < hop {
                    below[hop as usize] += 1;
                } else {
                    above[hop as usize] += 1;
                }
                from = hop;
            }
        }

        scratch.hops_epoch = Some(epoch);
        scratch.hops = hops;
        scratch.image_epoch = if record { Some(epoch) } else { None };
        scratch.senders = senders;
        scratch.delivered = delivered;
        scratch.disconnected = disconnected;
        scratch.faulted = faulted;
        spent
    }

    /// Replays every budget cell's charge sequence — identical, op for
    /// op, to what the serial walk applies to that cell — into the
    /// scratch finals, validating S2 as it goes. Returns `false` if any
    /// live powered cell would finish the round at or below zero.
    fn replay_cells(&self, scratch: &mut AggScratch) -> bool {
        let n = self.topology.len();
        let idle = self.idle_per_round;
        let rx = self.rx_per_hop;
        let connected = self.cache.connected_flags();
        scratch.finals.copy_from_slice(&self.budget);
        for (v, &conn) in connected.iter().enumerate().take(n).skip(1) {
            if !self.alive[v] || self.down_now[v] {
                // Powered-off or dead: no idle, no send, and the walk
                // never tallies arrivals into such a node.
                debug_assert_eq!(scratch.below[v] + scratch.above[v], 0);
                continue;
            }
            let b = scratch.below[v];
            let a = scratch.above[v];
            let tx = scratch.routes.tx[v];
            let mut cell = scratch.finals[v];
            cell -= idle;
            for _ in 0..b {
                cell -= rx;
                cell -= tx;
            }
            if conn {
                cell -= tx;
            }
            for _ in 0..a {
                cell -= rx;
                cell -= tx;
            }
            scratch.finals[v] = cell;
            if cell <= 0.0 {
                return false;
            }
        }
        true
    }

    /// Commits a validated aggregated round: budgets, the spent fold,
    /// the delivered count, then the recorder replay in the fixed
    /// per-cell order the region-parallel engine established (idle
    /// charges ascending, then each cell's Tx and RxRelay charges;
    /// packet counters as whole-round tallies).
    fn commit_aggregated<R: Recorder>(
        &mut self,
        scratch: &mut AggScratch,
        spent: f64,
        recorder: &mut R,
    ) {
        let n = self.topology.len();
        std::mem::swap(&mut self.budget, &mut scratch.finals);
        self.spent = spent;
        self.delivered += scratch.delivered;

        let idle = self.idle_per_round;
        let rx = self.rx_per_hop;
        let connected = self.cache.connected_flags();
        for v in 1..n {
            if self.alive[v] && !self.down_now[v] {
                recorder.charge(v, EnergyCategory::Idle, idle);
            }
        }
        for (v, &conn) in connected.iter().enumerate().take(n).skip(1) {
            if !self.alive[v] || self.down_now[v] {
                continue;
            }
            let relayed = scratch.below[v] + scratch.above[v];
            let tx_count = relayed + u32::from(conn);
            let tx = scratch.routes.tx[v];
            for _ in 0..tx_count {
                recorder.charge(v, EnergyCategory::Tx, tx);
            }
            for _ in 0..relayed {
                recorder.charge(v, EnergyCategory::RxRelay, rx);
            }
        }
        recorder.packets_offered(scratch.senders);
        recorder.packets_dropped_disconnected(scratch.disconnected);
        recorder.packets_delivered(scratch.delivered);
        recorder.packets_dropped_fault(scratch.faulted);
    }
}
