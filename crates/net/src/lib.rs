//! Networks of ambient nodes: topology, routing and lifetime simulation.
//!
//! "Ambient intelligent functions are realized by a *network* of these
//! devices" — this crate evaluates such networks of µW-class nodes
//! reporting to a mains-powered sink:
//!
//! * [`Topology`] — grid, uniform-random and star node layouts;
//! * [`RoutingStrategy`] — direct-to-sink versus minimum-energy multi-hop
//!   (Dijkstra on the first-order radio energy metric);
//! * [`simulate_gathering`] — round-based data gathering that charges
//!   every transmit, relay and idle-listening joule against each node's
//!   energy budget and reports delivered information, network lifetime
//!   and the energy cost per delivered bit (experiments F6/A3);
//! * [`simulate_gathering_observed`] — the same run with an
//!   [`ami_sim::obs`] energy ledger and packet counters attached, for
//!   per-category energy attribution and run manifests;
//! * [`simulate_gathering_faulted`] and
//!   [`simulate_lossy_gathering_faulted`] — the same runs under an
//!   exogenous [`ami_sim::fault::FaultSchedule`] (node death, outages,
//!   link outages, capacity fade); routing re-resolves around downed
//!   nodes and fault losses are attributed to the `dropped_fault`
//!   counter cause;
//! * [`pdes`] — conservative region-parallel execution of single runs:
//!   [`simulate_gathering_par`] (rollback on energy-margin violations)
//!   and [`pdes::simulate_lossy_gathering_par`] (rollback-free — the
//!   lossy kernel draws per-packet counter randomness via
//!   [`ami_sim::rng::packet_rng`], so packets commute), both
//!   bit-identical to their serial kernels at any thread count, with a
//!   serial fallback below a nodes-per-worker floor.
//!
//! # Example
//!
//! ```
//! use ami_net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
//! use ami_units::Length;
//!
//! let topo = Topology::grid(4, Length::from_meters(20.0));
//! let report = simulate_gathering(
//!     &topo, RoutingStrategy::MinimumEnergy, &NetworkConfig::sensor_default(), 100,
//! );
//! assert_eq!(report.delivered_packets, 100 * (topo.len() as u64 - 1));
//! ```

pub mod agg;
pub mod aggregate;
pub mod cluster;
pub mod csr;
pub mod gather;
pub mod lossy;
pub mod pdes;
pub mod replicate;
pub mod routing;
pub mod topology;

pub use agg::{
    agg_engaged_count, agg_fallback_count, aggregated_rounds_enabled, reset_agg_counters,
    set_aggregated_rounds,
};
pub use aggregate::{analyze_aggregation, AggregationReport};
pub use cluster::{simulate_clustered, ClusterConfig, ClusterReport};
pub use csr::{CsrAdjacency, RegionPartition};
pub use gather::{
    simulate_gathering, simulate_gathering_faulted, simulate_gathering_faulted_observed,
    simulate_gathering_faulted_with, simulate_gathering_observed, simulate_gathering_with,
    GatherSession, NetworkConfig, NetworkReport,
};
pub use lossy::{
    simulate_lossy_gathering, simulate_lossy_gathering_faulted,
    simulate_lossy_gathering_faulted_observed, simulate_lossy_gathering_faulted_with,
    simulate_lossy_gathering_observed, simulate_lossy_gathering_seqstream, LossyConfig,
    LossyReport, LossySession,
};
pub use pdes::{
    par_engaged_count, par_min_nodes_per_worker, par_serial_fallback_count,
    reset_par_engagement_counters, set_par_min_nodes_per_worker,
    simulate_gathering_faulted_observed_par, simulate_gathering_faulted_par,
    simulate_gathering_faulted_par_with, simulate_gathering_observed_par, simulate_gathering_par,
    simulate_lossy_gathering_faulted_observed_par, simulate_lossy_gathering_faulted_par,
    simulate_lossy_gathering_faulted_par_with, simulate_lossy_gathering_par,
    PAR_MIN_NODES_PER_WORKER,
};
pub use replicate::{
    replicate_gathering, replicate_gathering_faulted_observed,
    replicate_gathering_faulted_observed_threads, replicate_gathering_observed,
    replicate_gathering_observed_threads, replicate_gathering_threads, summarize_reports,
};
pub use routing::{build_routes, build_routes_over, RouteCache, RoutingStrategy};
pub use topology::{NeighborsWithin, NodeId, Position, Topology};
