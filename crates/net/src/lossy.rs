//! Lossy-link gathering: the round-based simulator with per-hop packet
//! loss and stop-and-wait retransmission.
//!
//! `gather` assumes perfect links; real ambient channels drop packets.
//! This module folds the `ami-radio` reliability stack into the network
//! simulation: every hop succeeds with the packet's delivery probability
//! at the configured channel BER, failures trigger ARQ retransmissions
//! (bounded), and all the retry energy is charged to the transmitting and
//! receiving nodes. Deterministic in a seed.

use crate::routing::{build_routes, route_to_sink, RoutingStrategy};
use crate::topology::Topology;
use ami_radio::{Packet, RadioEnergyModel, StopAndWaitArq};
use ami_sim::sim_rng;
use ami_units::{Energy, EnergyPerBit, Length};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a lossy gathering network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyConfig {
    /// Radio energy model.
    pub radio: RadioEnergyModel,
    /// Packet format.
    pub packet: Packet,
    /// Raw channel bit error rate applied to every hop.
    pub ber: f64,
    /// Retransmission budget per hop.
    pub arq: StopAndWaitArq,
    /// Maximum hop length.
    pub max_hop: Length,
}

impl LossyConfig {
    /// Sensor defaults on a bruised channel: BER 1e-3, 4-attempt ARQ.
    pub fn bruised_channel() -> Self {
        Self {
            radio: RadioEnergyModel::short_range_2003(),
            packet: Packet::sensor_report(),
            ber: 1e-3,
            arq: StopAndWaitArq::new(4),
            max_hop: Length::from_meters(45.0),
        }
    }
}

/// Outcome of a lossy gathering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyReport {
    /// Packets offered (one per sensor per round).
    pub offered: u64,
    /// Packets that reached the sink end-to-end.
    pub delivered: u64,
    /// Total transmissions including retries.
    pub transmissions: u64,
    /// Total radio energy spent.
    pub total_energy: Energy,
}

impl LossyReport {
    /// End-to-end delivery ratio.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Mean transmissions per offered packet (ARQ overhead measure).
    pub fn tx_per_packet(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.offered as f64
        }
    }

    /// Mean energy cost per delivered payload bit for `packet`-format
    /// reports, or `None` when nothing got through (heavy loss with a
    /// small ARQ budget can starve the sink entirely).
    pub fn energy_per_delivered_bit(&self, packet: &Packet) -> Option<EnergyPerBit> {
        let bits = packet.payload().as_bits() * self.delivered as f64;
        if bits > 0.0 {
            Some(EnergyPerBit::new(self.total_energy.as_joules() / bits))
        } else {
            None
        }
    }
}

/// Runs `rounds` of minimum-energy gathering over lossy links,
/// deterministic in `seed`.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
) -> LossyReport {
    assert!(rounds > 0, "simulate at least one round");
    assert!(
        (0.0..=0.5).contains(&config.ber),
        "BER must lie in [0, 0.5]"
    );
    let table = build_routes(
        topology,
        RoutingStrategy::MinimumEnergy,
        &config.radio,
        config.max_hop,
    );
    let p_hop = config.packet.delivery_probability(config.ber);
    let bits = config.packet.total_bits();
    let mut rng = sim_rng(seed);
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut transmissions = 0u64;
    let mut energy = 0.0f64;

    for _ in 0..rounds {
        for id in topology.sensor_ids() {
            let path = route_to_sink(&table, topology, id);
            if path.is_empty() {
                continue;
            }
            offered += 1;
            let mut from = id;
            let mut alive = true;
            for hop in path {
                if !alive {
                    break;
                }
                let d = topology.distance(from, hop);
                let mut hop_ok = false;
                for _attempt in 0..config.arq.max_transmissions {
                    transmissions += 1;
                    energy += config.radio.transmit_energy(bits, d).as_joules();
                    // The receiver listens whether or not the packet
                    // survives (it cannot know in advance).
                    energy += config.radio.receive_energy(bits).as_joules();
                    if bernoulli(&mut rng, p_hop) {
                        hop_ok = true;
                        break;
                    }
                }
                if !hop_ok {
                    alive = false;
                }
                from = hop;
            }
            if alive {
                delivered += 1;
            }
        }
    }

    LossyReport {
        offered,
        delivered,
        transmissions,
        total_energy: Energy::from_joules(energy),
    }
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::grid(4, Length::from_meters(30.0))
    }

    #[test]
    fn perfect_channel_delivers_everything_without_retries() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.0;
        let report = simulate_lossy_gathering(&topo(), &config, 50, 1);
        assert_eq!(report.delivered, report.offered);
        assert!((report.tx_per_packet() - expected_hops(&topo(), &config)).abs() < 0.2);
    }

    #[test]
    fn per_bit_cost_is_none_when_nothing_gets_through() {
        let mut config = LossyConfig::bruised_channel();
        let report = simulate_lossy_gathering(&topo(), &config, 20, 7);
        let epb = report
            .energy_per_delivered_bit(&config.packet)
            .expect("bruised channel still delivers");
        let direct = report.total_energy.as_joules()
            / (config.packet.payload().as_bits() * report.delivered as f64);
        assert!((epb.as_joules_per_bit() - direct).abs() < 1e-18);

        // BER 0.5 with a single attempt: nothing survives a multi-bit
        // packet, so there is no per-bit cost to report.
        config.ber = 0.5;
        config.arq = StopAndWaitArq::new(1);
        let starved = simulate_lossy_gathering(&topo(), &config, 5, 7);
        assert_eq!(starved.delivered, 0);
        assert_eq!(starved.energy_per_delivered_bit(&config.packet), None);
    }

    /// Mean hops per packet on the routing tree (tx count lower bound).
    fn expected_hops(topology: &Topology, config: &LossyConfig) -> f64 {
        let table = build_routes(
            topology,
            RoutingStrategy::MinimumEnergy,
            &config.radio,
            config.max_hop,
        );
        let total: usize = topology
            .sensor_ids()
            .map(|id| route_to_sink(&table, topology, id).len())
            .sum();
        total as f64 / (topology.len() - 1) as f64
    }

    #[test]
    fn dirtier_channels_cost_more_and_deliver_less() {
        let mut clean = LossyConfig::bruised_channel();
        clean.ber = 1e-4;
        let mut dirty = LossyConfig::bruised_channel();
        dirty.ber = 1e-2;
        let a = simulate_lossy_gathering(&topo(), &clean, 100, 2);
        let b = simulate_lossy_gathering(&topo(), &dirty, 100, 2);
        assert!(a.delivery_ratio() > b.delivery_ratio());
        assert!(a.tx_per_packet() < b.tx_per_packet());
    }

    #[test]
    fn arq_buys_delivery_for_energy() {
        let mut no_retry = LossyConfig::bruised_channel();
        no_retry.ber = 5e-3;
        no_retry.arq = StopAndWaitArq::new(1);
        let mut retry = no_retry.clone();
        retry.arq = StopAndWaitArq::new(6);
        let a = simulate_lossy_gathering(&topo(), &no_retry, 200, 3);
        let b = simulate_lossy_gathering(&topo(), &retry, 200, 3);
        assert!(b.delivery_ratio() > a.delivery_ratio() + 0.05);
        assert!(b.total_energy > a.total_energy);
    }

    #[test]
    fn deterministic_in_seed() {
        let config = LossyConfig::bruised_channel();
        let a = simulate_lossy_gathering(&topo(), &config, 100, 9);
        let b = simulate_lossy_gathering(&topo(), &config, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn delivery_matches_analytic_prediction_on_single_hop() {
        // A star where every leaf is one hop from the sink: measured
        // delivery must match ARQ theory within Monte-Carlo noise.
        let star = Topology::star(8, Length::from_meters(20.0));
        let mut config = LossyConfig::bruised_channel();
        config.ber = 3e-3;
        let p_hop = config.packet.delivery_probability(config.ber);
        let predicted = config.arq.delivery_probability(p_hop);
        let report = simulate_lossy_gathering(&star, &config, 2000, 4);
        let measured = report.delivery_ratio();
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn absurd_ber_rejected() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.9;
        let _ = simulate_lossy_gathering(&topo(), &config, 1, 0);
    }
}
