//! Lossy-link gathering: the round-based simulator with per-hop packet
//! loss and stop-and-wait retransmission.
//!
//! `gather` assumes perfect links; real ambient channels drop packets.
//! This module folds the `ami-radio` reliability stack into the network
//! simulation: every hop succeeds with the packet's delivery probability
//! at the configured channel BER, failures trigger ARQ retransmissions
//! (bounded), and all the retry energy is charged to the transmitting and
//! receiving nodes. Deterministic in a seed.
//!
//! [`simulate_lossy_gathering_faulted`] layers an
//! [`ami_sim::fault::FaultSchedule`] on top: fault-downed relays and
//! downed links waste the sender's full ARQ budget and count the packet
//! as `dropped_fault`. Fault handling consumes **no randomness**, so a
//! faulted run's channel draws stay aligned with the unfaulted run at
//! the same seed on every packet a fault does not touch.
//!
//! # The counter-RNG discipline (why lossy rounds parallelize)
//!
//! Channel randomness is *addressable*, not sequential: every offered
//! packet owns an independent counter-based stream keyed by
//! `(seed, round, source)` ([`ami_sim::rng::packet_rng`]), and its ARQ
//! attempts consume that stream in walk order — attempt index within
//! the packet, never a position in some global sequence. A packet's
//! fate is therefore a pure function of round-constant state (the route
//! table, fault windows) and its own key, independent of when or where
//! any *other* packet executes. That is the property the region-parallel
//! engine in [`pdes`](crate::pdes) exploits: sources execute
//! region-parallel, and the commit replays counters and energy in fixed
//! ascending-id order — bit-identical to this serial kernel at any
//! thread count (no rollback machinery is needed, because unlike the
//! budgeted perfect-link kernel there is no cross-packet coupling:
//! links are lossy but energy is not finite in this model).
//!
//! The float discipline backing that equality: each packet accumulates
//! its energy in a private subtotal, and subtotals fold into the run
//! total in source-ascending order; per-node ledger charges are
//! committed once per round per `(node, category)` from integer attempt
//! counts times the (round-constant) per-attempt cost.
//!
//! # The retired sequential-stream oracle
//!
//! The pre-counter kernel drew every attempt from **one sequential
//! `StdRng` stream**, so a hop's retry count decided which values the
//! next hop saw — correct, but permanently serial. It is retained
//! verbatim as [`simulate_lossy_gathering_seqstream`], pinned by its own
//! frozen golden, so the pre-migration baselines stay reproducible
//! forever. New work uses the counter kernel.

use crate::routing::{PackedRoutes, RouteCache, RoutingStrategy};
use crate::topology::{NodeId, Topology};
use ami_radio::{Packet, RadioEnergyModel, StopAndWaitArq};
use ami_sim::fault::{FaultSchedule, FaultTimeline};
use ami_sim::obs::{EnergyCategory, LedgerRecorder, NullRecorder, Recorder};
use ami_sim::rng::packet_rng;
use ami_sim::sim_rng;
use ami_units::{DataVolume, Energy, EnergyPerBit, Length};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a lossy gathering network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyConfig {
    /// Radio energy model.
    pub radio: RadioEnergyModel,
    /// Packet format.
    pub packet: Packet,
    /// Raw channel bit error rate applied to every hop.
    pub ber: f64,
    /// Retransmission budget per hop.
    pub arq: StopAndWaitArq,
    /// Maximum hop length.
    pub max_hop: Length,
}

impl LossyConfig {
    /// Sensor defaults on a bruised channel: BER 1e-3, 4-attempt ARQ.
    pub fn bruised_channel() -> Self {
        Self {
            radio: RadioEnergyModel::short_range_2003(),
            packet: Packet::sensor_report(),
            ber: 1e-3,
            arq: StopAndWaitArq::new(4),
            max_hop: Length::from_meters(45.0),
        }
    }
}

/// Outcome of a lossy gathering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyReport {
    /// Packets offered (one per sensor per round).
    pub offered: u64,
    /// Packets that reached the sink end-to-end.
    pub delivered: u64,
    /// Total transmissions including retries.
    pub transmissions: u64,
    /// Total radio energy spent.
    pub total_energy: Energy,
    /// Packets lost to an injected fault (downed relay or link) rather
    /// than to channel noise. Always zero on unfaulted runs.
    pub dropped_fault: u64,
}

impl LossyReport {
    /// End-to-end delivery ratio.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Mean transmissions per offered packet (ARQ overhead measure).
    pub fn tx_per_packet(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.offered as f64
        }
    }

    /// Mean energy cost per delivered payload bit for `packet`-format
    /// reports, or `None` when nothing got through (heavy loss with a
    /// small ARQ budget can starve the sink entirely).
    pub fn energy_per_delivered_bit(&self, packet: &Packet) -> Option<EnergyPerBit> {
        let bits = packet.payload().as_bits() * self.delivered as f64;
        if bits > 0.0 {
            Some(EnergyPerBit::new(self.total_energy.as_joules() / bits))
        } else {
            None
        }
    }
}

/// How one offered packet ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LossyFate {
    /// Reached the sink end-to-end.
    Delivered,
    /// Died on channel noise: some hop exhausted its ARQ budget.
    Channel,
    /// Lost to an injected fault (downed relay or downed link).
    Fault,
}

/// The round-constant inputs of a packet walk, shared by the serial
/// kernel and the region-parallel engine so both execute the *same*
/// code — the bit-exactness argument reduces to "same inputs, same
/// function, replayed folds".
pub(crate) struct LossyRoundCtx<'a> {
    pub sink: NodeId,
    pub seed: u64,
    /// Per-hop delivery probability at the configured BER.
    pub p_hop: f64,
    /// Receive energy per attempt (distance-independent).
    pub rx: f64,
    pub max_transmissions: u32,
    /// `max_transmissions` as the u64 the fault branches account with.
    pub attempts: u64,
    /// `max_transmissions` as the f64 the fault branches charge with.
    pub attempts_f: f64,
    /// Packed next-hop table (`u32::MAX` = routeless), flat-indexed by
    /// node id so the hop chase is two array loads, not a cache probe.
    pub parent: &'a [u32],
    /// Packed per-node transmit cost, same indexing.
    pub tx_costs: &'a [f64],
    pub timeline: &'a FaultTimeline,
    pub down_now: &'a [bool],
}

/// Walks one offered packet from `src` toward the sink, drawing every
/// channel attempt from the packet's own counter stream. Returns the
/// packet's fate and its private energy subtotal; per-node attempt
/// counts and the transmission tally are accumulated into the caller's
/// scratch. Pure in `(ctx, round, src)` — no draw depends on any other
/// packet, which is what lets callers execute walks in any order.
pub(crate) fn walk_packet(
    ctx: &LossyRoundCtx<'_>,
    round: u64,
    src: NodeId,
    tx_attempts: &mut [u64],
    rx_attempts: &mut [u64],
    transmissions: &mut u64,
) -> (LossyFate, f64) {
    let mut rng = packet_rng(ctx.seed, round, src.0 as u64);
    let mut pkt_energy = 0.0f64;
    let sink = ctx.sink.0 as u32;
    let mut from = src.0 as u32;
    loop {
        let fu = from as usize;
        let hop = ctx.parent[fu];
        debug_assert!(hop != u32::MAX, "connected route reaches the sink");
        let tx = ctx.tx_costs[fu];
        if hop != sink && ctx.down_now[hop as usize] {
            // Powered-off receiver: no ACK ever comes, so the sender
            // exhausts its ARQ budget; nothing listens on the far end.
            // No random draws — the packet's stream stays aligned with
            // the unfaulted run.
            *transmissions += ctx.attempts;
            tx_attempts[fu] += ctx.attempts;
            pkt_energy += ctx.attempts_f * tx;
            return (LossyFate::Fault, pkt_energy);
        }
        if ctx.timeline.link_down(fu, hop as usize) {
            // Downed link between two powered nodes: every attempt
            // costs the sender a transmit and the receiver a listen,
            // but nothing crosses.
            *transmissions += ctx.attempts;
            tx_attempts[fu] += ctx.attempts;
            rx_attempts[hop as usize] += ctx.attempts;
            pkt_energy += ctx.attempts_f * (tx + ctx.rx);
            return (LossyFate::Fault, pkt_energy);
        }
        let mut hop_ok = false;
        for _attempt in 0..ctx.max_transmissions {
            *transmissions += 1;
            tx_attempts[fu] += 1;
            // The receiver listens whether or not the packet survives
            // (it cannot know in advance).
            rx_attempts[hop as usize] += 1;
            pkt_energy += tx;
            pkt_energy += ctx.rx;
            if rng.random::<f64>() < ctx.p_hop {
                hop_ok = true;
                break;
            }
        }
        if !hop_ok {
            return (LossyFate::Channel, pkt_energy);
        }
        if hop == sink {
            return (LossyFate::Delivered, pkt_energy);
        }
        from = hop;
    }
}

/// Run state of the counter-RNG lossy kernel, shared between the serial
/// loop and the region-parallel engine in [`crate::pdes`] (which
/// borrows the fields disjointly for its worker phases).
pub(crate) struct LossyState<'a> {
    pub topology: &'a Topology,
    pub sink: NodeId,
    pub seed: u64,
    pub p_hop: f64,
    pub bits: DataVolume,
    pub rx: f64,
    pub radio: &'a RadioEnergyModel,
    pub max_hop: Length,
    pub max_transmissions: u32,
    pub attempts: u64,
    pub attempts_f: f64,
    pub faults_active: bool,
    pub timeline: FaultTimeline,
    pub down_now: Vec<bool>,
    pub down_prev: Vec<bool>,
    pub usable: Vec<bool>,
    pub cache: RouteCache,
    /// Flat next-hop/cost image of `cache`, refreshed when the cache
    /// epoch moves; the hop chase reads these, not the cache.
    pub packed: PackedRoutes,
    pub routes_dirty: bool,
    /// Per-node ARQ attempt counts this round (sender side), committed
    /// to the recorder once per round in ascending node order.
    pub tx_attempts: Vec<u64>,
    /// Per-node listen counts this round (receiver side).
    pub rx_attempts: Vec<u64>,
    pub offered: u64,
    pub delivered: u64,
    pub transmissions: u64,
    pub dropped_fault: u64,
    pub energy: f64,
}

impl<'a> LossyState<'a> {
    pub fn new(
        topology: &'a Topology,
        config: &'a LossyConfig,
        rounds: u64,
        seed: u64,
        faults: &FaultSchedule,
    ) -> Self {
        assert!(rounds > 0, "simulate at least one round");
        assert!(
            (0.0..=0.5).contains(&config.ber),
            "BER must lie in [0, 0.5]"
        );
        let n = topology.len();
        let bits = config.packet.total_bits();
        Self {
            topology,
            sink: topology.sink(),
            seed,
            p_hop: config.packet.delivery_probability(config.ber),
            bits,
            // Receive energy is distance-independent: one value serves
            // every hop.
            rx: config.radio.receive_energy(bits).as_joules(),
            radio: &config.radio,
            max_hop: config.max_hop,
            max_transmissions: config.arq.max_transmissions,
            attempts: u64::from(config.arq.max_transmissions),
            attempts_f: f64::from(config.arq.max_transmissions),
            faults_active: !faults.is_empty(),
            // Compiled down/link windows: O(1) per query instead of an
            // event scan, cursor advanced once per round.
            timeline: FaultTimeline::compile(faults, n),
            down_now: vec![false; n],
            down_prev: vec![false; n],
            usable: vec![true; n],
            cache: RouteCache::new(n),
            packed: PackedRoutes::new(n),
            routes_dirty: true,
            tx_attempts: vec![0; n],
            rx_attempts: vec![0; n],
            offered: 0,
            delivered: 0,
            transmissions: 0,
            dropped_fault: 0,
            energy: 0.0,
        }
    }

    /// Advances fault state and re-resolves routes when dirty. Routing
    /// sees fault state with a one-round lag, as in `gather` (no budget
    /// deaths here — links are lossy but energy is not finite in this
    /// model).
    pub fn begin_round(&mut self, round: u64) {
        if self.faults_active {
            self.timeline.advance_to(round);
            for (id, down) in self.down_now.iter_mut().enumerate() {
                *down = id != self.sink.0 && self.timeline.node_down(id);
            }
        }
        if self.routes_dirty {
            for (id, flag) in self.usable.iter_mut().enumerate() {
                *flag = id == self.sink.0 || !self.down_prev[id];
            }
            self.cache.ensure(
                self.topology,
                RoutingStrategy::MinimumEnergy,
                self.radio,
                self.max_hop,
                self.bits,
                &self.usable,
            );
            self.routes_dirty = false;
        }
        self.packed.ensure(&self.cache);
    }

    /// The serial round body: every live connected sensor offers one
    /// packet and walks it, ascending source id; the recorder sees the
    /// round's per-node charges afterwards via [`Self::commit_charges`].
    pub fn send_all<R: Recorder>(&mut self, round: u64, recorder: &mut R) {
        let Self {
            topology,
            sink,
            seed,
            p_hop,
            rx,
            max_transmissions,
            attempts,
            attempts_f,
            timeline,
            down_now,
            cache,
            packed,
            tx_attempts,
            rx_attempts,
            offered,
            delivered,
            transmissions,
            dropped_fault,
            energy,
            ..
        } = self;
        let ctx = LossyRoundCtx {
            sink: *sink,
            seed: *seed,
            p_hop: *p_hop,
            rx: *rx,
            max_transmissions: *max_transmissions,
            attempts: *attempts,
            attempts_f: *attempts_f,
            parent: &packed.parent,
            tx_costs: &packed.tx,
            timeline,
            down_now,
        };
        for id in topology.sensor_ids() {
            if ctx.down_now[id.0] {
                continue; // powered off: offers nothing
            }
            if !cache.is_connected(id) {
                continue;
            }
            *offered += 1;
            recorder.packet_offered();
            let (fate, pkt_energy) =
                walk_packet(&ctx, round, id, tx_attempts, rx_attempts, transmissions);
            *energy += pkt_energy;
            match fate {
                LossyFate::Delivered => {
                    *delivered += 1;
                    recorder.packet_delivered();
                }
                LossyFate::Fault => {
                    *dropped_fault += 1;
                    recorder.packet_dropped_fault();
                }
                // Channel losses are implicit in the counters
                // (offered − delivered − fault); they are not a
                // `dropped_*` recorder cause.
                LossyFate::Channel => {}
            }
        }
        self.commit_charges(recorder);
    }

    /// Commits the round's attempt counts to the recorder — one charge
    /// per `(node, category)` in ascending node order, integer count
    /// times the round-constant per-attempt cost — and clears them.
    /// This is the serial definition the parallel engine replays.
    pub fn commit_charges<R: Recorder>(&mut self, recorder: &mut R) {
        let tx_costs = self.cache.tx_costs();
        for (id, count) in self.tx_attempts.iter_mut().enumerate() {
            if *count > 0 {
                recorder.charge(id, EnergyCategory::Tx, *count as f64 * tx_costs[id]);
                *count = 0;
            }
        }
        for (id, count) in self.rx_attempts.iter_mut().enumerate() {
            if *count > 0 {
                recorder.charge(id, EnergyCategory::RxRelay, *count as f64 * self.rx);
                *count = 0;
            }
        }
    }

    /// Notices fault transitions (dirty routes next round) and rotates
    /// the down flags.
    pub fn end_round(&mut self, _round: u64) {
        if self.faults_active && self.down_now != self.down_prev {
            self.routes_dirty = true;
        }
        std::mem::swap(&mut self.down_prev, &mut self.down_now);
    }

    /// Final report.
    pub fn finish(self) -> LossyReport {
        LossyReport {
            offered: self.offered,
            delivered: self.delivered,
            transmissions: self.transmissions,
            total_energy: Energy::from_joules(self.energy),
            dropped_fault: self.dropped_fault,
        }
    }
}

/// Runs `rounds` of minimum-energy gathering over lossy links,
/// deterministic in `seed`.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
) -> LossyReport {
    simulate_lossy_gathering_faulted(topology, config, rounds, seed, &FaultSchedule::empty())
}

/// [`simulate_lossy_gathering`] under an exogenous [`FaultSchedule`].
///
/// Fault semantics mirror the gather simulator's (one-round routing
/// lag, `dropped_fault` attribution) with one ARQ-specific twist: a
/// sender facing a fault-downed receiver or a downed link gets no ACK
/// on any attempt, so it burns its **entire retransmission budget**
/// before giving up. A downed receiver spends nothing (it is powered
/// off); a downed link charges both powered ends per attempt. Fault
/// handling consumes no random draws, and packets own their streams, so
/// every packet a fault does not touch sees channel draws identical to
/// the unfaulted run at the same seed. The empty schedule is bit-exact
/// with [`simulate_lossy_gathering`].
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
) -> LossyReport {
    simulate_lossy_gathering_faulted_with(topology, config, rounds, seed, faults, &mut NullRecorder)
}

/// [`simulate_lossy_gathering_faulted`] with a [`Recorder`] attached:
/// per-node `Tx`/`RxRelay` charges (ARQ attempt counts times the
/// per-attempt cost, committed once per round per node) and the packet
/// counters (`offered`, `delivered`, `dropped_fault`; channel losses
/// are the remainder). The un-instrumented entry points pass
/// [`NullRecorder`], which monomorphizes the hooks away.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted_with<R: Recorder>(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
    recorder: &mut R,
) -> LossyReport {
    let mut state = LossyState::new(topology, config, rounds, seed, faults);
    for round in 0..rounds {
        state.begin_round(round);
        state.send_all(round, recorder);
        state.end_round(round);
    }
    state.finish()
}

/// Reusable lossy-run session over one `(topology, config)` pair: the
/// route cache and its packed next-hop image persist across runs, so
/// every run after the first skips the Dijkstra build (the dominant
/// fixed cost at city scale) and measures marginal round work only.
/// Each run is bit-identical to the matching one-shot entry point.
pub struct LossySession<'a> {
    topology: &'a Topology,
    config: &'a LossyConfig,
    cache: RouteCache,
    packed: PackedRoutes,
}

impl<'a> LossySession<'a> {
    /// Creates a session; the first run performs the route build.
    pub fn new(topology: &'a Topology, config: &'a LossyConfig) -> Self {
        Self {
            topology,
            config,
            cache: RouteCache::new(topology.len()),
            packed: PackedRoutes::new(topology.len()),
        }
    }

    /// Runs `rounds` fault-free rounds from a fresh run state,
    /// recording nothing. Bit-identical to
    /// [`simulate_lossy_gathering`].
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
    pub fn run(&mut self, rounds: u64, seed: u64) -> LossyReport {
        self.run_faulted_with(rounds, seed, &FaultSchedule::empty(), &mut NullRecorder)
    }

    /// Runs `rounds` rounds under `faults` from a fresh run state,
    /// charging every event through `recorder`. Bit-identical to
    /// [`simulate_lossy_gathering_faulted_with`].
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
    pub fn run_faulted_with<R: Recorder>(
        &mut self,
        rounds: u64,
        seed: u64,
        faults: &FaultSchedule,
        recorder: &mut R,
    ) -> LossyReport {
        let mut state = LossyState::new(self.topology, self.config, rounds, seed, faults);
        // Adopt the session's warm cache and packed image;
        // `begin_round` no-ops both when the usable set still matches
        // what the cache was built over.
        state.cache = std::mem::replace(&mut self.cache, RouteCache::new(0));
        state.packed = std::mem::replace(&mut self.packed, PackedRoutes::new(0));
        for round in 0..rounds {
            state.begin_round(round);
            state.send_all(round, recorder);
            state.end_round(round);
        }
        self.cache = std::mem::replace(&mut state.cache, RouteCache::new(0));
        self.packed = std::mem::replace(&mut state.packed, PackedRoutes::new(0));
        state.finish()
    }
}

/// [`simulate_lossy_gathering`] with the standard instrumented
/// recorder: returns the report plus the energy ledger and packet
/// counters of the run.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_observed(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
) -> (LossyReport, LedgerRecorder) {
    simulate_lossy_gathering_faulted_observed(
        topology,
        config,
        rounds,
        seed,
        &FaultSchedule::empty(),
    )
}

/// [`simulate_lossy_gathering_faulted`] with the standard instrumented
/// recorder. See [`simulate_lossy_gathering_observed`].
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted_observed(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
) -> (LossyReport, LedgerRecorder) {
    let mut recorder = LedgerRecorder::with_nodes(topology.len());
    let report = simulate_lossy_gathering_faulted_with(
        topology,
        config,
        rounds,
        seed,
        faults,
        &mut recorder,
    );
    (report, recorder)
}

/// The retired sequential-stream lossy kernel, kept verbatim as a
/// pinned oracle: every ARQ attempt draws from **one** `StdRng` stream
/// in execution order, so a hop's retry count decides which values the
/// next hop sees. This is the kernel that produced every pre-migration
/// lossy baseline; its own frozen golden pins it, and it must never be
/// edited. New work uses [`simulate_lossy_gathering_faulted`], whose
/// per-packet counter streams make results order-independent.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_seqstream(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
) -> LossyReport {
    assert!(rounds > 0, "simulate at least one round");
    assert!(
        (0.0..=0.5).contains(&config.ber),
        "BER must lie in [0, 0.5]"
    );
    let n = topology.len();
    let sink = topology.sink();
    let p_hop = config.packet.delivery_probability(config.ber);
    let bits = config.packet.total_bits();
    let attempts = u64::from(config.arq.max_transmissions);
    let rx = config.radio.receive_energy(bits).as_joules();
    let faults_active = !faults.is_empty();
    let mut timeline = FaultTimeline::compile(faults, n);
    let mut rng = sim_rng(seed);
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut transmissions = 0u64;
    let mut dropped_fault = 0u64;
    let mut energy = 0.0f64;

    let mut down_now = vec![false; n];
    let mut down_prev = vec![false; n];
    let mut usable = vec![true; n];
    let mut cache = RouteCache::new(n);
    let mut routes_dirty = true;

    for round in 0..rounds {
        if faults_active {
            timeline.advance_to(round);
            for (id, down) in down_now.iter_mut().enumerate() {
                *down = id != sink.0 && timeline.node_down(id);
            }
        }
        if routes_dirty {
            for (id, flag) in usable.iter_mut().enumerate() {
                *flag = id == sink.0 || !down_prev[id];
            }
            cache.ensure(
                topology,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                bits,
                &usable,
            );
            routes_dirty = false;
        }

        for id in topology.sensor_ids() {
            if down_now[id.0] {
                continue;
            }
            if !cache.is_connected(id) {
                continue;
            }
            offered += 1;
            let mut from = id;
            let mut alive = true;
            let mut faulted = false;
            while alive && from != sink {
                let hop = cache
                    .next_hop(from)
                    .expect("connected route reaches the sink");
                let tx = cache.tx_cost(from);
                if hop != sink && down_now[hop.0] {
                    transmissions += attempts;
                    energy += attempts as f64 * tx;
                    faulted = true;
                    break;
                }
                if timeline.link_down(from.0, hop.0) {
                    transmissions += attempts;
                    energy += attempts as f64 * (tx + rx);
                    faulted = true;
                    break;
                }
                let mut hop_ok = false;
                for _attempt in 0..config.arq.max_transmissions {
                    transmissions += 1;
                    energy += tx;
                    energy += rx;
                    if bernoulli(&mut rng, p_hop) {
                        hop_ok = true;
                        break;
                    }
                }
                if !hop_ok {
                    alive = false;
                }
                from = hop;
            }
            if faulted {
                dropped_fault += 1;
            } else if alive {
                delivered += 1;
            }
        }
        if faults_active && down_now != down_prev {
            routes_dirty = true;
        }
        std::mem::swap(&mut down_prev, &mut down_now);
    }

    LossyReport {
        offered,
        delivered,
        transmissions,
        total_energy: Energy::from_joules(energy),
        dropped_fault,
    }
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{build_routes, route_to_sink};

    fn topo() -> Topology {
        Topology::grid(4, Length::from_meters(30.0))
    }

    #[test]
    fn perfect_channel_delivers_everything_without_retries() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.0;
        let report = simulate_lossy_gathering(&topo(), &config, 50, 1);
        assert_eq!(report.delivered, report.offered);
        assert!((report.tx_per_packet() - expected_hops(&topo(), &config)).abs() < 0.2);
    }

    #[test]
    fn per_bit_cost_is_none_when_nothing_gets_through() {
        let mut config = LossyConfig::bruised_channel();
        let report = simulate_lossy_gathering(&topo(), &config, 20, 7);
        let epb = report
            .energy_per_delivered_bit(&config.packet)
            .expect("bruised channel still delivers");
        let direct = report.total_energy.as_joules()
            / (config.packet.payload().as_bits() * report.delivered as f64);
        assert!((epb.as_joules_per_bit() - direct).abs() < 1e-18);

        // BER 0.5 with a single attempt: nothing survives a multi-bit
        // packet, so there is no per-bit cost to report.
        config.ber = 0.5;
        config.arq = StopAndWaitArq::new(1);
        let starved = simulate_lossy_gathering(&topo(), &config, 5, 7);
        assert_eq!(starved.delivered, 0);
        assert_eq!(starved.energy_per_delivered_bit(&config.packet), None);
    }

    /// Mean hops per packet on the routing tree (tx count lower bound).
    fn expected_hops(topology: &Topology, config: &LossyConfig) -> f64 {
        let table = build_routes(
            topology,
            RoutingStrategy::MinimumEnergy,
            &config.radio,
            config.max_hop,
        );
        let total: usize = topology
            .sensor_ids()
            .map(|id| route_to_sink(&table, topology, id).len())
            .sum();
        total as f64 / (topology.len() - 1) as f64
    }

    #[test]
    fn dirtier_channels_cost_more_and_deliver_less() {
        let mut clean = LossyConfig::bruised_channel();
        clean.ber = 1e-4;
        let mut dirty = LossyConfig::bruised_channel();
        dirty.ber = 1e-2;
        let a = simulate_lossy_gathering(&topo(), &clean, 100, 2);
        let b = simulate_lossy_gathering(&topo(), &dirty, 100, 2);
        assert!(a.delivery_ratio() > b.delivery_ratio());
        assert!(a.tx_per_packet() < b.tx_per_packet());
    }

    #[test]
    fn arq_buys_delivery_for_energy() {
        let mut no_retry = LossyConfig::bruised_channel();
        no_retry.ber = 5e-3;
        no_retry.arq = StopAndWaitArq::new(1);
        let mut retry = no_retry.clone();
        retry.arq = StopAndWaitArq::new(6);
        let a = simulate_lossy_gathering(&topo(), &no_retry, 200, 3);
        let b = simulate_lossy_gathering(&topo(), &retry, 200, 3);
        assert!(b.delivery_ratio() > a.delivery_ratio() + 0.05);
        assert!(b.total_energy > a.total_energy);
    }

    #[test]
    fn deterministic_in_seed() {
        let config = LossyConfig::bruised_channel();
        let a = simulate_lossy_gathering(&topo(), &config, 100, 9);
        let b = simulate_lossy_gathering(&topo(), &config, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn delivery_matches_analytic_prediction_on_single_hop() {
        // A star where every leaf is one hop from the sink: measured
        // delivery must match ARQ theory within Monte-Carlo noise.
        let star = Topology::star(8, Length::from_meters(20.0));
        let mut config = LossyConfig::bruised_channel();
        config.ber = 3e-3;
        let p_hop = config.packet.delivery_probability(config.ber);
        let predicted = config.arq.delivery_probability(p_hop);
        let report = simulate_lossy_gathering(&star, &config, 2000, 4);
        let measured = report.delivery_ratio();
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn star_outcomes_match_the_per_packet_counter_prediction() {
        // The addressability contract, pinned end to end: on a
        // single-hop star, packet (round, leaf) delivers iff one of its
        // first `max_transmissions` draws from `packet_rng(seed, round,
        // leaf)` clears p_hop. Replaying that rule outside the kernel
        // must reproduce the report exactly — the kernel consumes no
        // other randomness and no other packet's draws.
        let star = Topology::star(6, Length::from_meters(20.0));
        let mut config = LossyConfig::bruised_channel();
        config.ber = 2e-3;
        let (rounds, seed) = (300u64, 13u64);
        let p_hop = config.packet.delivery_probability(config.ber);
        let report = simulate_lossy_gathering(&star, &config, rounds, seed);

        let mut predicted_delivered = 0u64;
        let mut predicted_tx = 0u64;
        for round in 0..rounds {
            for leaf in star.sensor_ids() {
                let mut rng = packet_rng(seed, round, leaf.0 as u64);
                for _ in 0..config.arq.max_transmissions {
                    predicted_tx += 1;
                    if rng.random::<f64>() < p_hop {
                        predicted_delivered += 1;
                        break;
                    }
                }
            }
        }
        assert_eq!(report.delivered, predicted_delivered);
        assert_eq!(report.transmissions, predicted_tx);
    }

    #[test]
    fn observed_run_carries_the_report_energy_in_the_ledger() {
        let config = LossyConfig::bruised_channel();
        let (report, obs) = simulate_lossy_gathering_observed(&topo(), &config, 60, 5);
        // Charges are committed per (node, round, category) while the
        // report folds per packet, so the totals agree to rounding, not
        // bitwise.
        let ledger_total = obs.ledger.total().as_joules();
        let report_total = report.total_energy.as_joules();
        assert!(
            (ledger_total - report_total).abs() <= 1e-9 * report_total.abs(),
            "ledger {ledger_total} vs report {report_total}"
        );
        assert_eq!(obs.packets.offered, report.offered);
        assert_eq!(obs.packets.delivered, report.delivered);
        assert_eq!(obs.packets.dropped_fault, report.dropped_fault);
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn absurd_ber_rejected() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.9;
        let _ = simulate_lossy_gathering(&topo(), &config, 1, 0);
    }

    mod faulted {
        use super::*;
        use crate::topology::Position;
        use ami_sim::fault::{FaultEvent, FaultModel};

        #[test]
        fn empty_schedule_is_bit_exact_with_the_unfaulted_path() {
            let config = LossyConfig::bruised_channel();
            let plain = simulate_lossy_gathering(&topo(), &config, 100, 11);
            let faulted = simulate_lossy_gathering_faulted(
                &topo(),
                &config,
                100,
                11,
                &FaultSchedule::empty(),
            );
            assert_eq!(plain, faulted);
            assert_eq!(faulted.dropped_fault, 0);
        }

        #[test]
        fn faulted_runs_are_deterministic_in_seed() {
            let config = LossyConfig::bruised_channel();
            let model = FaultModel {
                death_rate: 0.2,
                outage_rate: 0.3,
                outage_rounds: 10,
                link_outage_rate: 0.2,
                link_outage_rounds: 8,
                fade_rate: 0.0,
                fade_factor: 1.0,
            };
            let faults = model.schedule(5, topo().len(), 80);
            let a = simulate_lossy_gathering_faulted(&topo(), &config, 80, 9, &faults);
            let b = simulate_lossy_gathering_faulted(&topo(), &config, 80, 9, &faults);
            assert_eq!(a, b);
            assert!(a.dropped_fault > 0, "the fault mix must cost packets");
            assert!(a.delivered > 0, "the network must degrade, not die");
        }

        #[test]
        fn untouched_packets_see_identical_draws_under_faults() {
            // Per-packet streams make fault alignment *exact*: on a
            // star, downing leaf 1's link must leave every other leaf's
            // outcome untouched, so delivered counts differ only by
            // leaf 1's own (unfaulted) deliveries during the outage
            // window — replayed here from its stream.
            let star = Topology::star(5, Length::from_meters(20.0));
            let mut config = LossyConfig::bruised_channel();
            config.ber = 5e-3;
            let (rounds, seed) = (200u64, 17u64);
            let p_hop = config.packet.delivery_probability(config.ber);
            let (from, until) = (40u64, 120u64);
            let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
                a: 1,
                b: 0,
                from,
                until,
            }]);
            let plain = simulate_lossy_gathering(&star, &config, rounds, seed);
            let faulted = simulate_lossy_gathering_faulted(&star, &config, rounds, seed, &faults);
            let mut leaf1_lost = 0u64;
            for round in from..until {
                let mut rng = packet_rng(seed, round, 1);
                for _ in 0..config.arq.max_transmissions {
                    if rng.random::<f64>() < p_hop {
                        leaf1_lost += 1;
                        break;
                    }
                }
            }
            assert_eq!(faulted.offered, plain.offered);
            assert_eq!(faulted.dropped_fault, until - from);
            assert_eq!(faulted.delivered, plain.delivered - leaf1_lost);
        }

        #[test]
        fn downed_relay_burns_the_arq_budget_then_routing_re_resolves() {
            // Sink—1—2 line on a perfect channel: kill node 1 at round 1.
            // Node 2's round-1 packet spends all 4 attempts into the dead
            // relay (tx only, no listener) and drops as a fault; from
            // round 2 routing has noticed and node 2 has no route (not
            // even offered, matching the unfaulted disconnection rule).
            let line = Topology::new(vec![
                Position::new(0.0, 0.0),
                Position::new(40.0, 0.0),
                Position::new(80.0, 0.0),
            ]);
            let mut config = LossyConfig::bruised_channel();
            config.ber = 0.0;
            let faults = FaultSchedule::new(vec![FaultEvent::NodeDeath { node: 1, round: 1 }]);
            let report = simulate_lossy_gathering_faulted(&line, &config, 4, 3, &faults);
            // Round 0: both deliver (3 hops total). Round 1: node 2
            // faults out. Rounds 2–3: node 2 is routeless, nothing sent.
            assert_eq!(report.offered, 3);
            assert_eq!(report.delivered, 2);
            assert_eq!(report.dropped_fault, 1);
            let attempts = u64::from(config.arq.max_transmissions);
            assert_eq!(report.transmissions, 3 + attempts);
        }

        #[test]
        fn link_outage_charges_both_ends_per_attempt() {
            let pair = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let mut config = LossyConfig::bruised_channel();
            config.ber = 0.0;
            let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
                a: 1,
                b: 0,
                from: 1,
                until: 2,
            }]);
            let report = simulate_lossy_gathering_faulted(&pair, &config, 3, 3, &faults);
            assert_eq!(report.offered, 3);
            assert_eq!(report.delivered, 2);
            assert_eq!(report.dropped_fault, 1);
            let bits = config.packet.total_bits();
            let tx = config
                .radio
                .transmit_energy(bits, Length::from_meters(20.0))
                .as_joules();
            let rx = config.radio.receive_energy(bits).as_joules();
            // Two clean single-attempt hops plus one full ARQ budget of
            // tx+rx attempts into the downed link.
            let attempts = config.arq.max_transmissions as f64;
            let expect = (2.0 + attempts) * (tx + rx);
            assert!((report.total_energy.as_joules() - expect).abs() < 1e-15);
            assert_eq!(
                report.transmissions,
                2 + u64::from(config.arq.max_transmissions)
            );
        }

        #[test]
        fn faulted_observed_ledger_attributes_both_ends_of_a_downed_link() {
            let pair = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let mut config = LossyConfig::bruised_channel();
            config.ber = 0.0;
            let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
                a: 1,
                b: 0,
                from: 1,
                until: 2,
            }]);
            let (report, obs) =
                simulate_lossy_gathering_faulted_observed(&pair, &config, 3, 3, &faults);
            assert_eq!(report.dropped_fault, 1);
            assert_eq!(obs.packets.dropped_fault, 1);
            let bits = config.packet.total_bits();
            let tx = config
                .radio
                .transmit_energy(bits, Length::from_meters(20.0))
                .as_joules();
            let rx = config.radio.receive_energy(bits).as_joules();
            let attempts = config.arq.max_transmissions as f64;
            // Sender: one clean attempt per delivered round plus the
            // full budget into the outage. Sink: a listen for each.
            let want_tx = (2.0 + attempts) * tx;
            let want_rx = (2.0 + attempts) * rx;
            let got_tx = obs.ledger.category_total(EnergyCategory::Tx).as_joules();
            let got_rx = obs
                .ledger
                .category_total(EnergyCategory::RxRelay)
                .as_joules();
            assert!((got_tx - want_tx).abs() < 1e-15, "{got_tx} vs {want_tx}");
            assert!((got_rx - want_rx).abs() < 1e-15, "{got_rx} vs {want_rx}");
        }
    }

    mod seqstream {
        use super::*;
        use ami_sim::fault::FaultSpec;

        /// The oracle's own frozen golden, captured on the F13 fixture
        /// (5×5 grid at 30 m, bruised channel, 300 rounds, seed 2003)
        /// at the moment the counter kernel replaced it. These are the
        /// exact numbers the pre-migration F13 goldens carried — the
        /// faulted row *is* the retired
        /// `golden/f13_faulted_manifest.json` — so any edit to the
        /// retired kernel (or to `sim_rng`'s stream) trips this test.
        #[test]
        fn seqstream_oracle_matches_its_frozen_golden() {
            let topo = Topology::grid(5, Length::from_meters(30.0));
            let config = LossyConfig::bruised_channel();
            let plain = simulate_lossy_gathering_seqstream(
                &topo,
                &config,
                300,
                2003,
                &FaultSchedule::empty(),
            );
            assert_eq!(
                (
                    plain.offered,
                    plain.delivered,
                    plain.transmissions,
                    plain.dropped_fault
                ),
                (7200, 7150, 26483, 0)
            );
            assert_eq!(
                plain.total_energy.as_joules().to_bits(),
                0x3ff7_4335_08f6_45aa,
                "plain energy drifted from 1.453907999999823 J"
            );

            let spec = FaultSpec::parse("death=0.12,outage=0.2:40,link=0.15:30")
                .expect("the F13 fault spec parses");
            let faults = spec.schedule_for(2003, topo.len(), 300);
            let faulted = simulate_lossy_gathering_seqstream(&topo, &config, 300, 2003, &faults);
            assert_eq!(
                (
                    faulted.offered,
                    faulted.delivered,
                    faulted.transmissions,
                    faulted.dropped_fault
                ),
                (6842, 6787, 25003, 6)
            );
            assert_eq!(
                faulted.total_energy.as_joules().to_bits(),
                0x3ff6_2e20_a4bb_339f,
                "faulted energy drifted from 1.3862615999998764 J"
            );
        }

        #[test]
        fn seqstream_oracle_is_deterministic_and_diverges_from_counter_kernel() {
            let config = LossyConfig::bruised_channel();
            let a = simulate_lossy_gathering_seqstream(
                &topo(),
                &config,
                100,
                9,
                &FaultSchedule::empty(),
            );
            let b = simulate_lossy_gathering_seqstream(
                &topo(),
                &config,
                100,
                9,
                &FaultSchedule::empty(),
            );
            assert_eq!(a, b);
            // The two kernels draw different streams by design; the
            // statistics agree but the exact trajectories must not —
            // if they did, the oracle would not be pinning anything.
            let counter = simulate_lossy_gathering(&topo(), &config, 100, 9);
            assert_eq!(counter.offered, a.offered);
            assert_ne!(
                (a.delivered, a.transmissions),
                (counter.delivered, counter.transmissions)
            );
        }
    }
}
