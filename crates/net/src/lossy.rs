//! Lossy-link gathering: the round-based simulator with per-hop packet
//! loss and stop-and-wait retransmission.
//!
//! `gather` assumes perfect links; real ambient channels drop packets.
//! This module folds the `ami-radio` reliability stack into the network
//! simulation: every hop succeeds with the packet's delivery probability
//! at the configured channel BER, failures trigger ARQ retransmissions
//! (bounded), and all the retry energy is charged to the transmitting and
//! receiving nodes. Deterministic in a seed.
//!
//! [`simulate_lossy_gathering_faulted`] layers an
//! [`ami_sim::fault::FaultSchedule`] on top: fault-downed relays and
//! downed links waste the sender's full ARQ budget and count the packet
//! as `dropped_fault`. Fault handling consumes **no randomness**, so a
//! faulted run's channel draws stay aligned with the unfaulted run at
//! the same seed until the first fault actually bites.
//!
//! # Why there is no region-parallel lossy kernel
//!
//! The [`pdes`](crate::pdes) engine parallelizes the perfect-link
//! kernel because its per-round work is *budget-free to predict*: a
//! packet's fate depends only on round-constant state, so regions can
//! execute independently and replay charges in a fixed order. Lossy
//! gathering breaks that precondition on purpose — every ARQ attempt
//! draws from **one sequential RNG stream**, and a hop's number of
//! attempts decides how many draws the *next* hop sees. Reordering
//! sources across regions would reorder draws and change results, and
//! per-region streams would change the published seeded baselines.
//! Determinism-in-a-seed outranks intra-run speedup here; lossy runs
//! parallelize across replications ([`crate::replicate`]) instead.

use crate::routing::{RouteCache, RoutingStrategy};
use crate::topology::Topology;
use ami_radio::{Packet, RadioEnergyModel, StopAndWaitArq};
use ami_sim::fault::{FaultSchedule, FaultTimeline};
use ami_sim::sim_rng;
use ami_units::{Energy, EnergyPerBit, Length};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a lossy gathering network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyConfig {
    /// Radio energy model.
    pub radio: RadioEnergyModel,
    /// Packet format.
    pub packet: Packet,
    /// Raw channel bit error rate applied to every hop.
    pub ber: f64,
    /// Retransmission budget per hop.
    pub arq: StopAndWaitArq,
    /// Maximum hop length.
    pub max_hop: Length,
}

impl LossyConfig {
    /// Sensor defaults on a bruised channel: BER 1e-3, 4-attempt ARQ.
    pub fn bruised_channel() -> Self {
        Self {
            radio: RadioEnergyModel::short_range_2003(),
            packet: Packet::sensor_report(),
            ber: 1e-3,
            arq: StopAndWaitArq::new(4),
            max_hop: Length::from_meters(45.0),
        }
    }
}

/// Outcome of a lossy gathering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyReport {
    /// Packets offered (one per sensor per round).
    pub offered: u64,
    /// Packets that reached the sink end-to-end.
    pub delivered: u64,
    /// Total transmissions including retries.
    pub transmissions: u64,
    /// Total radio energy spent.
    pub total_energy: Energy,
    /// Packets lost to an injected fault (downed relay or link) rather
    /// than to channel noise. Always zero on unfaulted runs.
    pub dropped_fault: u64,
}

impl LossyReport {
    /// End-to-end delivery ratio.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Mean transmissions per offered packet (ARQ overhead measure).
    pub fn tx_per_packet(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.offered as f64
        }
    }

    /// Mean energy cost per delivered payload bit for `packet`-format
    /// reports, or `None` when nothing got through (heavy loss with a
    /// small ARQ budget can starve the sink entirely).
    pub fn energy_per_delivered_bit(&self, packet: &Packet) -> Option<EnergyPerBit> {
        let bits = packet.payload().as_bits() * self.delivered as f64;
        if bits > 0.0 {
            Some(EnergyPerBit::new(self.total_energy.as_joules() / bits))
        } else {
            None
        }
    }
}

/// Runs `rounds` of minimum-energy gathering over lossy links,
/// deterministic in `seed`.
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
) -> LossyReport {
    simulate_lossy_gathering_faulted(topology, config, rounds, seed, &FaultSchedule::empty())
}

/// [`simulate_lossy_gathering`] under an exogenous [`FaultSchedule`].
///
/// Fault semantics mirror the gather simulator's (one-round routing
/// lag, `dropped_fault` attribution) with one ARQ-specific twist: a
/// sender facing a fault-downed receiver or a downed link gets no ACK
/// on any attempt, so it burns its **entire retransmission budget**
/// before giving up. A downed receiver spends nothing (it is powered
/// off); a downed link charges both powered ends per attempt. Fault
/// handling consumes no random draws, so the channel stream stays
/// aligned with the unfaulted run at the same seed until a fault bites.
/// The empty schedule is bit-exact with [`simulate_lossy_gathering`].
///
/// # Panics
///
/// Panics if `rounds` is zero or the BER is outside `[0, 0.5]`.
pub fn simulate_lossy_gathering_faulted(
    topology: &Topology,
    config: &LossyConfig,
    rounds: u64,
    seed: u64,
    faults: &FaultSchedule,
) -> LossyReport {
    assert!(rounds > 0, "simulate at least one round");
    assert!(
        (0.0..=0.5).contains(&config.ber),
        "BER must lie in [0, 0.5]"
    );
    let n = topology.len();
    let sink = topology.sink();
    let p_hop = config.packet.delivery_probability(config.ber);
    let bits = config.packet.total_bits();
    let attempts = u64::from(config.arq.max_transmissions);
    // Receive energy is distance-independent: one value serves every hop.
    let rx = config.radio.receive_energy(bits).as_joules();
    let faults_active = !faults.is_empty();
    // Compiled down/link windows: O(1) per query instead of an event
    // scan, cursor advanced once per round.
    let mut timeline = FaultTimeline::compile(faults, n);
    let mut rng = sim_rng(seed);
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut transmissions = 0u64;
    let mut dropped_fault = 0u64;
    let mut energy = 0.0f64;

    // Scratch buffers reused across rounds — the round loop allocates
    // nothing, and on rounds with no fault transition the previous
    // usable set (and route table) is reused as-is.
    let mut down_now = vec![false; n];
    let mut down_prev = vec![false; n];
    let mut usable = vec![true; n];
    let mut cache = RouteCache::new(n);
    let mut routes_dirty = true;

    for round in 0..rounds {
        if faults_active {
            timeline.advance_to(round);
            for (id, down) in down_now.iter_mut().enumerate() {
                *down = id != sink.0 && timeline.node_down(id);
            }
        }
        // Routing sees fault state with a one-round lag, as in `gather`
        // (no budget deaths here — links are lossy but energy is not
        // finite in this model).
        if routes_dirty {
            for (id, flag) in usable.iter_mut().enumerate() {
                *flag = id == sink.0 || !down_prev[id];
            }
            cache.ensure(
                topology,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                bits,
                &usable,
            );
            routes_dirty = false;
        }

        for id in topology.sensor_ids() {
            if down_now[id.0] {
                continue; // powered off: offers nothing
            }
            if !cache.is_connected(id) {
                continue;
            }
            offered += 1;
            let mut from = id;
            let mut alive = true;
            let mut faulted = false;
            while alive && from != sink {
                let hop = cache
                    .next_hop(from)
                    .expect("connected route reaches the sink");
                let tx = cache.tx_cost(from);
                if hop != sink && down_now[hop.0] {
                    // Powered-off receiver: no ACK ever comes, so the
                    // sender exhausts its ARQ budget; nothing listens on
                    // the far end. No random draws — the channel stream
                    // stays aligned with the unfaulted run.
                    transmissions += attempts;
                    energy += attempts as f64 * tx;
                    faulted = true;
                    break;
                }
                if timeline.link_down(from.0, hop.0) {
                    // Downed link between two powered nodes: every
                    // attempt costs the sender a transmit and the
                    // receiver a listen, but nothing crosses.
                    transmissions += attempts;
                    energy += attempts as f64 * (tx + rx);
                    faulted = true;
                    break;
                }
                let mut hop_ok = false;
                for _attempt in 0..config.arq.max_transmissions {
                    transmissions += 1;
                    energy += tx;
                    // The receiver listens whether or not the packet
                    // survives (it cannot know in advance).
                    energy += rx;
                    if bernoulli(&mut rng, p_hop) {
                        hop_ok = true;
                        break;
                    }
                }
                if !hop_ok {
                    alive = false;
                }
                from = hop;
            }
            if faulted {
                dropped_fault += 1;
            } else if alive {
                delivered += 1;
            }
        }
        if faults_active && down_now != down_prev {
            routes_dirty = true;
        }
        std::mem::swap(&mut down_prev, &mut down_now);
    }

    LossyReport {
        offered,
        delivered,
        transmissions,
        total_energy: Energy::from_joules(energy),
        dropped_fault,
    }
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{build_routes, route_to_sink};

    fn topo() -> Topology {
        Topology::grid(4, Length::from_meters(30.0))
    }

    #[test]
    fn perfect_channel_delivers_everything_without_retries() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.0;
        let report = simulate_lossy_gathering(&topo(), &config, 50, 1);
        assert_eq!(report.delivered, report.offered);
        assert!((report.tx_per_packet() - expected_hops(&topo(), &config)).abs() < 0.2);
    }

    #[test]
    fn per_bit_cost_is_none_when_nothing_gets_through() {
        let mut config = LossyConfig::bruised_channel();
        let report = simulate_lossy_gathering(&topo(), &config, 20, 7);
        let epb = report
            .energy_per_delivered_bit(&config.packet)
            .expect("bruised channel still delivers");
        let direct = report.total_energy.as_joules()
            / (config.packet.payload().as_bits() * report.delivered as f64);
        assert!((epb.as_joules_per_bit() - direct).abs() < 1e-18);

        // BER 0.5 with a single attempt: nothing survives a multi-bit
        // packet, so there is no per-bit cost to report.
        config.ber = 0.5;
        config.arq = StopAndWaitArq::new(1);
        let starved = simulate_lossy_gathering(&topo(), &config, 5, 7);
        assert_eq!(starved.delivered, 0);
        assert_eq!(starved.energy_per_delivered_bit(&config.packet), None);
    }

    /// Mean hops per packet on the routing tree (tx count lower bound).
    fn expected_hops(topology: &Topology, config: &LossyConfig) -> f64 {
        let table = build_routes(
            topology,
            RoutingStrategy::MinimumEnergy,
            &config.radio,
            config.max_hop,
        );
        let total: usize = topology
            .sensor_ids()
            .map(|id| route_to_sink(&table, topology, id).len())
            .sum();
        total as f64 / (topology.len() - 1) as f64
    }

    #[test]
    fn dirtier_channels_cost_more_and_deliver_less() {
        let mut clean = LossyConfig::bruised_channel();
        clean.ber = 1e-4;
        let mut dirty = LossyConfig::bruised_channel();
        dirty.ber = 1e-2;
        let a = simulate_lossy_gathering(&topo(), &clean, 100, 2);
        let b = simulate_lossy_gathering(&topo(), &dirty, 100, 2);
        assert!(a.delivery_ratio() > b.delivery_ratio());
        assert!(a.tx_per_packet() < b.tx_per_packet());
    }

    #[test]
    fn arq_buys_delivery_for_energy() {
        let mut no_retry = LossyConfig::bruised_channel();
        no_retry.ber = 5e-3;
        no_retry.arq = StopAndWaitArq::new(1);
        let mut retry = no_retry.clone();
        retry.arq = StopAndWaitArq::new(6);
        let a = simulate_lossy_gathering(&topo(), &no_retry, 200, 3);
        let b = simulate_lossy_gathering(&topo(), &retry, 200, 3);
        assert!(b.delivery_ratio() > a.delivery_ratio() + 0.05);
        assert!(b.total_energy > a.total_energy);
    }

    #[test]
    fn deterministic_in_seed() {
        let config = LossyConfig::bruised_channel();
        let a = simulate_lossy_gathering(&topo(), &config, 100, 9);
        let b = simulate_lossy_gathering(&topo(), &config, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn delivery_matches_analytic_prediction_on_single_hop() {
        // A star where every leaf is one hop from the sink: measured
        // delivery must match ARQ theory within Monte-Carlo noise.
        let star = Topology::star(8, Length::from_meters(20.0));
        let mut config = LossyConfig::bruised_channel();
        config.ber = 3e-3;
        let p_hop = config.packet.delivery_probability(config.ber);
        let predicted = config.arq.delivery_probability(p_hop);
        let report = simulate_lossy_gathering(&star, &config, 2000, 4);
        let measured = report.delivery_ratio();
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn absurd_ber_rejected() {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 0.9;
        let _ = simulate_lossy_gathering(&topo(), &config, 1, 0);
    }

    mod faulted {
        use super::*;
        use crate::topology::Position;
        use ami_sim::fault::{FaultEvent, FaultModel};

        #[test]
        fn empty_schedule_is_bit_exact_with_the_unfaulted_path() {
            let config = LossyConfig::bruised_channel();
            let plain = simulate_lossy_gathering(&topo(), &config, 100, 11);
            let faulted = simulate_lossy_gathering_faulted(
                &topo(),
                &config,
                100,
                11,
                &FaultSchedule::empty(),
            );
            assert_eq!(plain, faulted);
            assert_eq!(faulted.dropped_fault, 0);
        }

        #[test]
        fn faulted_runs_are_deterministic_in_seed() {
            let config = LossyConfig::bruised_channel();
            let model = FaultModel {
                death_rate: 0.2,
                outage_rate: 0.3,
                outage_rounds: 10,
                link_outage_rate: 0.2,
                link_outage_rounds: 8,
                fade_rate: 0.0,
                fade_factor: 1.0,
            };
            let faults = model.schedule(5, topo().len(), 80);
            let a = simulate_lossy_gathering_faulted(&topo(), &config, 80, 9, &faults);
            let b = simulate_lossy_gathering_faulted(&topo(), &config, 80, 9, &faults);
            assert_eq!(a, b);
            assert!(a.dropped_fault > 0, "the fault mix must cost packets");
            assert!(a.delivered > 0, "the network must degrade, not die");
        }

        #[test]
        fn downed_relay_burns_the_arq_budget_then_routing_re_resolves() {
            // Sink—1—2 line on a perfect channel: kill node 1 at round 1.
            // Node 2's round-1 packet spends all 4 attempts into the dead
            // relay (tx only, no listener) and drops as a fault; from
            // round 2 routing has noticed and node 2 has no route (not
            // even offered, matching the unfaulted disconnection rule).
            let line = Topology::new(vec![
                Position::new(0.0, 0.0),
                Position::new(40.0, 0.0),
                Position::new(80.0, 0.0),
            ]);
            let mut config = LossyConfig::bruised_channel();
            config.ber = 0.0;
            let faults = FaultSchedule::new(vec![FaultEvent::NodeDeath { node: 1, round: 1 }]);
            let report = simulate_lossy_gathering_faulted(&line, &config, 4, 3, &faults);
            // Round 0: both deliver (3 hops total). Round 1: node 2
            // faults out. Rounds 2–3: node 2 is routeless, nothing sent.
            assert_eq!(report.offered, 3);
            assert_eq!(report.delivered, 2);
            assert_eq!(report.dropped_fault, 1);
            let attempts = u64::from(config.arq.max_transmissions);
            assert_eq!(report.transmissions, 3 + attempts);
        }

        #[test]
        fn link_outage_charges_both_ends_per_attempt() {
            let pair = Topology::new(vec![Position::new(0.0, 0.0), Position::new(20.0, 0.0)]);
            let mut config = LossyConfig::bruised_channel();
            config.ber = 0.0;
            let faults = FaultSchedule::new(vec![FaultEvent::LinkOutage {
                a: 1,
                b: 0,
                from: 1,
                until: 2,
            }]);
            let report = simulate_lossy_gathering_faulted(&pair, &config, 3, 3, &faults);
            assert_eq!(report.offered, 3);
            assert_eq!(report.delivered, 2);
            assert_eq!(report.dropped_fault, 1);
            let bits = config.packet.total_bits();
            let tx = config
                .radio
                .transmit_energy(bits, Length::from_meters(20.0))
                .as_joules();
            let rx = config.radio.receive_energy(bits).as_joules();
            // Two clean single-attempt hops plus one full ARQ budget of
            // tx+rx attempts into the downed link.
            let attempts = config.arq.max_transmissions as f64;
            let expect = (2.0 + attempts) * (tx + rx);
            assert!((report.total_energy.as_joules() - expect).abs() < 1e-15);
            assert_eq!(
                report.transmissions,
                2 + u64::from(config.arq.max_transmissions)
            );
        }
    }
}
