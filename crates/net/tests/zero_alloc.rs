//! Proof that the healthy round loops are allocation-free: a counting
//! global allocator measures whole simulations at two very different
//! round counts — if any allocation happened per round, the counts
//! would differ. (This binary holds exactly one test so no concurrent
//! *test* pollutes the counter; the libtest harness itself still owns a
//! waiting thread that occasionally allocates mid-window, which is why
//! each workload is measured as a minimum over several attempts — see
//! [`steady_allocations`].)

use ami_net::{
    simulate_gathering, simulate_lossy_gathering, GatherSession, LossyConfig, LossySession,
    NetworkConfig, RoutingStrategy, Topology,
};
use ami_units::Length;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `work` over `attempts` runs.
///
/// The simulation's own allocations are deterministic, but the global
/// counter also sees the libtest harness's waiting thread, which
/// allocates a couple of times at unpredictable moments. That noise is
/// strictly additive — a concurrent thread can only inflate a window,
/// never shrink it — so the minimum over a few attempts is the true
/// per-run count, and the equality assertions below stay *exact*.
fn steady_allocations(attempts: usize, mut work: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            work();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one attempt")
}

#[test]
fn healthy_round_loops_allocate_nothing_per_round() {
    let topo = Topology::random(80, Length::from_meters(220.0), 17);
    let config = NetworkConfig::sensor_default();
    let lossy = LossyConfig::bruised_channel();

    // Warm the topology's CSR cache so every measured run starts from
    // the same state (the cache builds once per topology, not per run).
    let _ = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 1);
    let _ = simulate_lossy_gathering(&topo, &lossy, 1, 3);

    // Setup and teardown allocate (budgets, scratch buffers, the one
    // route build, the report); the rounds themselves must not, so a
    // 100x longer run costs exactly the same number of allocations.
    let gather_short = steady_allocations(5, || {
        let _ = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 10);
    });
    let gather_long = steady_allocations(5, || {
        let _ = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 1000);
    });
    assert_eq!(
        gather_short, gather_long,
        "gather round loop allocated ({gather_short} vs {gather_long} allocations)"
    );
    assert!(gather_short > 0, "the counter must actually be counting");

    let lossy_short = steady_allocations(5, || {
        let _ = simulate_lossy_gathering(&topo, &lossy, 10, 3);
    });
    let lossy_long = steady_allocations(5, || {
        let _ = simulate_lossy_gathering(&topo, &lossy, 1000, 3);
    });
    assert_eq!(
        lossy_short, lossy_long,
        "lossy round loop allocated ({lossy_short} vs {lossy_long} allocations)"
    );

    // Session runs: the route cache, packed next-hop image and the
    // aggregation scratch (tally arrays, finals, the memoized value
    // stream) persist across runs, so a warm rerun allocates only the
    // fresh per-run state — flat in the round count and strictly less
    // than a one-shot run, which rebuilds routes and scratch.
    let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &config);
    let _ = session.run(10);
    let session_short = steady_allocations(5, || {
        let _ = session.run(10);
    });
    let session_long = steady_allocations(5, || {
        let _ = session.run(1000);
    });
    assert_eq!(
        session_short, session_long,
        "gather session rounds allocated ({session_short} vs {session_long} allocations)"
    );
    assert!(
        session_short < gather_short,
        "session reuse must beat the one-shot path ({session_short} vs {gather_short})"
    );

    let mut lossy_session = LossySession::new(&topo, &lossy);
    let _ = lossy_session.run(10, 3);
    let lossy_session_short = steady_allocations(5, || {
        let _ = lossy_session.run(10, 3);
    });
    let lossy_session_long = steady_allocations(5, || {
        let _ = lossy_session.run(1000, 3);
    });
    assert_eq!(
        lossy_session_short, lossy_session_long,
        "lossy session rounds allocated ({lossy_session_short} vs {lossy_session_long})"
    );
    assert!(
        lossy_session_short < lossy_short,
        "lossy session reuse must beat the one-shot path \
         ({lossy_session_short} vs {lossy_short})"
    );
}
