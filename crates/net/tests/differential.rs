//! The differential-oracle layer pinning the city-scale fast paths to
//! their retired reference implementations:
//!
//! * spatial-grid CSR construction ≡ the all-pairs scan
//!   (`CsrAdjacency::build_scan`),
//! * heap Dijkstra ≡ the O(N²) linear-scan Dijkstra,
//! * masked routing ≡ the compact-subtopology rebuild,
//! * incremental route repair ≡ full rebuild per transition —
//!   tables, connectivity, transmit costs, whole-simulation reports,
//!   energy ledgers and rendered manifests, across random topologies ×
//!   random fault schedules, with failures delta-debugged down to a
//!   1-minimal schedule before reporting,
//! * **region-parallel rounds ≡ the serial kernel** — the conservative
//!   PDES engine (`ami_net::pdes`) at 1, 2 and 8 worker threads must
//!   reproduce the serial run's report, ledger, counter tree, rendered
//!   manifest *and* route-cache build/repair accounting, across random
//!   fault schedules with energy deaths provoked mid-run (the rollback
//!   path), again with ddmin minimization on failure,
//! * **region-parallel lossy rounds ≡ the serial counter-RNG kernel** —
//!   the rollback-free lossy engine at 1, 2 and 8 threads must
//!   reproduce the serial ARQ run's report, ledger and rendered
//!   manifest across random fault schedules (the per-packet counter
//!   streams are what make this possible at all; the retired
//!   sequential-stream kernel is pinned separately by its frozen
//!   golden in `lossy.rs`).
//!
//! The `_par` fixtures here sit far below the production
//! nodes-per-worker floor, so every parallel run force-engages the
//! region engine via `set_par_min_nodes_per_worker(Some(0))` — without
//! it the fallback would reduce these tests to serial ≡ serial.
//!
//! Everything here asserts *bit* equality (ids and float bits), not
//! approximate equality: the optimizations are only admissible because
//! they change nothing.

mod common;

use ami_net::routing::{
    reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
    set_route_repair_enabled, RouteCache,
};
use ami_net::{
    build_routes, build_routes_over, set_par_min_nodes_per_worker, simulate_gathering_faulted,
    simulate_gathering_faulted_observed, simulate_gathering_faulted_observed_par,
    simulate_lossy_gathering_faulted_observed, simulate_lossy_gathering_faulted_observed_par,
    CsrAdjacency, LossyConfig, LossyReport, NetworkConfig, NetworkReport, NodeId, RoutingStrategy,
    Topology,
};
use ami_radio::RadioEnergyModel;
use ami_sim::fault::{FaultSchedule, FaultSpec};
use ami_sim::obs::{LedgerRecorder, RunManifest};
use ami_units::{Energy, Length};
use common::oracle::{dijkstra_reference_scan, rebuild_over_usable};
use common::schedule::{fault_schedule, minimize_failing_schedule};
use proptest::prelude::*;

fn radio() -> RadioEnergyModel {
    RadioEnergyModel::short_range_2003()
}

/// Restores the thread-local repair toggle on drop, so a failing
/// assertion cannot leak oracle mode into later tests on the thread.
struct RepairMode(bool);

impl RepairMode {
    fn set(enabled: bool) -> Self {
        Self(set_route_repair_enabled(enabled))
    }
}

impl Drop for RepairMode {
    fn drop(&mut self) {
        set_route_repair_enabled(self.0);
    }
}

#[test]
fn grid_csr_build_matches_the_scan_oracle_bitwise() {
    // Random fields, an exact grid (equidistant ties), a degenerate
    // single-cell layout (all nodes coincident) — at tiny, typical and
    // effectively-unbounded ranges. `PartialEq` on `CsrAdjacency`
    // compares offsets, targets and raw distance floats.
    let mut layouts: Vec<Topology> = (0..6u64)
        .map(|seed| Topology::random(120, Length::from_meters(400.0), seed))
        .collect();
    layouts.push(Topology::grid(9, Length::from_meters(25.0)));
    layouts.push(Topology::new(vec![ami_net::Position::new(3.0, 4.0); 40]));
    for (k, topo) in layouts.iter().enumerate() {
        let positions: Vec<ami_net::Position> = topo.ids().map(|id| topo.position(id)).collect();
        for range_m in [0.5, 8.0, 25.0, 45.0, 120.0, 1e6] {
            let range = Length::from_meters(range_m);
            let grid = CsrAdjacency::build(&positions, range);
            let scan = CsrAdjacency::build_scan(&positions, range);
            assert_eq!(grid, scan, "layout {k} range {range_m}");
        }
    }
}

#[test]
fn heap_dijkstra_matches_the_reference_scan_exactly() {
    for seed in 0..20u64 {
        let topo = Topology::random(60, Length::from_meters(160.0), seed);
        for range_m in [30.0, 45.0, 70.0] {
            let range = Length::from_meters(range_m);
            let fast = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio(), range);
            let slow = dijkstra_reference_scan(&topo, &radio(), range);
            assert_eq!(fast, slow, "seed {seed} range {range_m}");
        }
    }
}

#[test]
fn masked_routing_matches_the_compact_rebuild_exactly() {
    // The id-order-preserving map between the compact topology and the
    // masked full topology must make the two approaches agree
    // bit-for-bit, whatever the usable mask.
    let config = NetworkConfig::sensor_default();
    for seed in 0..10u64 {
        let topo = Topology::random(40, Length::from_meters(130.0), seed);
        // A deterministic, seed-varied mask (sink always usable).
        let mut usable: Vec<bool> = (0..topo.len())
            .map(|id| id == 0 || !(id as u64).wrapping_mul(seed + 3).is_multiple_of(5))
            .collect();
        usable[0] = true;
        for strategy in [
            RoutingStrategy::DirectToSink,
            RoutingStrategy::MinimumEnergy,
        ] {
            let compact =
                rebuild_over_usable(&topo, strategy, &config.radio, config.max_hop, &usable);
            let masked = build_routes_over(&topo, strategy, &config.radio, config.max_hop, &usable);
            assert_eq!(masked, compact, "seed {seed} strategy {strategy}");
        }
    }
}

/// Drives a repair-enabled cache and an oracle (full-rebuild) cache
/// through `schedule`'s usable-set sequence with the simulators'
/// one-round lag, returning the first divergence as a message. Also
/// cross-checks both caches against a from-scratch `build_routes_over`
/// every round, so a bug shared by both cache paths cannot hide.
fn first_cache_divergence(
    topo: &Topology,
    schedule: &FaultSchedule,
    rounds: u64,
) -> Option<String> {
    let n = topo.len();
    let config = NetworkConfig::sensor_default();
    let bits = config.packet.total_bits();
    let mut repaired = RouteCache::new(n);
    let mut oracle = RouteCache::new(n);
    let mut usable = vec![true; n];
    let mut down_prev = vec![false; n];
    for round in 0..rounds {
        for (id, flag) in usable.iter_mut().enumerate() {
            *flag = id == 0 || !down_prev[id];
        }
        {
            let _mode = RepairMode::set(true);
            repaired.ensure(
                topo,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                bits,
                &usable,
            );
        }
        {
            let _mode = RepairMode::set(false);
            oracle.ensure(
                topo,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                bits,
                &usable,
            );
        }
        let fresh = build_routes_over(
            topo,
            RoutingStrategy::MinimumEnergy,
            &config.radio,
            config.max_hop,
            &usable,
        );
        if oracle.table() != fresh.as_slice() {
            return Some(format!("round {round}: oracle cache ≠ fresh build"));
        }
        for id in 0..n {
            let node = NodeId(id);
            if repaired.next_hop(node) != oracle.next_hop(node) {
                return Some(format!(
                    "round {round} node {id}: repaired next hop {:?} ≠ oracle {:?}",
                    repaired.next_hop(node),
                    oracle.next_hop(node)
                ));
            }
            if repaired.is_connected(node) != oracle.is_connected(node) {
                return Some(format!("round {round} node {id}: connectivity diverged"));
            }
            if repaired.tx_cost(node).to_bits() != oracle.tx_cost(node).to_bits() {
                return Some(format!("round {round} node {id}: tx cost bits diverged"));
            }
        }
        for (id, down) in down_prev.iter_mut().enumerate() {
            *down = id != 0 && schedule.node_down(id, round);
        }
    }
    // Both caches saw the same transitions; repairs replace builds
    // one-for-one.
    if repaired.builds() + repaired.repairs() != oracle.builds() {
        return Some(format!(
            "transition accounting diverged: {} builds + {} repairs ≠ {} oracle builds",
            repaired.builds(),
            repaired.repairs(),
            oracle.builds()
        ));
    }
    None
}

proptest! {
    /// Tentpole contract, table level: incremental repair must be
    /// bit-indistinguishable from a full rebuild on every round of every
    /// schedule. Failures are minimized to a 1-minimal schedule before
    /// panicking.
    #[test]
    fn incremental_repair_matches_full_rebuild_tables(
        seed in 0u64..120,
        schedule in fault_schedule(32, 30, 12),
    ) {
        let topo = Topology::random(32, Length::from_meters(120.0), seed);
        if let Some(message) = first_cache_divergence(&topo, &schedule, 30) {
            let minimized = minimize_failing_schedule(schedule.events(), |s| {
                first_cache_divergence(&topo, s, 30).is_some()
            });
            panic!(
                "repair ≠ rebuild (seed {seed}): {message}\nminimized schedule: {:?}",
                minimized.events()
            );
        }
    }
}

/// One faulted, observed gathering run with repair forced on or off,
/// plus its rendered manifest — the three artifacts the tentpole
/// promises are identical across the two paths.
fn observed_run(
    topo: &Topology,
    config: &NetworkConfig,
    schedule: &FaultSchedule,
    rounds: u64,
    repair: bool,
) -> (NetworkReport, LedgerRecorder, String) {
    let _mode = RepairMode::set(repair);
    let (report, obs) = simulate_gathering_faulted_observed(
        topo,
        RoutingStrategy::MinimumEnergy,
        config,
        rounds,
        schedule,
    );
    let manifest = RunManifest::new("differential")
        .field("rounds", &rounds)
        .field("report", &report)
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
        .runner()
        .to_json();
    (report, obs, manifest)
}

proptest! {
    /// Tentpole contract, simulation level: a faulted gathering run —
    /// delivery counts, energy ledger, packet-counter tree, rendered
    /// manifest — is byte-identical whether transitions repair or
    /// rebuild. Endogenous budget deaths are provoked alongside the
    /// exogenous schedule so mixed usable-set diffs get exercised.
    #[test]
    fn faulted_gathering_is_identical_under_repair(
        seed in 0u64..40,
        schedule in fault_schedule(24, 25, 10),
    ) {
        let topo = Topology::random(24, Length::from_meters(110.0), seed);
        let mut config = NetworkConfig::sensor_default();
        // ~12 rounds of idle budget: energy deaths mid-run, on top of
        // the exogenous faults.
        config.node_energy = Energy::from_joules(0.015);
        let differs = |s: &FaultSchedule| {
            observed_run(&topo, &config, s, 25, true) != observed_run(&topo, &config, s, 25, false)
        };
        if differs(&schedule) {
            let minimized =
                minimize_failing_schedule(schedule.events(), |s| differs(s));
            let (report_r, _, manifest_r) = observed_run(&topo, &config, &minimized, 25, true);
            let (report_f, _, manifest_f) = observed_run(&topo, &config, &minimized, 25, false);
            panic!(
                "faulted run diverged under repair (seed {seed})\n\
                 minimized schedule: {:?}\nrepair report: {report_r:?}\n\
                 full report: {report_f:?}\nmanifests equal: {}",
                minimized.events(),
                manifest_r == manifest_f,
            );
        }
    }
}

/// One faulted, observed region-parallel gathering run at `threads`
/// workers, plus its rendered manifest and the route-cache transition
/// accounting it performed — everything the PDES contract pins.
fn pdes_observed_run(
    topo: &Topology,
    config: &NetworkConfig,
    schedule: &FaultSchedule,
    rounds: u64,
    threads: Option<usize>,
) -> (NetworkReport, LedgerRecorder, String, (u64, u64)) {
    reset_route_build_count();
    reset_route_repair_count();
    let (report, obs) = match threads {
        Some(threads) => simulate_gathering_faulted_observed_par(
            topo,
            RoutingStrategy::MinimumEnergy,
            config,
            rounds,
            schedule,
            threads,
        ),
        None => simulate_gathering_faulted_observed(
            topo,
            RoutingStrategy::MinimumEnergy,
            config,
            rounds,
            schedule,
        ),
    };
    let manifest = RunManifest::new("differential")
        .field("rounds", &rounds)
        .field("report", &report)
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
        .runner()
        .to_json();
    (
        report,
        obs,
        manifest,
        (route_build_count(), route_repair_count()),
    )
}

proptest! {
    /// PDES contract, simulation + manifest + table level: the
    /// region-parallel engine at 1, 2 and 8 threads is byte-identical
    /// to the serial kernel — report, ledger, rendered manifest and
    /// route build/repair counts — under random fault schedules with
    /// budget deaths provoked mid-run so the S1/S2 rollback path runs.
    #[test]
    fn region_parallel_rounds_match_the_serial_kernel(
        seed in 0u64..40,
        schedule in fault_schedule(24, 25, 10),
    ) {
        set_par_min_nodes_per_worker(Some(0));
        let topo = Topology::random(24, Length::from_meters(110.0), seed);
        let mut config = NetworkConfig::sensor_default();
        // ~12 rounds of idle budget: energy deaths mid-run force
        // optimistic rounds to roll back to the serial oracle.
        config.node_energy = Energy::from_joules(0.015);
        let diverges = |s: &FaultSchedule| {
            let serial = pdes_observed_run(&topo, &config, s, 25, None);
            [1usize, 2, 8]
                .iter()
                .any(|&t| pdes_observed_run(&topo, &config, s, 25, Some(t)) != serial)
        };
        if diverges(&schedule) {
            let minimized =
                minimize_failing_schedule(schedule.events(), |s| diverges(s));
            let serial = pdes_observed_run(&topo, &config, &minimized, 25, None);
            let par = pdes_observed_run(&topo, &config, &minimized, 25, Some(8));
            panic!(
                "region-parallel run diverged from serial (seed {seed})\n\
                 minimized schedule: {:?}\nserial report: {:?}\n\
                 parallel report: {:?}\nmanifests equal: {}\n\
                 serial (builds, repairs): {:?} parallel: {:?}",
                minimized.events(),
                serial.0,
                par.0,
                serial.2 == par.2,
                serial.3,
                par.3,
            );
        }
    }
}

#[test]
fn region_parallel_rounds_match_serial_at_n1600_under_the_bench_fault_mix() {
    // Acceptance-scale spot check: one n=1600 faulted run, serial vs
    // region-parallel at 1/2/8 threads, bit-identical reports and
    // identical transition accounting. (The n=100k differential lives
    // in `scale_smoke` behind `--ignored`.)
    set_par_min_nodes_per_worker(Some(0));
    let n = 1600;
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    let spec = FaultSpec::parse("death=0.1,outage=0.2:10,link=0.1:8").expect("bench fault mix");
    let config = NetworkConfig::sensor_default();
    let topo = Topology::random(n, side, 2003);
    let faults = spec.schedule_for(2003, n, 30);
    let serial = pdes_observed_run(&topo, &config, &faults, 30, None);
    assert!(
        serial.0.delivered_packets > 0,
        "the faulted network still delivers"
    );
    for threads in [1usize, 2, 8] {
        let par = pdes_observed_run(&topo, &config, &faults, 30, Some(threads));
        assert_eq!(par.0, serial.0, "report at {threads} threads");
        assert_eq!(par.1, serial.1, "ledger at {threads} threads");
        assert_eq!(par.2, serial.2, "manifest at {threads} threads");
        assert_eq!(par.3, serial.3, "build/repair counts at {threads} threads");
    }
}

/// One faulted, observed lossy/ARQ run at `threads` workers (`None` =
/// the serial counter-RNG kernel), plus its rendered manifest — the
/// three artifacts the lossy PDES contract pins.
fn lossy_observed_run(
    topo: &Topology,
    config: &LossyConfig,
    schedule: &FaultSchedule,
    rounds: u64,
    seed: u64,
    threads: Option<usize>,
) -> (LossyReport, LedgerRecorder, String) {
    let (report, obs) = match threads {
        Some(threads) => simulate_lossy_gathering_faulted_observed_par(
            topo, config, rounds, seed, schedule, threads,
        ),
        None => simulate_lossy_gathering_faulted_observed(topo, config, rounds, seed, schedule),
    };
    let manifest = RunManifest::new("differential-lossy")
        .field("rounds", &rounds)
        .field("report", &report)
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
        .runner()
        .to_json();
    (report, obs, manifest)
}

proptest! {
    /// Lossy PDES contract: the rollback-free region-parallel ARQ
    /// engine at 1, 2 and 8 threads is byte-identical to the serial
    /// counter-RNG kernel — report, ledger, rendered manifest — under
    /// random fault schedules (downed relays and links burning full
    /// ARQ budgets mid-route), with ddmin minimization on failure.
    #[test]
    fn region_parallel_lossy_rounds_match_the_serial_kernel(
        seed in 0u64..40,
        schedule in fault_schedule(24, 25, 10),
    ) {
        set_par_min_nodes_per_worker(Some(0));
        let topo = Topology::random(24, Length::from_meters(110.0), seed);
        let config = LossyConfig::bruised_channel();
        let diverges = |s: &FaultSchedule| {
            let serial = lossy_observed_run(&topo, &config, s, 25, seed, None);
            [1usize, 2, 8]
                .iter()
                .any(|&t| lossy_observed_run(&topo, &config, s, 25, seed, Some(t)) != serial)
        };
        if diverges(&schedule) {
            let minimized =
                minimize_failing_schedule(schedule.events(), |s| diverges(s));
            let serial = lossy_observed_run(&topo, &config, &minimized, 25, seed, None);
            let par = lossy_observed_run(&topo, &config, &minimized, 25, seed, Some(8));
            panic!(
                "region-parallel lossy run diverged from serial (seed {seed})\n\
                 minimized schedule: {:?}\nserial report: {:?}\n\
                 parallel report: {:?}\nmanifests equal: {}",
                minimized.events(),
                serial.0,
                par.0,
                serial.2 == par.2,
            );
        }
    }
}

#[test]
fn region_parallel_lossy_matches_serial_at_n1600_under_the_bench_fault_mix() {
    // Acceptance-scale spot check for the lossy engine: one n=1600
    // faulted ARQ run, serial counter-RNG vs region-parallel at 1/2/8
    // threads, bit-identical reports, ledgers and manifests. (The
    // n=100k differential lives in `scale_smoke_lossy` behind
    // `--ignored`.)
    set_par_min_nodes_per_worker(Some(0));
    let n = 1600;
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    let spec = FaultSpec::parse("death=0.1,outage=0.2:10,link=0.1:8").expect("bench fault mix");
    let config = LossyConfig::bruised_channel();
    let topo = Topology::random(n, side, 2003);
    let faults = spec.schedule_for(2003, n, 30);
    let serial = lossy_observed_run(&topo, &config, &faults, 30, 2003, None);
    assert!(
        serial.0.delivered > 0 && serial.0.delivered < serial.0.offered,
        "the bruised channel delivers imperfectly"
    );
    for threads in [1usize, 2, 8] {
        let par = lossy_observed_run(&topo, &config, &faults, 30, 2003, Some(threads));
        assert_eq!(par.0, serial.0, "report at {threads} threads");
        assert_eq!(par.1, serial.1, "ledger at {threads} threads");
        assert_eq!(par.2, serial.2, "manifest at {threads} threads");
    }
}

#[test]
fn faulted_replication_at_n1600_repairs_instead_of_rebuilding() {
    // Acceptance criterion: at n=1600 under the bench fault mix, every
    // replication performs exactly one full build (round 0) — all later
    // transitions are incremental repairs.
    let n = 1600;
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    let spec = FaultSpec::parse("death=0.1,outage=0.2:10,link=0.1:8").expect("bench fault mix");
    let config = NetworkConfig::sensor_default();
    let replications = 3u64;
    reset_route_build_count();
    reset_route_repair_count();
    let mut delivered = 0u64;
    for rep in 0..replications {
        let seed = 2003 + rep;
        let topo = Topology::random(n, side, seed);
        let faults = spec.schedule_for(seed, n, 30);
        let report =
            simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 30, &faults);
        delivered += report.delivered_packets;
    }
    assert_eq!(
        route_build_count(),
        replications,
        "one full build per replication (round 0) and no more"
    );
    assert!(
        route_repair_count() >= replications,
        "fault transitions must be absorbed by repairs"
    );
    assert!(delivered > 0, "the faulted network still delivers");
}
