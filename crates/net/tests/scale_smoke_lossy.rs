//! City-scale lossy/ARQ smoke test: n = 100 000 nodes on the bruised
//! channel, bounded in wall clock and allocations, with the
//! region-parallel engine checked bit-exact against the serial
//! counter-RNG kernel. `#[ignore]`d by default because the debug
//! profile is far too slow at this size — CI runs it as
//! `cargo test --release -- --ignored scale_smoke`, and a debug
//! invocation that reaches it anyway skips with a note. (This binary
//! holds exactly one test so no concurrent test pollutes the allocation
//! counter.)

use ami_net::{
    simulate_lossy_gathering, simulate_lossy_gathering_faulted,
    simulate_lossy_gathering_faulted_par, LossyConfig, Topology,
};
use ami_sim::fault::{FaultEvent, FaultSchedule};
use ami_units::Length;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `work` over `attempts` runs (see
/// `scale_smoke.rs` — harness noise is strictly additive, so the
/// minimum is the true count).
fn steady_allocations(attempts: usize, mut work: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            work();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one attempt")
}

#[test]
#[ignore = "city-scale smoke: run with `cargo test --release -- --ignored scale_smoke`"]
fn scale_smoke_lossy_100k_nodes_arq_serial_and_parallel() {
    if cfg!(debug_assertions) {
        eprintln!("scale_smoke_lossy: skipped (needs the release profile; rerun with --release)");
        return;
    }
    const N: usize = 100_000;
    let wall = Instant::now();

    // The bench layout at city scale: constant density (25·√n metre
    // field side), sink at the centre, bruised channel.
    let side = Length::from_meters(25.0 * (N as f64).sqrt());
    let topo = Topology::random(N, side, 2003);
    let config = LossyConfig::bruised_channel();

    // Healthy serial pass: the channel delivers imperfectly but the
    // city-scale run must not collapse.
    let report = simulate_lossy_gathering(&topo, &config, 2, 2003);
    assert!(report.delivered > 0, "the city must deliver");
    assert!(
        report.delivered < report.offered,
        "BER 1e-3 must cost packets at city scale"
    );

    // Allocation steadiness: after round 0's route build, extra rounds
    // reuse every buffer — a 3x longer run allocates exactly as much.
    let faults = FaultSchedule::new(vec![
        FaultEvent::NodeOutage {
            node: 17,
            from: 1,
            until: 3,
        },
        FaultEvent::NodeDeath {
            node: 999,
            round: 2,
        },
        FaultEvent::LinkOutage {
            a: 5,
            b: 55,
            from: 1,
            until: 3,
        },
    ]);
    let short = steady_allocations(2, || {
        let _ = simulate_lossy_gathering_faulted(&topo, &config, 6, 2003, &faults);
    });
    let long = steady_allocations(2, || {
        let _ = simulate_lossy_gathering_faulted(&topo, &config, 18, 2003, &faults);
    });
    assert_eq!(
        short, long,
        "faulted lossy rounds allocated at n=100k ({short} vs {long} allocations)"
    );
    assert!(short > 0, "the counter must actually be counting");

    // Region-parallel pass: the rollback-free lossy engine at 8 worker
    // threads must reproduce the serial counter-RNG run bit for bit at
    // city scale (n=100k clears the nodes-per-worker floor, so the
    // engine genuinely engages at 8 threads).
    let serial = simulate_lossy_gathering_faulted(&topo, &config, 6, 2003, &faults);
    for threads in [1usize, 8] {
        let par = simulate_lossy_gathering_faulted_par(&topo, &config, 6, 2003, &faults, threads);
        assert_eq!(
            par, serial,
            "region-parallel lossy n=100k run diverged at {threads} threads"
        );
    }

    let elapsed = wall.elapsed();
    assert!(
        elapsed < Duration::from_secs(90),
        "lossy scale smoke exceeded its wall-clock budget: {elapsed:?}"
    );
}
