//! Differential layer for the traffic-aggregation charge kernel:
//! aggregated rounds ≡ the per-packet hop walk, at report, ledger and
//! rendered-manifest level.
//!
//! The aggregated kernel replaces the serial round's per-packet budget
//! walk with one reverse-topological sweep plus a per-cell replay, and
//! is only admissible because it changes *nothing*: the S1/S2 energy
//! margins prove, per round, that the serial kernel would have seen no
//! mid-round budget death, and every f64 fold replays the serial charge
//! order. These tests pin that contract the same way the repair and
//! PDES layers are pinned — random topologies × random fault schedules
//! with budget deaths provoked mid-run, bit equality on all artifacts,
//! failures delta-debugged to a 1-minimal schedule — plus targeted
//! regressions for the fallback machinery itself (death rounds must
//! route through the retained hop-walk oracle and be counted).

mod common;

use ami_net::{
    agg_engaged_count, agg_fallback_count, reset_agg_counters, set_aggregated_rounds,
    set_par_min_nodes_per_worker, simulate_gathering, simulate_gathering_faulted_observed,
    simulate_gathering_faulted_observed_par, GatherSession, NetworkConfig, NetworkReport,
    RoutingStrategy, Topology,
};
use ami_sim::fault::{FaultEvent, FaultSchedule};
use ami_sim::obs::{LedgerRecorder, RunManifest};
use ami_units::{Energy, Length};
use common::schedule::{fault_schedule, minimize_failing_schedule};
use proptest::prelude::*;

/// Restores the thread-local aggregation toggle on drop, so a failing
/// assertion cannot leak kernel choice into later tests on the thread.
struct AggMode(Option<bool>);

impl AggMode {
    fn set(enabled: bool) -> Self {
        Self(set_aggregated_rounds(Some(enabled)))
    }
}

impl Drop for AggMode {
    fn drop(&mut self) {
        set_aggregated_rounds(self.0);
    }
}

/// One faulted, observed gathering run with the aggregated kernel
/// forced on or off, plus its rendered manifest — the three artifacts
/// the aggregation contract pins.
fn observed_run(
    topo: &Topology,
    config: &NetworkConfig,
    schedule: &FaultSchedule,
    rounds: u64,
    aggregated: bool,
) -> (NetworkReport, LedgerRecorder, String) {
    let _mode = AggMode::set(aggregated);
    let (report, obs) = simulate_gathering_faulted_observed(
        topo,
        RoutingStrategy::MinimumEnergy,
        config,
        rounds,
        schedule,
    );
    let manifest = manifest_of(rounds, &report, &obs);
    (report, obs, manifest)
}

/// Renders the manifest artifact the aggregation contract pins.
fn manifest_of(rounds: u64, report: &NetworkReport, obs: &LedgerRecorder) -> String {
    RunManifest::new("differential-agg")
        .field("rounds", &rounds)
        .field("report", report)
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
        .runner()
        .to_json()
}

proptest! {
    /// Tentpole contract: a faulted gathering run — delivery counts,
    /// energy ledger, packet-counter tree, rendered manifest — is
    /// byte-identical whether rounds aggregate or hop-walk. Budgets are
    /// cut to ~12 idle rounds so energy deaths arrive mid-run and the
    /// margin-check fallback path executes alongside clean rounds.
    #[test]
    fn aggregated_rounds_match_the_hop_walk_kernel(
        seed in 0u64..40,
        schedule in fault_schedule(24, 25, 10),
    ) {
        let topo = Topology::random(24, Length::from_meters(110.0), seed);
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_joules(0.015);
        let differs = |s: &FaultSchedule| {
            observed_run(&topo, &config, s, 25, true) != observed_run(&topo, &config, s, 25, false)
        };
        if differs(&schedule) {
            let minimized =
                minimize_failing_schedule(schedule.events(), |s| differs(s));
            let (report_a, _, manifest_a) = observed_run(&topo, &config, &minimized, 25, true);
            let (report_w, _, manifest_w) = observed_run(&topo, &config, &minimized, 25, false);
            panic!(
                "aggregated run diverged from hop walk (seed {seed})\n\
                 minimized schedule: {:?}\naggregated report: {report_a:?}\n\
                 hop-walk report: {report_w:?}\nmanifests equal: {}",
                minimized.events(),
                manifest_a == manifest_w,
            );
        }
    }
}

proptest! {
    /// The region-parallel engine must agree with the *aggregated*
    /// serial kernel too (its rollback path replays the hop walk, its
    /// clean path the same S1/S2-margined sweep): reports, ledgers and
    /// manifests at 1, 2 and 8 workers equal the serial aggregated run.
    #[test]
    fn region_parallel_matches_the_aggregated_serial_kernel(
        seed in 0u64..20,
        schedule in fault_schedule(24, 20, 8),
    ) {
        let _mode = AggMode::set(true);
        set_par_min_nodes_per_worker(Some(0));
        let topo = Topology::random(24, Length::from_meters(110.0), seed);
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_joules(0.015);
        let serial = observed_run(&topo, &config, &schedule, 20, true);
        for threads in [1usize, 2, 8] {
            let (report, obs) = simulate_gathering_faulted_observed_par(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config,
                20,
                &schedule,
                threads,
            );
            prop_assert_eq!(&report, &serial.0, "report at {} threads", threads);
            prop_assert_eq!(&obs, &serial.1, "ledger at {} threads", threads);
        }
    }
}

#[test]
fn death_rounds_fall_back_to_the_hop_walk_and_are_counted() {
    // ~6 idle rounds of budget: relays die mid-run, so some rounds must
    // fail the S1/S2 margin and route through the retained oracle. The
    // engaged/fallback counters mirror the PDES engagement counters —
    // CI and tests assert the fast path actually ran, not just that
    // results matched.
    let _mode = AggMode::set(true);
    let topo = Topology::random(64, Length::from_meters(180.0), 7);
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(0.008);
    reset_agg_counters();
    let agg = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 30);
    let engaged = agg_engaged_count();
    let fallbacks = agg_fallback_count();
    assert!(
        engaged > 0,
        "healthy early rounds must take the aggregated path"
    );
    assert!(
        fallbacks > 0,
        "budget-death rounds must fall back to the hop walk"
    );
    assert_eq!(
        engaged + fallbacks,
        30,
        "every round takes exactly one path"
    );
    assert!(
        agg.first_death_round.is_some(),
        "the scenario must actually exhaust a node"
    );

    let _off = AggMode::set(false);
    let oracle = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 30);
    assert_eq!(
        agg, oracle,
        "mixed engaged/fallback run must stay bit-exact"
    );
}

#[test]
fn mid_round_death_at_the_packet_boundary_is_exact() {
    // A 3-node chain (sink — relay — leaf) with the relay's budget
    // trimmed so it dies *during* a round, partway through the charge
    // sequence: the relay still pays for packets that transited before
    // exhaustion, and the S2 margin must catch the round (an
    // all-positive replay would misstate the post-death charges).
    // 40 m spacing under the 45 m default hop range: the leaf reaches
    // only the relay, so the chain is forced.
    let topo = Topology::new(vec![
        ami_net::Position::new(0.0, 0.0),
        ami_net::Position::new(40.0, 0.0),
        ami_net::Position::new(80.0, 0.0),
    ]);
    let config_probe = NetworkConfig::sensor_default();
    // Measure one healthy round's relay spend to place the death
    // mid-round: give the relay one full round plus half its round-2
    // outlay, so it crosses zero between two charge events of round 2.
    let _mode = AggMode::set(false);
    let (_, probe) = ami_net::simulate_gathering_observed(
        &topo,
        RoutingStrategy::MinimumEnergy,
        &config_probe,
        1,
    );
    let relay_round = probe.ledger.node_total(1).as_joules();
    assert!(relay_round > 0.0, "the relay must spend in a healthy round");

    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(relay_round * 1.5);
    let _off = AggMode::set(false);
    let oracle = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 6);
    let _on = AggMode::set(true);
    reset_agg_counters();
    let agg = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 6);
    assert_eq!(agg, oracle, "mid-round death must be bit-exact");
    assert!(
        agg_fallback_count() > 0,
        "the death round must fail the margin check"
    );
    // `first_death_round` counts completed rounds: a mid-round-2 death
    // reports as 2.
    assert_eq!(
        oracle.first_death_round,
        Some(2),
        "death lands in round 2 by construction"
    );
}

#[test]
fn sessions_reuse_routes_without_changing_results() {
    // The session API amortizes the route build across runs; every run
    // must still be bit-identical to the one-shot entry point, and the
    // kernel must stay engaged (no fallbacks on a healthy network).
    let _mode = AggMode::set(true);
    let topo = Topology::random(400, Length::from_meters(500.0), 11);
    let config = NetworkConfig::sensor_default();
    let one_shot = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 8);
    let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &config);
    reset_agg_counters();
    for trial in 0..3 {
        let run = session.run(8);
        assert_eq!(run, one_shot, "session trial {trial}");
    }
    assert_eq!(agg_engaged_count(), 24, "all session rounds aggregate");
    assert_eq!(agg_fallback_count(), 0, "healthy rounds never fall back");
}

#[test]
fn session_faulted_runs_match_the_one_shot_entry_point() {
    // A fault-free session run memoizes the round image for the warm
    // route epoch; a faulted run on the *same* session must not replay
    // it. Link-only outages and a round-0 outage are the sharp cases:
    // neither moves the route epoch in the faulted rounds it covers
    // (routing sees faults one round late, and link faults never change
    // the usable set), so only the run-boundary invalidation and the
    // fault-free replay guard keep those rounds off the stale image.
    let _mode = AggMode::set(true);
    // 40 m spacing under the 45 m default hop range forces the
    // sink — relay — leaf chain, so both faults sit on a used route.
    let topo = Topology::new(vec![
        ami_net::Position::new(0.0, 0.0),
        ami_net::Position::new(40.0, 0.0),
        ami_net::Position::new(80.0, 0.0),
    ]);
    let config = NetworkConfig::sensor_default();
    let rounds = 6;
    let link_only = FaultSchedule::new(vec![FaultEvent::LinkOutage {
        a: 1,
        b: 2,
        from: 1,
        until: 4,
    }]);
    let round0_outage = FaultSchedule::new(vec![FaultEvent::NodeOutage {
        node: 1,
        from: 0,
        until: 3,
    }]);
    let clean = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, rounds);

    for (label, schedule) in [("link-only", &link_only), ("round-0 outage", &round0_outage)] {
        let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &config);
        // Warm the session: this memoizes the fault-free round image.
        assert_eq!(session.run(rounds), clean, "warm-up run ({label})");

        let mut obs = LedgerRecorder::with_nodes(topo.len());
        let report = session.run_faulted_with(rounds, schedule, &mut obs);
        let (one_report, one_obs) = simulate_gathering_faulted_observed(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config,
            rounds,
            schedule,
        );
        assert_eq!(report, one_report, "faulted report ({label})");
        assert_eq!(obs, one_obs, "faulted ledger ({label})");
        assert_eq!(
            manifest_of(rounds, &report, &obs),
            manifest_of(rounds, &one_report, &one_obs),
            "faulted manifest ({label})"
        );

        // The faulted run's truncated walks must not leak into a later
        // fault-free run on the same session either (stale hop counts
        // would mis-gate stream memoization).
        assert_eq!(session.run(rounds), clean, "post-fault run ({label})");
    }
}
