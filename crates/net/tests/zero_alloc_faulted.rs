//! Proof that the *faulted* round loops are allocation-free once every
//! scheduled transition has fired: a counting global allocator measures
//! whole simulations at two very different round counts over a schedule
//! whose last transition lands well inside the shorter run. Setup,
//! timeline compilation, the round-0 build and each repair allocate the
//! same amount in both runs, so any per-round allocation — including
//! one hidden in the incremental-repair steady state — shows up as a
//! count difference. (This binary holds exactly one test so no
//! concurrent *test* pollutes the counter; harness-thread noise is
//! filtered by measuring each workload as a minimum over several
//! attempts — see [`steady_allocations`].)

use ami_net::{
    simulate_gathering_faulted, simulate_lossy_gathering_faulted, LossyConfig, NetworkConfig,
    RoutingStrategy, Topology,
};
use ami_sim::fault::{FaultEvent, FaultSchedule};
use ami_units::Length;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `work` over `attempts` runs. The
/// simulation allocates deterministically; the libtest harness's
/// waiting thread occasionally allocates mid-window, and that noise is
/// strictly additive, so the minimum is the true count and the equality
/// assertions below stay exact.
fn steady_allocations(attempts: usize, mut work: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            work();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one attempt")
}

/// Deaths, an outage+reboot and a link window, all resolved by round 6:
/// both measured runs replay the identical transition (and repair)
/// sequence, then the longer one keeps looping with nothing left to
/// change.
fn early_schedule() -> FaultSchedule {
    FaultSchedule::new(vec![
        FaultEvent::NodeOutage {
            node: 7,
            from: 1,
            until: 4,
        },
        FaultEvent::NodeDeath { node: 11, round: 2 },
        FaultEvent::NodeDeath { node: 23, round: 4 },
        FaultEvent::LinkOutage {
            a: 3,
            b: 14,
            from: 1,
            until: 5,
        },
    ])
}

#[test]
fn faulted_round_loops_allocate_nothing_per_round() {
    let topo = Topology::grid(6, Length::from_meters(25.0));
    let config = NetworkConfig::sensor_default();
    let lossy = LossyConfig::bruised_channel();
    let faults = early_schedule();

    // Warm the topology's CSR cache so every measured run starts from
    // the same state (the cache builds once per topology, not per run).
    let _ = simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 1, &faults);
    let _ = simulate_lossy_gathering_faulted(&topo, &lossy, 1, 3, &faults);

    let gather_short = steady_allocations(5, || {
        let _ =
            simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 10, &faults);
    });
    let gather_long = steady_allocations(5, || {
        let _ = simulate_gathering_faulted(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config,
            1000,
            &faults,
        );
    });
    assert_eq!(
        gather_short, gather_long,
        "faulted gather round loop allocated ({gather_short} vs {gather_long} allocations)"
    );
    assert!(gather_short > 0, "the counter must actually be counting");

    let lossy_short = steady_allocations(5, || {
        let _ = simulate_lossy_gathering_faulted(&topo, &lossy, 10, 3, &faults);
    });
    let lossy_long = steady_allocations(5, || {
        let _ = simulate_lossy_gathering_faulted(&topo, &lossy, 1000, 3, &faults);
    });
    assert_eq!(
        lossy_short, lossy_long,
        "faulted lossy round loop allocated ({lossy_short} vs {lossy_long} allocations)"
    );
}
