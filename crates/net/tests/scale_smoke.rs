//! City-scale smoke test: n = 100 000 nodes end to end, bounded in both
//! wall clock and allocations. `#[ignore]`d by default because the
//! debug profile is far too slow at this size — CI runs it as
//! `cargo test --release -- --ignored scale_smoke`, and a debug
//! invocation that reaches it anyway skips with a note. (This binary
//! holds exactly one test so no concurrent test pollutes the allocation
//! counter.)

use ami_net::routing::{
    reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
};
use ami_net::{
    simulate_gathering, simulate_gathering_faulted, NetworkConfig, RoutingStrategy, Topology,
};
use ami_sim::fault::{FaultEvent, FaultSchedule};
use ami_units::Length;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `work` over `attempts` runs. The
/// simulation allocates deterministically; the libtest harness's
/// waiting thread occasionally allocates mid-window, and that noise is
/// strictly additive, so the minimum is the true count. Two attempts
/// suffice here (the windows are seconds long, so a double hit on the
/// same workload is vanishingly rare, and the runs are too expensive to
/// repeat five times).
fn steady_allocations(attempts: usize, mut work: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            work();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("at least one attempt")
}

#[test]
#[ignore = "city-scale smoke: run with `cargo test --release -- --ignored scale_smoke`"]
fn scale_smoke_100k_nodes_route_repair_and_gather() {
    if cfg!(debug_assertions) {
        eprintln!("scale_smoke: skipped (needs the release profile; rerun with --release)");
        return;
    }
    const N: usize = 100_000;
    let wall = Instant::now();

    // The bench layout at city scale: constant density (25·√n metre
    // field side), sink at the centre.
    let side = Length::from_meters(25.0 * (N as f64).sqrt());
    let topo = Topology::random(N, side, 2003);
    let config = NetworkConfig::sensor_default();

    // Healthy pass: one full build, packets flow.
    reset_route_build_count();
    reset_route_repair_count();
    let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 3);
    assert_eq!(route_build_count(), 1, "healthy run: one build");
    assert!(report.delivered_packets > 0, "the city must deliver");

    // Faulted pass: every transition fires by round 5, so a 3x longer
    // run must allocate exactly as much as the short one — the steady
    // state loops (including the repaired route tables) are
    // allocation-free even at n = 100 000. (The long run stays under 19
    // rounds: at this relay load the first *budget* death lands
    // deterministically at round 21, and its repair may legitimately
    // grow the reused scratch.)
    let faults = FaultSchedule::new(vec![
        FaultEvent::NodeOutage {
            node: 17,
            from: 1,
            until: 3,
        },
        FaultEvent::NodeDeath {
            node: 999,
            round: 2,
        },
        FaultEvent::LinkOutage {
            a: 5,
            b: 55,
            from: 1,
            until: 3,
        },
    ]);
    reset_route_build_count();
    reset_route_repair_count();
    let short = steady_allocations(2, || {
        let _ =
            simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 6, &faults);
    });
    let long = steady_allocations(2, || {
        let _ =
            simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 18, &faults);
    });
    assert_eq!(
        short, long,
        "faulted rounds allocated at n=100k ({short} vs {long} allocations)"
    );
    assert!(short > 0, "the counter must actually be counting");
    assert_eq!(route_build_count(), 4, "one full build per faulted run");
    assert_eq!(
        route_repair_count(),
        12,
        "three transitions per run, each an incremental repair"
    );

    // Region-parallel pass: the conservative PDES engine at 8 worker
    // threads must reproduce the serial faulted run bit for bit at city
    // scale. Reports derive every float from the run state, so `==`
    // here is bit equality.
    let serial =
        simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 6, &faults);
    for threads in [1usize, 8] {
        let par = ami_net::simulate_gathering_faulted_par(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config,
            6,
            &faults,
            threads,
        );
        assert_eq!(
            par, serial,
            "region-parallel n=100k run diverged at {threads} threads"
        );
    }

    let elapsed = wall.elapsed();
    assert!(
        elapsed < Duration::from_secs(90),
        "scale smoke exceeded its wall-clock budget: {elapsed:?}"
    );
}
