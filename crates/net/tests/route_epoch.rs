//! The usable-set epoch cache: cached routes must be indistinguishable
//! from routes rebuilt from scratch every round, under arbitrary fault
//! schedules — and healthy runs must pay for exactly one build.

mod common;

use ami_net::routing::{
    reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
    RouteCache,
};
use ami_net::{
    build_routes_over, simulate_gathering, simulate_gathering_faulted, simulate_lossy_gathering,
    LossyConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_sim::fault::{FaultEvent, FaultModel, FaultSchedule};
use ami_units::Length;
use common::schedule::fault_schedule;
use proptest::prelude::*;

proptest! {
    /// Drive a [`RouteCache`] through the usable-set sequence of an
    /// arbitrary fault schedule (deaths, outage+reboot windows, link
    /// windows) with the simulators' one-round lag; after every round
    /// the cached table must equal a fresh scratch build over the same
    /// usable set, and the cache must never build or repair more than
    /// once per round. Schedules come from the shared
    /// [`common::schedule::fault_schedule`] strategy; events aimed at
    /// nodes beyond `n` are legal no-ops for an `n`-node run.
    #[test]
    fn epoch_cached_routes_match_fresh_builds(
        seed in 0u64..200,
        n in 5usize..40,
        rounds in 1u64..40,
        faults in fault_schedule(40, 40, 14),
    ) {
        let topo = Topology::random(n, Length::from_meters(130.0), seed);
        let config = NetworkConfig::sensor_default();
        let bits = config.packet.total_bits();
        let mut cache = RouteCache::new(n);
        let mut usable = vec![true; n];
        let mut down_prev = vec![false; n];
        for round in 0..rounds {
            for (id, flag) in usable.iter_mut().enumerate() {
                *flag = id == 0 || !down_prev[id];
            }
            cache.ensure(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                bits,
                &usable,
            );
            let fresh = build_routes_over(
                &topo,
                RoutingStrategy::MinimumEnergy,
                &config.radio,
                config.max_hop,
                &usable,
            );
            prop_assert_eq!(cache.table(), fresh.as_slice(), "round {}", round);
            for (id, down) in down_prev.iter_mut().enumerate() {
                *down = id != 0 && faults.node_down(id, round);
            }
        }
        prop_assert!(
            cache.builds() + cache.repairs() <= rounds,
            "at most one build or repair per round"
        );
    }

    /// The faulted simulators never panic and stay packet-sane across
    /// arbitrary schedules now that routing runs off the epoch cache.
    #[test]
    fn faulted_simulation_survives_arbitrary_schedules(
        seed in 0u64..60,
        death in 0.0..0.5f64,
        outage in 0.0..0.5f64,
        link in 0.0..0.4f64,
    ) {
        let topo = Topology::random(25, Length::from_meters(110.0), seed);
        let model = FaultModel {
            death_rate: death,
            outage_rate: outage,
            outage_rounds: 8,
            link_outage_rate: link,
            link_outage_rounds: 6,
            fade_rate: 0.2,
            fade_factor: 0.7,
        };
        let rounds = 40;
        let faults = model.schedule(seed, topo.len(), rounds);
        let config = NetworkConfig::sensor_default();
        let report = simulate_gathering_faulted(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &config,
            rounds,
            &faults,
        );
        prop_assert!(report.delivered_packets <= rounds * (topo.len() as u64 - 1));
        prop_assert!(report.total_energy.as_joules() >= 0.0);
    }
}

#[test]
fn healthy_gather_run_builds_routes_exactly_once() {
    let topo = Topology::random(60, Length::from_meters(160.0), 9);
    let config = NetworkConfig::sensor_default();
    reset_route_build_count();
    let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
    assert_eq!(
        route_build_count(),
        1,
        "a healthy run must pay for exactly one route build"
    );
    assert!(
        report.first_death_round.is_none(),
        "the run must stay healthy"
    );
}

#[test]
fn healthy_lossy_run_builds_routes_exactly_once() {
    let topo = Topology::random(40, Length::from_meters(130.0), 4);
    let config = LossyConfig::bruised_channel();
    reset_route_build_count();
    let _ = simulate_lossy_gathering(&topo, &config, 120, 7);
    assert_eq!(route_build_count(), 1);
}

#[test]
fn outage_costs_exactly_two_repairs_and_no_extra_builds() {
    // One outage window (rounds 3–5): routing notices the power-off one
    // round late (repair at round 4) and the reboot one round late
    // (repair at round 7). Only the round-0 build is full — both
    // transitions are incremental repairs.
    let topo = Topology::grid(4, Length::from_meters(25.0));
    let config = NetworkConfig::sensor_default();
    let faults = FaultSchedule::new(vec![FaultEvent::NodeOutage {
        node: 5,
        from: 3,
        until: 6,
    }]);
    reset_route_build_count();
    reset_route_repair_count();
    let _ = simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 10, &faults);
    assert_eq!(route_build_count(), 1, "only the initial build may be full");
    assert_eq!(
        route_repair_count(),
        2,
        "power-off and reboot each cost one incremental repair"
    );
}

#[test]
fn reboot_landing_with_a_second_death_repairs_once() {
    // Counter-accounting regression for repair-while-dirty ordering: an
    // outage on node 5 ends (reboot, visible at round 5) in the same
    // diff as node 10's death (round 4, also visible at round 5). The
    // single repair must splice one node back in while carving the
    // other out — two repairs total for three transitions' worth of
    // events, and never a second full build.
    let topo = Topology::grid(4, Length::from_meters(25.0));
    let config = NetworkConfig::sensor_default();
    let faults = FaultSchedule::new(vec![
        FaultEvent::NodeOutage {
            node: 5,
            from: 1,
            until: 4,
        },
        FaultEvent::NodeDeath { node: 10, round: 4 },
    ]);
    reset_route_build_count();
    reset_route_repair_count();
    let report =
        simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 10, &faults);
    assert_eq!(route_build_count(), 1, "round-0 build only");
    assert_eq!(
        route_repair_count(),
        2,
        "power-off at round 2; reboot + death folded into one repair at round 5"
    );
    assert!(report.delivered_packets > 0);
}
