//! Retired reference implementations, kept verbatim as pinned oracles.
//!
//! Every optimization in `ami-net`'s routing stack was landed against a
//! slower, obviously-correct predecessor; those predecessors live here
//! (shared across test binaries instead of duplicated in each) so the
//! differential suites can keep diffing the fast paths against them:
//!
//! * [`dijkstra_reference_scan`] — the O(N²) linear-scan Dijkstra the
//!   binary-heap implementation replaced;
//! * [`rebuild_over_usable`] — the compact-subtopology rebuild that
//!   `build_routes_over`'s masked walk replaced;
//! * the full-rebuild-per-transition `RouteCache` path that incremental
//!   repair replaced is toggled back on via
//!   `ami_net::routing::set_route_repair_enabled(false)` — it stays in
//!   the production crate because the cache itself dispatches to it.

use ami_net::routing::build_routes;
use ami_net::{NodeId, RoutingStrategy, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::Length;

/// The historical O(N²) scan Dijkstra, kept verbatim as the
/// bit-exactness reference for the heap implementation.
pub fn dijkstra_reference_scan(
    topology: &Topology,
    radio: &RadioEnergyModel,
    max_hop: Length,
) -> Vec<Option<NodeId>> {
    let n = topology.len();
    let sink = topology.sink();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    dist[sink.0] = 0.0;
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for (idx, &d) in dist.iter().enumerate() {
            if !visited[idx] && d.is_finite() && best.is_none_or(|b| d < dist[b]) {
                best = Some(idx);
            }
        }
        let Some(u) = best else { break };
        visited[u] = true;
        for v in topology.neighbors_within(NodeId(u), max_hop) {
            if visited[v.0] {
                continue;
            }
            let hop = topology.distance(NodeId(u), v);
            let weight = radio.hop_energy_per_bit(hop).as_joules_per_bit();
            if dist[u] + weight < dist[v.0] {
                dist[v.0] = dist[u] + weight;
                parent[v.0] = Some(NodeId(u));
            }
        }
    }
    parent
}

/// The historical usable-subset rebuild: filter usable nodes into a
/// compact topology, route it, map ids back. Kept verbatim as the
/// bit-exactness reference for `build_routes_over`, which routes the
/// full cached CSR with an id-order-preserving subset skip.
pub fn rebuild_over_usable(
    topology: &Topology,
    strategy: RoutingStrategy,
    radio: &RadioEnergyModel,
    max_hop: Length,
    usable: &[bool],
) -> Vec<Option<NodeId>> {
    // Map usable ids into a compact topology (sink always survives).
    let mut forward = Vec::new(); // compact -> original
    let mut positions = Vec::new();
    for id in topology.ids() {
        if id == topology.sink() || usable[id.0] {
            forward.push(id);
            positions.push(topology.position(id));
        }
    }
    if positions.len() < 2 {
        // Everyone but the sink is dead: no routes remain.
        return vec![None; topology.len()];
    }
    let compact = Topology::new(positions);
    let compact_table = build_routes(&compact, strategy, radio, max_hop);
    let mut table = vec![None; topology.len()];
    for (compact_idx, original) in forward.iter().enumerate() {
        table[original.0] = compact_table[compact_idx].map(|next| forward[next.0]);
    }
    table
}
