//! Shared helpers for the `ami-net` integration-test suite.
//!
//! Each test binary compiles this module separately and uses a
//! different subset, so unused-item lints are silenced here.
#![allow(dead_code)]

pub mod oracle;
pub mod schedule;
