//! Random fault-schedule generation for property tests: a proptest
//! strategy over validated [`FaultEvent`]s, plus a greedy
//! delta-debugging minimizer that stands in for shrinking (the vendored
//! proptest has no value trees — see `vendor/proptest`).

use ami_sim::fault::{FaultEvent, FaultSchedule};
use proptest::prelude::*;

/// Strategy over one validated fault event for an `nodes`-node,
/// `rounds`-round run: node deaths, node outage windows and link outage
/// windows, uniformly mixed. Node events never target the sink (id 0);
/// windows start inside `[0, rounds)` and are clamped to end by
/// `rounds`, so every generated event passes `FaultSchedule::new`
/// validation.
///
/// # Panics
///
/// Panics when `nodes < 3` or `rounds == 0` — too small to draw
/// distinct link endpoints or any window.
pub fn fault_event(nodes: usize, rounds: u64) -> impl Strategy<Value = FaultEvent> {
    assert!(nodes >= 3, "need a sink plus two sensors");
    assert!(rounds >= 1, "need at least one round");
    prop_oneof![
        (1..nodes, 0..rounds).prop_map(|(node, round)| FaultEvent::NodeDeath { node, round }),
        (1..nodes, 0..rounds, 1..=10u64).prop_map(move |(node, from, span)| {
            FaultEvent::NodeOutage {
                node,
                from,
                until: (from + span).min(rounds),
            }
        }),
        (1..nodes, 0..nodes - 1, 0..rounds, 1..=10u64).prop_map(move |(a, other, from, span)| {
            // `other` skips over `a`, giving a distinct endpoint
            // (possibly the sink — links touching it are valid).
            let b = if other >= a { other + 1 } else { other };
            FaultEvent::LinkOutage {
                a,
                b,
                from,
                until: (from + span).min(rounds),
            }
        }),
    ]
}

/// Strategy over whole validated [`FaultSchedule`]s: up to `max_events`
/// events drawn from [`fault_event`].
pub fn fault_schedule(
    nodes: usize,
    rounds: u64,
    max_events: usize,
) -> impl Strategy<Value = FaultSchedule> {
    prop::collection::vec(fault_event(nodes, rounds), 0..max_events + 1)
        .prop_map(FaultSchedule::new)
}

/// Greedy delta-debugging stand-in for shrinking: repeatedly drops
/// events while `fails` still holds on the remainder, until the failing
/// schedule is 1-minimal (removing any single event makes it pass).
/// Callers report the minimized schedule in their panic message so a
/// 12-event counterexample arrives as the 2 events that matter.
pub fn minimize_failing_schedule(
    events: &[FaultEvent],
    fails: impl Fn(&FaultSchedule) -> bool,
) -> FaultSchedule {
    let mut current: Vec<FaultEvent> = events.to_vec();
    loop {
        let mut shrunk = false;
        let mut index = 0;
        while index < current.len() {
            let mut candidate = current.clone();
            candidate.remove(index);
            if fails(&FaultSchedule::new(candidate.clone())) {
                current = candidate;
                shrunk = true;
            } else {
                index += 1;
            }
        }
        if !shrunk {
            return FaultSchedule::new(current);
        }
    }
}
