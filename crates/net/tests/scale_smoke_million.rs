//! Million-node smoke test: one n = 1 000 000 gathering run and one
//! lossy/ARQ run end to end, with a **peak-RSS ceiling** proving the
//! memory story — per-node state is a handful of flat arrays, the
//! aggregation value-stream memo is capacity-gated (at ~3×10⁸ hop
//! charges per round it stays *off* and rounds recompute instead of
//! caching), and observation goes through the O(active)
//! [`RingRecorder`], not an O(N) ledger. `#[ignore]`d by default; CI
//! runs it as `cargo test --release -- --ignored scale_smoke`. (Own
//! binary so nothing else inflates the RSS high-water mark.)

use ami_net::{
    agg_engaged_count, agg_fallback_count, reset_agg_counters, GatherSession, LossyConfig,
    LossySession, NetworkConfig, RoutingStrategy, Topology,
};
use ami_sim::fault::FaultSchedule;
use ami_sim::obs::RingRecorder;
use ami_units::Length;
use std::time::{Duration, Instant};

/// Peak resident-set size of this process in kibibytes, from
/// `/proc/self/status` (`VmHWM`). Linux-specific, like CI.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let line = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .expect("VmHWM line");
    line.split_whitespace()
        .nth(1)
        .expect("VmHWM value")
        .parse()
        .expect("VmHWM parses")
}

#[test]
#[ignore = "city-scale smoke: run with `cargo test --release -- --ignored scale_smoke`"]
fn scale_smoke_million_nodes_gather_and_lossy_bounded_memory() {
    if cfg!(debug_assertions) {
        eprintln!("scale_smoke_million: skipped (needs the release profile; rerun with --release)");
        return;
    }
    const N: usize = 1_000_000;
    let wall = Instant::now();

    // The bench layout scaled up: constant density (25·√n metre field
    // side), sink at the centre.
    let side = Length::from_meters(25.0 * (N as f64).sqrt());
    let topo = Topology::random(N, side, 2003);
    let config = NetworkConfig::sensor_default();

    // Gathering: two aggregated rounds through the bounded residual
    // sink. Every healthy round must take the aggregated path (the
    // value-stream memo being over its cap degrades speed, never
    // engagement), and every sensor's residual must fold into the
    // ring's running stats while the ring itself retains only its
    // fixed-capacity tail.
    reset_agg_counters();
    let mut sink = RingRecorder::with_capacity(1024);
    let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &config);
    let report = session.run_faulted_with(2, &FaultSchedule::empty(), &mut sink);
    assert!(report.delivered_packets > 0, "the megacity must deliver");
    assert_eq!(report.first_death_round, None, "two rounds cannot exhaust");
    assert_eq!(agg_engaged_count(), 2, "both rounds aggregate");
    assert_eq!(agg_fallback_count(), 0, "healthy rounds never fall back");
    let stats = sink.stats();
    assert_eq!(
        stats.count,
        (N - 1) as u64,
        "every sensor reports a residual"
    );
    assert_eq!(stats.overdrawn, 0, "no overdraft in two rounds");
    assert!(stats.min > 0.0, "all residuals stay positive");
    assert_eq!(
        sink.recent().count(),
        1024,
        "the ring holds only its capacity"
    );
    assert_eq!(
        sink.packets.delivered, report.delivered_packets,
        "ring counters agree with the report"
    );

    // Lossy/ARQ: one counter-RNG round at the same scale.
    let lossy = LossyConfig::bruised_channel();
    let mut lossy_session = LossySession::new(&topo, &lossy);
    let lossy_report = lossy_session.run(1, 2003);
    assert!(
        lossy_report.delivered > 0,
        "the lossy megacity must deliver"
    );
    assert!(
        lossy_report.delivered < lossy_report.offered,
        "BER 1e-3 must cost packets at this depth"
    );

    // The memory ceiling. Flat per-node state (topology, CSR adjacency,
    // routes, budgets, scratch) totals ~300 MiB measured at n=10⁶, and
    // the observer adds O(1024). 768 MiB is ~2.5× that high-water mark:
    // an ungated value-stream memo (~2.4 GiB at this hop volume) or any
    // new O(N)-per-round allocation blows it immediately.
    let peak = peak_rss_kib();
    assert!(
        peak < 768 * 1024,
        "peak RSS {peak} KiB exceeds the 768 MiB ceiling"
    );

    let elapsed = wall.elapsed();
    assert!(
        elapsed < Duration::from_secs(300),
        "million-node smoke exceeded its wall-clock budget: {elapsed:?}"
    );
    eprintln!(
        "scale_smoke_million: peak RSS {:.1} MiB, wall {elapsed:?}",
        peak as f64 / 1024.0
    );
}
