//! Property-based tests for topology, routing and gathering invariants.

use ami_net::routing::route_to_sink;
use ami_net::{
    build_routes, simulate_gathering, simulate_gathering_observed, NetworkConfig, RoutingStrategy,
    Topology,
};
use ami_radio::RadioEnergyModel;
use ami_units::{Energy, Length};
use proptest::prelude::*;

/// One receive-energy per delivered packet: the metric-vs-simulation
/// bookkeeping difference at the (mains-powered, uncharged) sink.
fn radio_rx_slack(config: &NetworkConfig, delivered: u64) -> f64 {
    config
        .radio
        .receive_energy(config.packet.total_bits())
        .as_joules()
        * delivered as f64
}

proptest! {
    /// Random topologies are deterministic in their seed.
    #[test]
    fn topology_deterministic(n in 2usize..50, seed in 0u64..1000) {
        let a = Topology::random(n, Length::from_meters(100.0), seed);
        let b = Topology::random(n, Length::from_meters(100.0), seed);
        prop_assert_eq!(a, b);
    }

    /// Distances are symmetric, non-negative, and satisfy the triangle
    /// inequality on random topologies.
    #[test]
    fn metric_axioms(n in 3usize..30, seed in 0u64..500) {
        let topo = Topology::random(n, Length::from_meters(100.0), seed);
        let ids: Vec<_> = topo.ids().collect();
        for &a in ids.iter().take(5) {
            for &b in ids.iter().take(5) {
                let dab = topo.distance(a, b);
                prop_assert!((dab.as_meters() - topo.distance(b, a).as_meters()).abs() < 1e-12);
                if a == b {
                    prop_assert_eq!(dab.as_meters(), 0.0);
                }
                for &c in ids.iter().take(5) {
                    let dac = topo.distance(a, c).as_meters();
                    let dcb = topo.distance(c, b).as_meters();
                    prop_assert!(dab.as_meters() <= dac + dcb + 1e-9);
                }
            }
        }
    }

    /// Every minimum-energy route terminates at the sink (or is empty),
    /// never revisits a node, and respects the hop range.
    #[test]
    fn route_invariants(n in 2usize..60, seed in 0u64..300, range_m in 20.0..80.0f64) {
        let topo = Topology::random(n, Length::from_meters(150.0), seed);
        let range = Length::from_meters(range_m);
        let radio = RadioEnergyModel::short_range_2003();
        let table = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio, range);
        for id in topo.sensor_ids() {
            let path = route_to_sink(&table, &topo, id);
            if path.is_empty() {
                continue;
            }
            prop_assert_eq!(*path.last().unwrap(), topo.sink());
            let mut seen = std::collections::HashSet::new();
            let mut current = id;
            seen.insert(current);
            for hop in &path {
                prop_assert!(topo.distance(current, *hop) <= range);
                prop_assert!(seen.insert(*hop), "cycle via {hop}");
                current = *hop;
            }
        }
    }

    /// Gathering accounting: delivered ≤ offered; every joule drawn from
    /// a budget lands in the ledger; initial energy minus true residuals
    /// equals total spent (conservation — residuals are unclamped, so
    /// this balances exactly even when nodes overdraw); every offered
    /// packet is delivered or counted dropped.
    #[test]
    fn gathering_accounting(
        n in 2usize..30,
        seed in 0u64..200,
        rounds in 1u64..100,
        budget_mj in 5.0..50_000.0f64,
    ) {
        let topo = Topology::random(n, Length::from_meters(80.0), seed);
        let mut config = NetworkConfig::sensor_default();
        config.node_energy = Energy::from_millijoules(budget_mj);
        let (report, obs) =
            simulate_gathering_observed(&topo, RoutingStrategy::MinimumEnergy, &config, rounds);
        prop_assert!(report.delivered_packets <= rounds * (n as u64 - 1));
        prop_assert!(report.total_energy.as_joules() > 0.0);
        prop_assert_eq!(report.rounds, rounds);

        // Residuals are true balances: bounded above by the initial
        // budget, unclamped below; the overdraft total matches them.
        let node_j = config.node_energy.as_joules();
        let mut overdraft = 0.0;
        for residual in &report.residual_energy {
            prop_assert!(residual.as_joules() <= node_j);
            overdraft += (-residual.as_joules()).max(0.0);
        }
        prop_assert!((report.overdraft().as_joules() - overdraft).abs() <= 1e-12);

        // Conservation: what the nodes started with, minus what they
        // still hold, is exactly what the run reports as spent.
        let initial = node_j * (n as f64 - 1.0);
        let residual: f64 = report.residual_energy.iter().map(|e| e.as_joules()).sum();
        prop_assert!((initial - residual - report.total_energy.as_joules()).abs()
            <= 1e-9 * initial);

        // The ledger partitions the same total, and the counter tree
        // loses no packets.
        let total = report.total_energy.as_joules();
        prop_assert!((obs.ledger.total().as_joules() - total).abs() <= 1e-9 * total);
        prop_assert!(obs.packets.is_conserved());
        prop_assert_eq!(obs.packets.delivered, report.delivered_packets);
        prop_assert!((obs.ledger.overdraft().as_joules() - overdraft).abs() <= 1e-12);
    }

    /// Dijkstra optimality: for every node whose direct hop to the sink is
    /// within radio range, the chosen route's metric cost never exceeds the
    /// single-hop metric. (Beyond range the comparison is ill-posed: the
    /// unconstrained direct strategy may "cheat" with an over-range blast.)
    #[test]
    fn min_energy_routing_is_metric_optimal(n in 3usize..40, seed in 0u64..150) {
        let topo = Topology::random(n, Length::from_meters(120.0), seed);
        let radio = RadioEnergyModel::short_range_2003();
        let range = Length::from_meters(45.0);
        let table = build_routes(&topo, RoutingStrategy::MinimumEnergy, &radio, range);
        for id in topo.sensor_ids() {
            let direct_d = topo.distance(id, topo.sink());
            if direct_d > range {
                continue;
            }
            let path = route_to_sink(&table, &topo, id);
            prop_assert!(!path.is_empty(), "in-range node must be connected");
            let mut cost = 0.0;
            let mut current = id;
            for hop in &path {
                cost += radio
                    .hop_energy_per_bit(topo.distance(current, *hop))
                    .as_joules_per_bit();
                current = *hop;
            }
            let direct_cost = radio.hop_energy_per_bit(direct_d).as_joules_per_bit();
            prop_assert!(
                cost <= direct_cost * (1.0 + 1e-9),
                "route {cost:.3e} beats direct {direct_cost:.3e}"
            );
        }
    }

    /// With unconstrained range and zero idle power, minimum-energy routing
    /// never spends more than direct-to-sink in the gathering simulation.
    #[test]
    fn min_energy_beats_direct_when_range_unconstrained(n in 3usize..25, seed in 0u64..100) {
        let topo = Topology::random(n, Length::from_meters(120.0), seed);
        let mut config = NetworkConfig::sensor_default();
        config.idle_power = ami_units::Power::ZERO;
        config.node_energy = Energy::from_joules(1000.0); // nobody dies
        config.max_hop = Length::from_meters(1e6); // every edge exists
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 10);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 10);
        prop_assert_eq!(direct.delivered_packets, multi.delivered_packets);
        // The relayed path pays one un-modelled sink-rx per packet in the
        // metric but not in the simulation, so multi is conservatively
        // bounded by direct plus one rx per delivered packet.
        let slack = radio_rx_slack(&config, multi.delivered_packets);
        prop_assert!(
            multi.total_energy.as_joules()
                <= direct.total_energy.as_joules() + slack
        );
    }

    /// Grid radius equals the corner-to-corner distance.
    #[test]
    fn grid_radius(side in 2usize..10, spacing in 1.0..50.0f64) {
        let topo = Topology::grid(side, Length::from_meters(spacing));
        let expected = spacing * ((side - 1) as f64) * 2f64.sqrt();
        prop_assert!((topo.radius().as_meters() - expected).abs() < 1e-9);
    }

    /// Lossy gathering: delivered ≤ offered, transmissions bounded by the
    /// ARQ budget times hops, and energy strictly positive.
    #[test]
    fn lossy_accounting(side in 2usize..6, exp in 2.0..5.0f64, budget in 1u32..8, seed in 0u64..50) {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let mut config = ami_net::LossyConfig::bruised_channel();
        config.ber = 10f64.powf(-exp);
        config.arq = ami_radio::StopAndWaitArq::new(budget);
        let rounds = 20;
        let report = ami_net::simulate_lossy_gathering(&topo, &config, rounds, seed);
        prop_assert!(report.delivered <= report.offered);
        prop_assert!(report.offered <= rounds * (topo.len() as u64 - 1));
        // Per offered packet at most budget × longest-path transmissions.
        let max_hops = topo.len() as u64;
        prop_assert!(report.transmissions <= report.offered * u64::from(budget) * max_hops);
        prop_assert!(report.total_energy.as_joules() > 0.0);
    }

    /// Aggregation: sink volume never exceeds offered volume, and the
    /// report is deterministic (pure function).
    #[test]
    fn aggregation_bounds(side in 2usize..7, fusion in 0.0..1.0f64) {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let radio = RadioEnergyModel::short_range_2003();
        let report = ami_net::analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            ami_units::DataVolume::from_bytes(16.0),
            ami_units::DataVolume::from_bits(112.0),
            fusion,
        );
        prop_assert!(report.sink_volume.as_bits() <= report.offered_volume.as_bits() + 1e-6);
        prop_assert!(report.round_energy.as_joules() > 0.0);
        prop_assert_eq!(report.disconnected, 0);
    }
}
