//! The scenario data model: what a simulation *is*, as checkable data.
//!
//! A [`ScenarioSpec`] captures everything the experiment binaries used
//! to hard-code — topology, device/network parameters, workload kind,
//! fault mix, sweep axes, replication plan — in a strict JSON format:
//!
//! * unknown fields are rejected everywhere (a typoed knob is an error,
//!   not a silently ignored default);
//! * duplicate keys, non-finite numbers and malformed documents are
//!   rejected by the [`json`](crate::json) reader;
//! * [`validate`](ScenarioSpec::validate) enforces the semantic rules
//!   (positive dimensions, parseable fault specs, workload/topology
//!   compatibility) before anything is compiled.
//!
//! Every spec has a **canonical form**
//! ([`canonical_json`](ScenarioSpec::canonical_json)): fixed field
//! order, defaults filled
//! in, shortest-roundtrip floats. Two files that differ only in key
//! order, whitespace or spelled-out defaults canonicalize to the same
//! bytes and therefore the same [`ScenarioHash`] — the key the compile
//! cache and the batch service deduplicate on.
//!
//! # Example
//!
//! ```
//! use ami_scenario::ScenarioSpec;
//!
//! let spec = ScenarioSpec::from_json_str(r#"{
//!     "name": "demo",
//!     "rounds": 50,
//!     "topology": {"kind": "grid", "side": 4, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}
//! }"#).unwrap();
//! // Key order and spelled-out defaults do not change the hash.
//! let reordered = ScenarioSpec::from_json_str(r#"{
//!     "workload": {"strategy": "minimum_energy", "kind": "gathering"},
//!     "topology": {"spacing_m": 30.0, "side": 4, "kind": "grid"},
//!     "seed": 2003,
//!     "rounds": 50,
//!     "name": "demo"
//! }"#).unwrap();
//! assert_eq!(spec.hash(), reordered.hash());
//! assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "typo": 1}"#).is_err());
//! ```

use crate::json::{parse, JsonError, JsonValue};
use ami_net::{NetworkConfig, RoutingStrategy};
use ami_sim::fault::FaultSpec;
use ami_sim::obs::to_json;
use ami_units::{Energy, Length, Power, TimeSpan};
use serde::ser::{Serialize, SerializeStruct, Serializer};
use std::fmt;

/// Default base seed for scenarios that do not pin one (the repo-wide
/// experiment seed).
pub const DEFAULT_SEED: u64 = 2003;

/// Largest integer a scenario file can carry exactly (JSON numbers ride
/// through `f64`).
pub const MAX_EXACT_INT: u64 = 1 << 53;

/// Anything that can go wrong loading, validating or compiling a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The document is not well-formed JSON.
    Json(JsonError),
    /// The document is JSON but not a valid scenario.
    Spec(String),
    /// The scenario file could not be read.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(err) => write!(f, "invalid JSON: {err}"),
            ScenarioError::Spec(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Io(msg) => write!(f, "cannot read scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(err: JsonError) -> Self {
        ScenarioError::Json(err)
    }
}

fn spec_err<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Spec(msg.into()))
}

/// The node layout of a network scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// A `side × side` grid at fixed spacing, sink at a corner.
    Grid {
        /// Nodes per side.
        side: u32,
        /// Grid pitch in meters.
        spacing_m: f64,
    },
    /// `nodes` uniform-random positions in a square field, sink at the
    /// center, drawn deterministically from the run seed.
    Random {
        /// Node count (including the sink).
        nodes: u32,
        /// Field side in meters.
        field_m: f64,
    },
    /// `leaves` nodes on a circle around a central sink.
    Star {
        /// Leaf count (sink excluded).
        leaves: u32,
        /// Circle radius in meters.
        radius_m: f64,
    },
}

impl TopologySpec {
    /// The node count this layout produces (sink included).
    pub fn node_count(&self) -> usize {
        match self {
            TopologySpec::Grid { side, .. } => (*side as usize) * (*side as usize),
            TopologySpec::Random { nodes, .. } => *nodes as usize,
            TopologySpec::Star { leaves, .. } => *leaves as usize + 1,
        }
    }

    /// Builds the concrete topology for `seed` (only
    /// [`Random`](TopologySpec::Random) layouts actually consume it).
    pub fn build(&self, seed: u64) -> ami_net::Topology {
        match *self {
            TopologySpec::Grid { side, spacing_m } => {
                ami_net::Topology::grid(side as usize, Length::from_meters(spacing_m))
            }
            TopologySpec::Random { nodes, field_m } => {
                ami_net::Topology::random(nodes as usize, Length::from_meters(field_m), seed)
            }
            TopologySpec::Star { leaves, radius_m } => {
                ami_net::Topology::star(leaves as usize, Length::from_meters(radius_m))
            }
        }
    }

    /// Whether the layout depends on the run seed.
    pub fn is_seeded(&self) -> bool {
        matches!(self, TopologySpec::Random { .. })
    }
}

/// Numeric network/device parameters; defaults mirror
/// [`NetworkConfig::sensor_default`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkParams {
    /// Interval between reporting rounds, seconds.
    pub report_interval_s: f64,
    /// Baseline (MAC + sensing + leakage) power, microwatts.
    pub idle_power_uw: f64,
    /// Initial energy budget per sensor node, joules.
    pub node_energy_j: f64,
    /// Maximum hop length, meters.
    pub max_hop_m: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        // Numerically equal to NetworkConfig::sensor_default(); pinned
        // by a unit test below so the two can never drift apart.
        Self {
            report_interval_s: 60.0,
            idle_power_uw: 20.0,
            node_energy_j: 50.0,
            max_hop_m: 45.0,
        }
    }
}

impl NetworkParams {
    /// Lowers the parameters onto the toolkit's [`NetworkConfig`] (2003
    /// short-range radio, sensor-report packets — the only device
    /// profile the format currently describes).
    pub fn to_network_config(&self) -> NetworkConfig {
        let mut config = NetworkConfig::sensor_default();
        config.report_interval = TimeSpan::from_seconds(self.report_interval_s);
        config.idle_power = Power::from_microwatts(self.idle_power_uw);
        config.node_energy = Energy::from_joules(self.node_energy_j);
        config.max_hop = Length::from_meters(self.max_hop_m);
        config
    }
}

/// What the scenario actually runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Round-based data gathering ([`ami_net::simulate_gathering`] and
    /// friends; replicable over seeds).
    Gathering {
        /// Routing strategy.
        strategy: RoutingStrategy,
    },
    /// Gathering over lossy links with per-hop ARQ
    /// ([`ami_net::simulate_lossy_gathering`]).
    Lossy {
        /// Channel bit error rate per hop.
        ber: f64,
        /// Stop-and-wait retransmission budget per hop.
        arq_attempts: u32,
        /// Region-parallel round execution: `Some(true)` forces the
        /// PDES lossy engine on (when more than one worker is
        /// available), `Some(false)` pins the run serial, `None` (the
        /// default, and the only canonical-form spelling for old specs)
        /// lets the runner decide by size. Results are bit-identical
        /// either way — the counter-RNG kernel guarantees it — so this
        /// knob only moves wall-clock time.
        parallel_rounds: Option<bool>,
    },
    /// The CS1 single-node duty-cycle study (harvest vs load across the
    /// MAC check interval; needs a `check_interval_s` sweep axis).
    Cs1DutyCycle {
        /// Span of the energy ledger, days.
        ledger_days: f64,
    },
}

impl WorkloadSpec {
    /// Short kind tag, as written in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Gathering { .. } => "gathering",
            WorkloadSpec::Lossy { .. } => "lossy",
            WorkloadSpec::Cs1DutyCycle { .. } => "cs1_duty_cycle",
        }
    }
}

/// One named sweep axis: a list of numeric values an experiment
/// iterates over.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Axis name (`[a-z0-9_.-]`, unique within the spec).
    pub name: String,
    /// The values, in sweep order; all finite.
    pub values: Vec<f64>,
}

/// A complete scenario description. See the [module docs](self) for the
/// format contract and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (`[a-z0-9_.-]`, 1–64 chars); becomes the manifest
    /// experiment tag.
    pub name: String,
    /// Base seed; replication `k` runs at `seed + k`.
    pub seed: u64,
    /// Rounds per run (network workloads; must be 0 for CS1).
    pub rounds: u64,
    /// Seeded replications (gathering only; 1 = a single run).
    pub replications: u32,
    /// Node layout (network workloads only).
    pub topology: Option<TopologySpec>,
    /// Device/network numeric parameters.
    pub network: NetworkParams,
    /// The workload to execute.
    pub workload: WorkloadSpec,
    /// Fault mix in the `AMBIENCE_FAULTS` grammar, if any.
    pub faults: Option<String>,
    /// Named sweep axes.
    pub sweeps: Vec<SweepAxis>,
}

impl ScenarioSpec {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Json`] on malformed JSON, [`ScenarioError::Spec`]
    /// on unknown fields, missing requirements or semantic violations.
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        let doc = parse(text)?;
        let spec = Self::from_value(&doc)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a `.scenario.json` file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] when the file cannot be read, otherwise as
    /// [`from_json_str`](Self::from_json_str).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|err| ScenarioError::Io(format!("{}: {err}", path.display())))?;
        Self::from_json_str(&text).map_err(|err| match err {
            ScenarioError::Json(j) => {
                ScenarioError::Spec(format!("{}: invalid JSON: {j}", path.display()))
            }
            ScenarioError::Spec(msg) => ScenarioError::Spec(format!("{}: {msg}", path.display())),
            other => other,
        })
    }

    /// Builds and validates a spec from an already-parsed JSON value
    /// (the service layer decodes whole request frames and hands the
    /// `scenario` member here).
    ///
    /// # Errors
    ///
    /// As [`from_json_str`](Self::from_json_str), minus the JSON parse
    /// stage.
    pub fn from_json_value(doc: &JsonValue) -> Result<Self, ScenarioError> {
        let spec = Self::from_value(doc)?;
        spec.validate()?;
        Ok(spec)
    }

    fn from_value(doc: &JsonValue) -> Result<Self, ScenarioError> {
        let mut fields = Fields::new(doc, "scenario")?;
        let name = fields.required_str("name")?.to_owned();
        let seed = fields.u64_or("seed", DEFAULT_SEED)?;
        let rounds = fields.u64_or("rounds", 0)?;
        let replications = u32::try_from(fields.u64_or("replications", 1)?)
            .map_err(|_| ScenarioError::Spec("replications overflows u32".into()))?;
        let topology = match fields.take("topology") {
            Some(value) => Some(topology_from_value(value)?),
            None => None,
        };
        let network = match fields.take("network") {
            Some(value) => network_from_value(value)?,
            None => NetworkParams::default(),
        };
        let workload = workload_from_value(
            fields
                .take("workload")
                .ok_or_else(|| ScenarioError::Spec("missing required field `workload`".into()))?,
        )?;
        let faults = match fields.take("faults") {
            Some(value) => Some(
                value
                    .as_str()
                    .ok_or_else(|| {
                        ScenarioError::Spec(format!(
                            "`faults` must be a string, found {}",
                            value.type_name()
                        ))
                    })?
                    .to_owned(),
            ),
            None => None,
        };
        let sweeps = match fields.take("sweeps") {
            Some(value) => sweeps_from_value(value)?,
            None => Vec::new(),
        };
        fields.finish()?;
        Ok(Self {
            name,
            seed,
            rounds,
            replications,
            topology,
            network,
            workload,
            faults,
            sweeps,
        })
    }

    /// Checks every semantic rule of the format.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        check_name(&self.name, "name")?;
        if self.seed > MAX_EXACT_INT {
            return spec_err("seed exceeds 2^53 (not exactly representable in JSON)");
        }
        if self.replications == 0 {
            return spec_err("replications must be >= 1");
        }
        if let Some(topology) = &self.topology {
            match *topology {
                TopologySpec::Grid { side, spacing_m } => {
                    if side < 2 {
                        return spec_err("grid side must be >= 2 (one sink plus sensors)");
                    }
                    check_positive(spacing_m, "topology.spacing_m")?;
                }
                TopologySpec::Random { nodes, field_m } => {
                    if nodes < 2 {
                        return spec_err("random topology needs >= 2 nodes");
                    }
                    check_positive(field_m, "topology.field_m")?;
                }
                TopologySpec::Star { leaves, radius_m } => {
                    if leaves < 1 {
                        return spec_err("star topology needs >= 1 leaf");
                    }
                    check_positive(radius_m, "topology.radius_m")?;
                }
            }
        }
        check_positive(self.network.report_interval_s, "network.report_interval_s")?;
        check_positive(self.network.idle_power_uw, "network.idle_power_uw")?;
        check_positive(self.network.node_energy_j, "network.node_energy_j")?;
        check_positive(self.network.max_hop_m, "network.max_hop_m")?;
        match &self.workload {
            WorkloadSpec::Gathering { .. } => {
                if self.topology.is_none() {
                    return spec_err("gathering workloads require a `topology`");
                }
                if self.rounds == 0 {
                    return spec_err("gathering workloads require `rounds` >= 1");
                }
            }
            WorkloadSpec::Lossy {
                ber, arq_attempts, ..
            } => {
                if self.topology.is_none() {
                    return spec_err("lossy workloads require a `topology`");
                }
                if self.rounds == 0 {
                    return spec_err("lossy workloads require `rounds` >= 1");
                }
                if !(0.0..1.0).contains(ber) {
                    return spec_err("workload.ber must lie in [0, 1)");
                }
                if *arq_attempts == 0 {
                    return spec_err("workload.arq_attempts must be >= 1");
                }
                if self.replications > 1 {
                    return spec_err("lossy workloads are single-run (replications must be 1)");
                }
            }
            WorkloadSpec::Cs1DutyCycle { ledger_days } => {
                check_positive(*ledger_days, "workload.ledger_days")?;
                if self.topology.is_some() {
                    return spec_err("cs1_duty_cycle is a single-node study: no `topology`");
                }
                if self.rounds != 0 {
                    return spec_err(
                        "cs1_duty_cycle takes no `rounds` (time comes from ledger_days)",
                    );
                }
                if self.replications > 1 {
                    return spec_err("cs1_duty_cycle is deterministic: replications must be 1");
                }
                if self.axis("check_interval_s").is_none() {
                    return spec_err("cs1_duty_cycle requires a `check_interval_s` sweep axis");
                }
            }
        }
        if let Some(faults) = &self.faults {
            FaultSpec::parse(faults)
                .map_err(|err| ScenarioError::Spec(format!("invalid `faults` spec: {err}")))?;
        }
        let mut seen: Vec<&str> = Vec::new();
        for axis in &self.sweeps {
            check_name(&axis.name, "sweep axis name")?;
            if seen.contains(&axis.name.as_str()) {
                return spec_err(format!("duplicate sweep axis {:?}", axis.name));
            }
            seen.push(&axis.name);
            if axis.values.is_empty() {
                return spec_err(format!("sweep axis {:?} has no values", axis.name));
            }
            for &v in &axis.values {
                if !v.is_finite() {
                    return spec_err(format!("sweep axis {:?} has a non-finite value", axis.name));
                }
            }
        }
        Ok(())
    }

    /// The values of the named sweep axis, if present.
    pub fn axis(&self, name: &str) -> Option<&[f64]> {
        self.sweeps
            .iter()
            .find(|axis| axis.name == name)
            .map(|axis| axis.values.as_slice())
    }

    /// An integral sweep axis as `usize` values.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] when the axis is missing or any value is
    /// not a non-negative integer below 2^53.
    pub fn axis_usize(&self, name: &str) -> Result<Vec<usize>, ScenarioError> {
        let values = self
            .axis(name)
            .ok_or_else(|| ScenarioError::Spec(format!("missing sweep axis {name:?}")))?;
        values
            .iter()
            .map(|&v| {
                if v.fract() == 0.0 && (0.0..=MAX_EXACT_INT as f64).contains(&v) {
                    Ok(v as usize)
                } else {
                    spec_err(format!("sweep axis {name:?}: {v} is not a usize"))
                }
            })
            .collect()
    }

    /// The fault mix parsed into a [`FaultSpec`], if the scenario has
    /// one. Always succeeds on a validated spec.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] when the grammar does not parse.
    pub fn fault_spec(&self) -> Result<Option<FaultSpec>, ScenarioError> {
        match &self.faults {
            None => Ok(None),
            Some(text) => FaultSpec::parse(text)
                .map(Some)
                .map_err(|err| ScenarioError::Spec(format!("invalid `faults` spec: {err}"))),
        }
    }

    /// The canonical rendering: fixed field order, defaults filled,
    /// shortest-roundtrip floats. Parsing the canonical form yields a
    /// spec equal to `self`, and equal canonical bytes ⟺ equal hashes.
    pub fn canonical_json(&self) -> String {
        to_json(self)
    }

    /// The canonical content hash (FNV-1a 64 over
    /// [`canonical_json`](Self::canonical_json)).
    pub fn hash(&self) -> ScenarioHash {
        ScenarioHash::of(self.canonical_json().as_bytes())
    }
}

/// The canonical content hash of a spec: equal for any two documents
/// that canonicalize identically, whatever their key order or spelling
/// of defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioHash(pub u64);

impl ScenarioHash {
    /// FNV-1a 64 over `bytes`.
    pub fn of(bytes: &[u8]) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(hash)
    }
}

impl fmt::Display for ScenarioHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn check_name(name: &str, what: &str) -> Result<(), ScenarioError> {
    if name.is_empty() || name.len() > 64 {
        return spec_err(format!("{what} must be 1–64 characters"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '-' | '_' | '.'))
    {
        return spec_err(format!("{what} {name:?} may only contain [a-z0-9_.-]"));
    }
    Ok(())
}

fn check_positive(value: f64, what: &str) -> Result<(), ScenarioError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        spec_err(format!(
            "{what} must be a positive finite number, got {value}"
        ))
    }
}

/// Tracks which members of an object have been consumed so the leftovers
/// can be rejected by name — the unknown-field guard every spec object
/// goes through.
struct Fields<'a> {
    members: &'a [(String, JsonValue)],
    taken: Vec<bool>,
    context: &'static str,
}

impl<'a> Fields<'a> {
    fn new(value: &'a JsonValue, context: &'static str) -> Result<Self, ScenarioError> {
        match value {
            JsonValue::Object(members) => Ok(Self {
                members,
                taken: vec![false; members.len()],
                context,
            }),
            other => spec_err(format!(
                "`{context}` must be an object, found {}",
                other.type_name()
            )),
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a JsonValue> {
        for (i, (name, value)) in self.members.iter().enumerate() {
            if name == key {
                self.taken[i] = true;
                return Some(value);
            }
        }
        None
    }

    fn required_str(&mut self, key: &str) -> Result<&'a str, ScenarioError> {
        let value = self.take(key).ok_or_else(|| {
            ScenarioError::Spec(format!(
                "missing required field `{key}` in `{}`",
                self.context
            ))
        })?;
        value.as_str().ok_or_else(|| {
            ScenarioError::Spec(format!(
                "`{}.{key}` must be a string, found {}",
                self.context,
                value.type_name()
            ))
        })
    }

    fn f64_field(&mut self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(value) => value.as_f64().map(Some).ok_or_else(|| {
                ScenarioError::Spec(format!(
                    "`{}.{key}` must be a number, found {}",
                    self.context,
                    value.type_name()
                ))
            }),
        }
    }

    fn bool_field(&mut self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Bool(flag)) => Ok(Some(*flag)),
            Some(other) => spec_err(format!(
                "`{}.{key}` must be a boolean, found {}",
                self.context,
                other.type_name()
            )),
        }
    }

    fn required_f64(&mut self, key: &str) -> Result<f64, ScenarioError> {
        self.f64_field(key)?.ok_or_else(|| {
            ScenarioError::Spec(format!(
                "missing required field `{key}` in `{}`",
                self.context
            ))
        })
    }

    fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.f64_field(key)? {
            None => Ok(default),
            Some(v) => {
                if v.fract() == 0.0 && (0.0..=MAX_EXACT_INT as f64).contains(&v) {
                    Ok(v as u64)
                } else {
                    spec_err(format!(
                        "`{}.{key}` must be a non-negative integer <= 2^53, got {v}",
                        self.context
                    ))
                }
            }
        }
    }

    fn required_u64(&mut self, key: &str) -> Result<u64, ScenarioError> {
        if self.members.iter().all(|(name, _)| name != key) {
            return spec_err(format!(
                "missing required field `{key}` in `{}`",
                self.context
            ));
        }
        self.u64_or(key, 0)
    }

    fn finish(self) -> Result<(), ScenarioError> {
        let unknown: Vec<&str> = self
            .members
            .iter()
            .zip(&self.taken)
            .filter(|(_, &taken)| !taken)
            .map(|((name, _), _)| name.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            spec_err(format!(
                "unknown field(s) in `{}`: {}",
                self.context,
                unknown.join(", ")
            ))
        }
    }
}

fn topology_from_value(value: &JsonValue) -> Result<TopologySpec, ScenarioError> {
    let mut fields = Fields::new(value, "topology")?;
    let kind = fields.required_str("kind")?;
    let spec = match kind {
        "grid" => TopologySpec::Grid {
            side: fields.required_u64("side")? as u32,
            spacing_m: fields.required_f64("spacing_m")?,
        },
        "random" => TopologySpec::Random {
            nodes: fields.required_u64("nodes")? as u32,
            field_m: fields.required_f64("field_m")?,
        },
        "star" => TopologySpec::Star {
            leaves: fields.required_u64("leaves")? as u32,
            radius_m: fields.required_f64("radius_m")?,
        },
        other => {
            return spec_err(format!(
                "unknown topology kind {other:?} (expected grid, random or star)"
            ))
        }
    };
    fields.finish()?;
    Ok(spec)
}

fn network_from_value(value: &JsonValue) -> Result<NetworkParams, ScenarioError> {
    let defaults = NetworkParams::default();
    let mut fields = Fields::new(value, "network")?;
    let params = NetworkParams {
        report_interval_s: fields
            .f64_field("report_interval_s")?
            .unwrap_or(defaults.report_interval_s),
        idle_power_uw: fields
            .f64_field("idle_power_uw")?
            .unwrap_or(defaults.idle_power_uw),
        node_energy_j: fields
            .f64_field("node_energy_j")?
            .unwrap_or(defaults.node_energy_j),
        max_hop_m: fields.f64_field("max_hop_m")?.unwrap_or(defaults.max_hop_m),
    };
    fields.finish()?;
    Ok(params)
}

fn workload_from_value(value: &JsonValue) -> Result<WorkloadSpec, ScenarioError> {
    let mut fields = Fields::new(value, "workload")?;
    let kind = fields.required_str("kind")?;
    let spec = match kind {
        "gathering" => {
            let strategy = match fields.required_str("strategy")? {
                "direct_to_sink" => RoutingStrategy::DirectToSink,
                "minimum_energy" => RoutingStrategy::MinimumEnergy,
                other => {
                    return spec_err(format!(
                        "unknown strategy {other:?} (expected direct_to_sink or minimum_energy)"
                    ))
                }
            };
            WorkloadSpec::Gathering { strategy }
        }
        "lossy" => WorkloadSpec::Lossy {
            ber: fields.required_f64("ber")?,
            arq_attempts: fields.required_u64("arq_attempts")? as u32,
            parallel_rounds: fields.bool_field("parallel_rounds")?,
        },
        "cs1_duty_cycle" => WorkloadSpec::Cs1DutyCycle {
            ledger_days: fields.required_f64("ledger_days")?,
        },
        other => {
            return spec_err(format!(
                "unknown workload kind {other:?} (expected gathering, lossy or cs1_duty_cycle)"
            ))
        }
    };
    fields.finish()?;
    Ok(spec)
}

fn sweeps_from_value(value: &JsonValue) -> Result<Vec<SweepAxis>, ScenarioError> {
    let JsonValue::Array(items) = value else {
        return spec_err(format!(
            "`sweeps` must be an array, found {}",
            value.type_name()
        ));
    };
    items
        .iter()
        .map(|item| {
            let mut fields = Fields::new(item, "sweeps[]")?;
            let name = fields.required_str("name")?.to_owned();
            let values_value = fields.take("values").ok_or_else(|| {
                ScenarioError::Spec(format!("sweep axis {name:?} is missing `values`"))
            })?;
            let JsonValue::Array(raw) = values_value else {
                return spec_err(format!(
                    "sweep axis {name:?}: `values` must be an array, found {}",
                    values_value.type_name()
                ));
            };
            let values = raw
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        ScenarioError::Spec(format!(
                            "sweep axis {name:?}: values must be numbers, found {}",
                            v.type_name()
                        ))
                    })
                })
                .collect::<Result<Vec<f64>, _>>()?;
            fields.finish()?;
            Ok(SweepAxis { name, values })
        })
        .collect()
}

// ---- canonical serialization (the vendored serde data model) ----
//
// The derive stand-in only handles fieldless enums, so the spec types
// implement `Serialize` by hand. Field order here IS the canonical
// order; the round-trip test pins parse(canonical) == spec.

impl Serialize for TopologySpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TopologySpec", 3)?;
        match self {
            TopologySpec::Grid { side, spacing_m } => {
                s.serialize_field("kind", "grid")?;
                s.serialize_field("side", side)?;
                s.serialize_field("spacing_m", spacing_m)?;
            }
            TopologySpec::Random { nodes, field_m } => {
                s.serialize_field("kind", "random")?;
                s.serialize_field("nodes", nodes)?;
                s.serialize_field("field_m", field_m)?;
            }
            TopologySpec::Star { leaves, radius_m } => {
                s.serialize_field("kind", "star")?;
                s.serialize_field("leaves", leaves)?;
                s.serialize_field("radius_m", radius_m)?;
            }
        }
        s.end()
    }
}

impl Serialize for NetworkParams {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("NetworkParams", 4)?;
        s.serialize_field("report_interval_s", &self.report_interval_s)?;
        s.serialize_field("idle_power_uw", &self.idle_power_uw)?;
        s.serialize_field("node_energy_j", &self.node_energy_j)?;
        s.serialize_field("max_hop_m", &self.max_hop_m)?;
        s.end()
    }
}

impl Serialize for WorkloadSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("WorkloadSpec", 3)?;
        match self {
            WorkloadSpec::Gathering { strategy } => {
                s.serialize_field("kind", "gathering")?;
                s.serialize_field(
                    "strategy",
                    match strategy {
                        RoutingStrategy::DirectToSink => "direct_to_sink",
                        RoutingStrategy::MinimumEnergy => "minimum_energy",
                    },
                )?;
            }
            WorkloadSpec::Lossy {
                ber,
                arq_attempts,
                parallel_rounds,
            } => {
                s.serialize_field("kind", "lossy")?;
                s.serialize_field("ber", ber)?;
                s.serialize_field("arq_attempts", arq_attempts)?;
                // Only spelled when set: the canonical form (and hence
                // the content hash) of every pre-knob spec is unchanged.
                if let Some(parallel) = parallel_rounds {
                    s.serialize_field("parallel_rounds", parallel)?;
                }
            }
            WorkloadSpec::Cs1DutyCycle { ledger_days } => {
                s.serialize_field("kind", "cs1_duty_cycle")?;
                s.serialize_field("ledger_days", ledger_days)?;
            }
        }
        s.end()
    }
}

impl Serialize for SweepAxis {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SweepAxis", 2)?;
        s.serialize_field("name", &self.name)?;
        s.serialize_field("values", &self.values)?;
        s.end()
    }
}

impl Serialize for ScenarioSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ScenarioSpec", 9)?;
        s.serialize_field("name", &self.name)?;
        s.serialize_field("seed", &self.seed)?;
        if self.rounds != 0 {
            s.serialize_field("rounds", &self.rounds)?;
        }
        s.serialize_field("replications", &self.replications)?;
        if let Some(topology) = &self.topology {
            s.serialize_field("topology", topology)?;
        }
        s.serialize_field("network", &self.network)?;
        s.serialize_field("workload", &self.workload)?;
        if let Some(faults) = &self.faults {
            s.serialize_field("faults", faults)?;
        }
        if !self.sweeps.is_empty() {
            s.serialize_field("sweeps", &self.sweeps)?;
        }
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> &'static str {
        r#"{
            "name": "t",
            "rounds": 10,
            "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
            "workload": {"kind": "gathering", "strategy": "minimum_energy"}
        }"#
    }

    #[test]
    fn defaults_fill_in() {
        let spec = ScenarioSpec::from_json_str(minimal()).unwrap();
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.replications, 1);
        assert_eq!(spec.network, NetworkParams::default());
        assert!(spec.faults.is_none() && spec.sweeps.is_empty());
    }

    #[test]
    fn network_params_default_matches_sensor_default() {
        let from_params = NetworkParams::default().to_network_config();
        assert_eq!(from_params, NetworkConfig::sensor_default());
    }

    #[test]
    fn canonical_round_trips() {
        let spec = ScenarioSpec::from_json_str(minimal()).unwrap();
        let canonical = spec.canonical_json();
        let reparsed = ScenarioSpec::from_json_str(&canonical).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(canonical, reparsed.canonical_json());
    }

    #[test]
    fn unknown_fields_rejected_at_every_level() {
        for (doc, what) in [
            (
                r#"{"name":"t","typo":1,"workload":{"kind":"cs1_duty_cycle","ledger_days":1},"sweeps":[{"name":"check_interval_s","values":[1]}]}"#,
                "top level",
            ),
            (
                r#"{"name":"t","rounds":1,"topology":{"kind":"grid","side":3,"spacing_m":30,"oops":1},"workload":{"kind":"gathering","strategy":"minimum_energy"}}"#,
                "topology",
            ),
            (
                r#"{"name":"t","rounds":1,"topology":{"kind":"grid","side":3,"spacing_m":30},"workload":{"kind":"gathering","strategy":"minimum_energy","x":2}}"#,
                "workload",
            ),
            (
                r#"{"name":"t","rounds":1,"network":{"warp":9},"topology":{"kind":"grid","side":3,"spacing_m":30},"workload":{"kind":"gathering","strategy":"minimum_energy"}}"#,
                "network",
            ),
        ] {
            let err = ScenarioSpec::from_json_str(doc).unwrap_err();
            assert!(
                matches!(&err, ScenarioError::Spec(msg) if msg.contains("unknown field")),
                "{what}: {err}"
            );
        }
    }

    #[test]
    fn semantic_rules_enforced() {
        // Gathering without topology.
        let err = ScenarioSpec::from_json_str(
            r#"{"name":"t","rounds":1,"workload":{"kind":"gathering","strategy":"minimum_energy"}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("topology"), "{err}");
        // Bad fault grammar.
        let err = ScenarioSpec::from_json_str(
            r#"{"name":"t","rounds":1,"faults":"death=2.0","topology":{"kind":"grid","side":3,"spacing_m":30},"workload":{"kind":"gathering","strategy":"minimum_energy"}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("faults"), "{err}");
        // Uppercase name.
        let err = ScenarioSpec::from_json_str(
            r#"{"name":"T","rounds":1,"topology":{"kind":"grid","side":3,"spacing_m":30},"workload":{"kind":"gathering","strategy":"minimum_energy"}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("a-z"), "{err}");
    }

    #[test]
    fn hash_is_stable_across_key_order_and_defaults() {
        let a = ScenarioSpec::from_json_str(minimal()).unwrap();
        let b = ScenarioSpec::from_json_str(
            r#"{
                "workload": {"strategy": "minimum_energy", "kind": "gathering"},
                "replications": 1,
                "seed": 2003,
                "topology": {"spacing_m": 30.0, "side": 3, "kind": "grid"},
                "rounds": 10,
                "name": "t",
                "network": {"node_energy_j": 50.0}
            }"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
        // And a real knob change moves the hash.
        let c = ScenarioSpec {
            rounds: 11,
            ..a.clone()
        };
        assert_ne!(a.hash(), c.hash());
    }

    fn lossy_doc(extra: &str) -> String {
        format!(
            r#"{{
                "name": "t",
                "rounds": 5,
                "topology": {{"kind": "grid", "side": 3, "spacing_m": 30.0}},
                "workload": {{"kind": "lossy", "ber": 0.001, "arq_attempts": 4{extra}}}
            }}"#
        )
    }

    #[test]
    fn lossy_parallel_rounds_knob_parses_and_round_trips() {
        for (extra, want) in [
            ("", None),
            (r#", "parallel_rounds": true"#, Some(true)),
            (r#", "parallel_rounds": false"#, Some(false)),
        ] {
            let spec = ScenarioSpec::from_json_str(&lossy_doc(extra)).unwrap();
            let WorkloadSpec::Lossy {
                parallel_rounds, ..
            } = spec.workload
            else {
                panic!("lossy workload expected");
            };
            assert_eq!(parallel_rounds, want, "{extra:?}");
            let reparsed = ScenarioSpec::from_json_str(&spec.canonical_json()).unwrap();
            assert_eq!(spec, reparsed, "{extra:?}");
        }
    }

    #[test]
    fn lossy_parallel_rounds_must_be_boolean() {
        let err = ScenarioSpec::from_json_str(&lossy_doc(r#", "parallel_rounds": 1"#)).unwrap_err();
        assert!(err.to_string().contains("boolean"), "{err}");
    }

    #[test]
    fn unset_parallel_rounds_leaves_old_hashes_untouched() {
        // The knob must not be spelled in the canonical form when
        // unset, or every pre-knob scenario's content hash (the
        // compile-cache key) would silently move.
        let plain = ScenarioSpec::from_json_str(&lossy_doc("")).unwrap();
        assert!(
            !plain.canonical_json().contains("parallel_rounds"),
            "unset knob must stay unspelled: {}",
            plain.canonical_json()
        );
        let forced =
            ScenarioSpec::from_json_str(&lossy_doc(r#", "parallel_rounds": false"#)).unwrap();
        assert!(forced.canonical_json().contains("parallel_rounds"));
        assert_ne!(plain.hash(), forced.hash(), "a set knob is a real knob");
    }

    #[test]
    fn axis_accessors() {
        let spec = ScenarioSpec::from_json_str(
            r#"{
                "name": "t",
                "workload": {"kind": "cs1_duty_cycle", "ledger_days": 3.0},
                "sweeps": [{"name": "check_interval_s", "values": [0.5, 1.0]}]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.axis("check_interval_s"), Some(&[0.5, 1.0][..]));
        assert!(spec.axis("nope").is_none());
        assert!(
            spec.axis_usize("check_interval_s").is_err(),
            "0.5 not usize"
        );
    }
}
