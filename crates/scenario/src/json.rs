//! A strict, dependency-free JSON reader for scenario files.
//!
//! The vendored `serde` stand-in implements serialization only, so the
//! scenario engine carries its own input side: a small recursive-descent
//! parser producing [`JsonValue`] trees. It is deliberately stricter
//! than a general-purpose reader, because scenario files are *specs*
//! and silent tolerance becomes silent misconfiguration:
//!
//! * duplicate object keys are an error (the second write would win
//!   invisibly);
//! * trailing input after the document is an error;
//! * only finite numbers are accepted (JSON has no `NaN`/`Infinity`
//!   literals, and the spec layer wants every knob comparable);
//! * no extensions — no comments, no trailing commas, no single quotes.
//!
//! Objects preserve insertion order so error messages can point at the
//! offending field in file order.
//!
//! # Example
//!
//! ```
//! use ami_scenario::json::{parse, JsonValue};
//!
//! let doc = parse(r#"{"name": "demo", "rounds": 30}"#).unwrap();
//! assert_eq!(doc.get("rounds").and_then(JsonValue::as_f64), Some(30.0));
//! assert!(parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys rejected");
//! ```

use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; always finite.
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order, keys unique.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A short name for the node's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// A parse failure with a 1-based line/column position.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a positioned [`JsonError`] on malformed input, duplicate
/// object keys, non-finite numbers, or trailing content.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`, found {}",
                byte as char,
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("`{}`", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_owned(),
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error(format!(
                "expected a JSON value, found {}",
                self.describe_here()
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key_start = self.pos;
            let key = self.string()?;
            if members.iter().any(|(name, _)| *name == key) {
                self.pos = key_start;
                return Err(self.error(format!("duplicate object key {key:?}")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `}}` in object, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `]` in array, found {}",
                        self.describe_here()
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so
                    // boundaries are guaranteed well-formed.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input came from a &str");
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("unparseable number {text:?}")))?;
        if !value.is_finite() {
            return Err(self.error(format!("number {text:?} overflows f64")));
        }
        Ok(JsonValue::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), JsonValue::Number(-2500.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = parse(r#"{"b": [1, 2], "a": {"x": true}}"#).unwrap();
        let JsonValue::Object(members) = &doc else {
            panic!("expected object");
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(doc.get("a").unwrap().get("x"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn rejects_duplicate_keys_with_position() {
        let err = parse("{\"a\": 1,\n \"a\": 2}").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_trailing_content_and_extensions() {
        assert!(parse("1 2").is_err());
        assert!(parse("[1,]").is_err(), "trailing comma");
        assert!(parse("{'a': 1}").is_err(), "single quotes");
        assert!(parse("// c\n1").is_err(), "comments");
        assert!(parse("01").is_err(), "leading zero");
        assert!(parse("1e999").is_err(), "overflow to infinity");
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            JsonValue::String("é😀".to_owned())
        );
        assert!(parse("\"\\uD800\"").is_err(), "unpaired surrogate");
    }
}
