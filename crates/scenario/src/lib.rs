//! Scenario-as-data: simulations described by checkable files, compiled
//! once, shared everywhere.
//!
//! The paper's ambient-intelligence vision is design-space exploration
//! over fleets of µW devices; serving that exploration means a query
//! must be *data*, not a recompiled binary. This crate is the engine:
//!
//! * [`spec`] — the [`ScenarioSpec`] format (strict JSON via the
//!   in-tree [`json`] reader, unknown fields rejected, semantic
//!   validation) and its canonical hash: two documents that differ only
//!   in key order or spelled-out defaults hash identically;
//! * [`compile`] — [`CompiledScenario::compile`] lowers a spec into an
//!   immutable `Arc`-shared artifact: concrete configs, parsed fault
//!   mix, pinned topology with warmed CSR adjacency, pre-compiled
//!   [`FaultTimeline`](ami_sim::fault::FaultTimeline) — then
//!   [`run_threads`](CompiledScenario::run_threads) executes it into a
//!   deterministic, thread-invariant
//!   [`RunManifest`](ami_sim::obs::RunManifest);
//! * [`cache`] — [`ScenarioCache`], the bounded LRU over canonical
//!   hashes with single-flight dedup of concurrent compiles.
//!
//! The `ami-svc` crate fronts this engine with a batching service; the
//! F3/F6/F13/F15 experiment binaries load their parameters from
//! checked-in `.scenario.json` files through [`ScenarioSpec::load`].
//!
//! # Example
//!
//! ```
//! use ami_scenario::{ScenarioCache, ScenarioSpec};
//!
//! let cache = ScenarioCache::new(8);
//! let spec = ScenarioSpec::from_json_str(r#"{
//!     "name": "hello-scenario",
//!     "rounds": 10,
//!     "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}
//! }"#).unwrap();
//! let (compiled, _hit) = cache.get_or_compile(&spec).unwrap();
//! let manifest = compiled.run_threads(1);
//! assert!(manifest.to_json().contains("\"scenario_hash\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compile;
pub mod json;
pub mod spec;

pub use cache::{CacheStats, ScenarioCache};
pub use compile::{CompiledScenario, PDES_MIN_NODES};
pub use json::{JsonError, JsonValue};
pub use spec::{
    NetworkParams, ScenarioError, ScenarioHash, ScenarioSpec, SweepAxis, TopologySpec,
    WorkloadSpec, DEFAULT_SEED,
};

/// Environment variable naming a scenario file that overrides a
/// binary's default checked-in spec (`AMBIENCE_SCENARIO`).
pub const SCENARIO_ENV: &str = "AMBIENCE_SCENARIO";

/// Loads the scenario for an experiment binary: the file named by
/// [`SCENARIO_ENV`] when set, otherwise `default_path` (resolved
/// relative to the workspace when not absolute).
///
/// # Errors
///
/// Propagates [`ScenarioError`] from [`ScenarioSpec::load`].
pub fn load_for_binary(default_path: &str) -> Result<ScenarioSpec, ScenarioError> {
    let path = std::env::var_os(SCENARIO_ENV)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| resolve_default(default_path));
    ScenarioSpec::load(path)
}

/// Resolves a checked-in scenario path against the compile-time
/// workspace layout, falling back to the path as given (for runs from
/// a different working directory, set `AMBIENCE_SCENARIO`).
fn resolve_default(default_path: &str) -> std::path::PathBuf {
    let direct = std::path::PathBuf::from(default_path);
    if direct.exists() {
        return direct;
    }
    // CARGO_MANIFEST_DIR of this crate is <workspace>/crates/scenario.
    let mut from_workspace = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    from_workspace.pop();
    from_workspace.pop();
    from_workspace.push(default_path);
    from_workspace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_default_prefers_existing_relative_path() {
        // The workspace Cargo.toml always exists relative to the crate.
        let resolved = resolve_default("Cargo.toml");
        assert!(resolved.exists());
    }
}
