//! Lowering a [`ScenarioSpec`] into an immutable, shareable artifact.
//!
//! [`CompiledScenario::compile`] does every piece of work that is the
//! same for all runs of a scenario exactly once, up front:
//!
//! * the numeric parameters become a concrete [`NetworkConfig`] (and a
//!   [`LossyConfig`] for lossy workloads);
//! * the fault grammar is parsed into a [`FaultSpec`];
//! * fixed layouts (and seed-pinned random ones on single-run specs)
//!   are built into a concrete [`Topology`] with its CSR adjacency
//!   warmed, so every run — and every batch-mate sharing the artifact —
//!   reuses the same `Arc`-shared neighbor structure instead of
//!   re-deriving it (the PR 6/7 caches, generalized);
//! * single-run fault schedules are drawn and pre-compiled into a
//!   [`FaultTimeline`].
//!
//! The result lives in an [`Arc`] and is immutable: concurrent service
//! requests can execute [`run_threads`](CompiledScenario::run_threads)
//! against one artifact without any locking, and the compile cache
//! ([`crate::cache`]) can hand the same `Arc` to every request whose
//! spec canonicalizes to the same hash.
//!
//! # Example
//!
//! ```
//! use ami_scenario::{CompiledScenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json_str(r#"{
//!     "name": "doc-grid",
//!     "rounds": 5,
//!     "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}
//! }"#).unwrap();
//! let compiled = CompiledScenario::compile(&spec).unwrap();
//! assert_eq!(compiled.hash(), spec.hash());
//! assert_eq!(compiled.topology().unwrap().len(), 9);
//! let manifest = compiled.run_threads(1).to_json();
//! assert!(manifest.contains("\"experiment\": \"doc-grid\""));
//! ```

use crate::spec::{ScenarioError, ScenarioHash, ScenarioSpec, WorkloadSpec};
use ami_core::case_studies::cs1::{cs1_energy_ledger, sweep_check_interval, Cs1Config};
use ami_net::{
    replicate_gathering_faulted_observed_threads, replicate_gathering_observed_threads,
    simulate_gathering_faulted_observed, simulate_gathering_faulted_observed_par,
    simulate_lossy_gathering_faulted, simulate_lossy_gathering_faulted_par, LossyConfig,
    NetworkConfig, Topology,
};
use ami_radio::StopAndWaitArq;
use ami_sim::fault::{FaultSchedule, FaultSpec, FaultTimeline};
use ami_sim::obs::{CounterTree, RunManifest};
use ami_units::TimeSpan;
use std::sync::Arc;

/// Node count from which single gathering runs switch to the
/// region-parallel PDES kernel when more than one worker is available
/// (bit-identical to the serial kernel by contract — the threshold is a
/// performance knob, never a results knob).
pub const PDES_MIN_NODES: usize = 512;

/// An immutable, pre-lowered scenario: everything shareable between
/// runs, behind one [`Arc`]. See the [module docs](self).
#[derive(Debug)]
pub struct CompiledScenario {
    spec: ScenarioSpec,
    hash: ScenarioHash,
    canonical: String,
    network: NetworkConfig,
    lossy: Option<LossyConfig>,
    faults: Option<FaultSpec>,
    topology: Option<Topology>,
    schedule: Option<FaultSchedule>,
    timeline: Option<FaultTimeline>,
}

impl CompiledScenario {
    /// Validates `spec` and lowers it into a shared artifact.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] when validation fails; a spec that has
    /// already passed [`ScenarioSpec::validate`] always compiles.
    pub fn compile(spec: &ScenarioSpec) -> Result<Arc<Self>, ScenarioError> {
        spec.validate()?;
        let canonical = spec.canonical_json();
        let hash = ScenarioHash::of(canonical.as_bytes());
        let network = spec.network.to_network_config();
        let faults = spec.fault_spec()?;
        let lossy = match spec.workload {
            WorkloadSpec::Lossy {
                ber, arq_attempts, ..
            } => {
                let mut config = LossyConfig::bruised_channel();
                config.ber = ber;
                config.arq = StopAndWaitArq::new(arq_attempts);
                config.max_hop = network.max_hop;
                Some(config)
            }
            _ => None,
        };
        // A topology is pinned into the artifact whenever every run of
        // the scenario sees the same layout: fixed layouts always, and
        // seeded-random layouts when there is exactly one run. Seeded
        // replications rebuild per seed at run time instead.
        let topology = match &spec.topology {
            Some(layout) if !layout.is_seeded() || spec.replications == 1 => {
                let topo = layout.build(spec.seed);
                // Warm the Arc-shared CSR adjacency once; clones and
                // batch-mates reuse it.
                let _ = topo.csr_within(network.max_hop);
                Some(topo)
            }
            _ => None,
        };
        // Single-run scenarios also get their fault schedule drawn and
        // compiled here; replicated runs derive one per seed.
        let schedule = match (&topology, &faults) {
            (Some(topo), Some(fault_spec)) if spec.replications == 1 => {
                Some(fault_spec.schedule_for(spec.seed, topo.len(), spec.rounds))
            }
            _ => None,
        };
        let timeline = schedule
            .as_ref()
            .map(|s| FaultTimeline::compile(s, topology.as_ref().map_or(0, Topology::len)));
        Ok(Arc::new(Self {
            spec: spec.clone(),
            hash,
            canonical,
            network,
            lossy,
            faults,
            topology,
            schedule,
            timeline,
        }))
    }

    /// The validated spec this artifact was lowered from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The canonical content hash (the compile-cache key).
    pub fn hash(&self) -> ScenarioHash {
        self.hash
    }

    /// The canonical JSON rendering of the spec.
    pub fn canonical_json(&self) -> &str {
        &self.canonical
    }

    /// The lowered network configuration.
    pub fn network_config(&self) -> &NetworkConfig {
        &self.network
    }

    /// The lowered lossy-link configuration (lossy workloads only).
    pub fn lossy_config(&self) -> Option<&LossyConfig> {
        self.lossy.as_ref()
    }

    /// The parsed fault mix, if the scenario has one.
    pub fn fault_spec(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// The pinned topology, for scenarios where every run shares one
    /// layout (its CSR adjacency is already warmed).
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The drawn fault schedule of a pinned single-run scenario.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.schedule.as_ref()
    }

    /// The pre-compiled fault timeline of a pinned single-run scenario
    /// (clone it to advance; the artifact itself never mutates).
    pub fn fault_timeline(&self) -> Option<&FaultTimeline> {
        self.timeline.as_ref()
    }

    /// Executes the scenario on `threads` workers and returns its
    /// deterministic [`RunManifest`].
    ///
    /// The manifest embeds the canonical spec and hash, the runner
    /// policy stanza, and the workload's results (ledger, counters,
    /// headline figures). It is **byte-identical at any `threads`**:
    /// replications merge in seed order and the PDES kernel is
    /// bit-identical to the serial one, so thread count is pure
    /// mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_threads(&self, threads: usize) -> RunManifest {
        assert!(threads > 0, "run on at least one worker thread");
        let manifest = RunManifest::new(&self.spec.name)
            .field("scenario_hash", &self.hash.to_string())
            .raw_field("scenario", self.canonical.clone())
            .runner();
        match &self.spec.workload {
            WorkloadSpec::Gathering { strategy } => {
                let strategy = *strategy;
                let rounds = self.spec.rounds;
                if self.spec.replications == 1 {
                    let topo = self
                        .topology
                        .as_ref()
                        .expect("validated gathering spec pins a topology");
                    let empty = FaultSchedule::empty();
                    let schedule = self.schedule.as_ref().unwrap_or(&empty);
                    let (report, obs) = if threads > 1 && topo.len() >= PDES_MIN_NODES {
                        simulate_gathering_faulted_observed_par(
                            topo,
                            strategy,
                            &self.network,
                            rounds,
                            schedule,
                            threads,
                        )
                    } else {
                        simulate_gathering_faulted_observed(
                            topo,
                            strategy,
                            &self.network,
                            rounds,
                            schedule,
                        )
                    };
                    manifest
                        .field("delivered_packets", &report.delivered_packets)
                        .field("alive_nodes", &(report.alive_nodes as u64))
                        .field("first_death_round", &report.first_death_round)
                        .field("total_energy_j", &report.total_energy)
                        .ledger(&obs.ledger)
                        .counters(&obs.packets.tree())
                } else {
                    let layout = self
                        .spec
                        .topology
                        .as_ref()
                        .expect("validated gathering spec has a topology");
                    let replications = self.spec.replications as usize;
                    let base_seed = self.spec.seed;
                    let nodes = layout.node_count();
                    let (reports, obs) = match &self.faults {
                        Some(fault_spec) => replicate_gathering_faulted_observed_threads(
                            threads,
                            replications,
                            base_seed,
                            |seed| layout.build(seed),
                            |seed| fault_spec.schedule_for(seed, nodes, rounds),
                            strategy,
                            &self.network,
                            rounds,
                        ),
                        None => replicate_gathering_observed_threads(
                            threads,
                            replications,
                            base_seed,
                            |seed| layout.build(seed),
                            strategy,
                            &self.network,
                            rounds,
                        ),
                    };
                    let delivered: u64 = reports.iter().map(|r| r.delivered_packets).sum();
                    let alive: u64 = reports.iter().map(|r| r.alive_nodes as u64).sum();
                    manifest
                        .field("delivered_packets", &delivered)
                        .field("alive_nodes_total", &alive)
                        .ledger(&obs.ledger)
                        .counters(&obs.packets.tree())
                }
            }
            WorkloadSpec::Lossy {
                parallel_rounds, ..
            } => {
                let topo = self
                    .topology
                    .as_ref()
                    .expect("validated lossy spec pins a topology");
                let config = self
                    .lossy
                    .as_ref()
                    .expect("lossy workloads compile a LossyConfig");
                let empty = FaultSchedule::empty();
                let schedule = self.schedule.as_ref().unwrap_or(&empty);
                // The spec's knob wins; unset, single runs go parallel
                // at PDES scale exactly like gathering. Either path is
                // bit-identical — the counter-RNG kernel's contract —
                // so this only chooses execution, never results.
                let use_par = threads > 1
                    && match parallel_rounds {
                        Some(parallel) => *parallel,
                        None => topo.len() >= PDES_MIN_NODES,
                    };
                let report = if use_par {
                    simulate_lossy_gathering_faulted_par(
                        topo,
                        config,
                        self.spec.rounds,
                        self.spec.seed,
                        schedule,
                        threads,
                    )
                } else {
                    simulate_lossy_gathering_faulted(
                        topo,
                        config,
                        self.spec.rounds,
                        self.spec.seed,
                        schedule,
                    )
                };
                let counters = CounterTree::branch([
                    (
                        "packets",
                        CounterTree::branch([
                            ("offered", CounterTree::leaf(report.offered)),
                            ("delivered", CounterTree::leaf(report.delivered)),
                            (
                                "dropped",
                                CounterTree::branch([
                                    (
                                        "channel",
                                        CounterTree::leaf(
                                            report.offered
                                                - report.delivered
                                                - report.dropped_fault,
                                        ),
                                    ),
                                    ("fault", CounterTree::leaf(report.dropped_fault)),
                                ]),
                            ),
                        ]),
                    ),
                    ("transmissions", CounterTree::leaf(report.transmissions)),
                ]);
                manifest
                    .field("total_energy_j", &report.total_energy)
                    .field(
                        "energy_per_delivered_bit",
                        &report.energy_per_delivered_bit(&config.packet),
                    )
                    .counters(&counters)
            }
            WorkloadSpec::Cs1DutyCycle { ledger_days } => {
                let config = Cs1Config::default();
                let span = TimeSpan::from_days(*ledger_days);
                let ledger = cs1_energy_ledger(&config, span);
                let intervals: Vec<TimeSpan> = self
                    .spec
                    .axis("check_interval_s")
                    .expect("validated cs1 spec has a check_interval_s axis")
                    .iter()
                    .map(|&s| TimeSpan::from_seconds(s))
                    .collect();
                let rows = sweep_check_interval(&config, &intervals);
                let sustainable = rows.iter().filter(|(_, _, _, ok)| *ok).count() as u64;
                let counters = CounterTree::branch([(
                    "sweep",
                    CounterTree::branch([
                        ("intervals", CounterTree::leaf(rows.len() as u64)),
                        ("sustainable", CounterTree::leaf(sustainable)),
                    ]),
                )]);
                manifest
                    .field("span_days", &span.as_days())
                    .ledger(&ledger)
                    .counters(&counters)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    fn grid_spec(rounds: u64) -> ScenarioSpec {
        ScenarioSpec::from_json_str(&format!(
            r#"{{
                "name": "t-grid",
                "rounds": {rounds},
                "topology": {{"kind": "grid", "side": 3, "spacing_m": 30.0}},
                "workload": {{"kind": "gathering", "strategy": "minimum_energy"}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn compile_pins_fixed_topologies_and_hash() {
        let spec = grid_spec(5);
        let compiled = CompiledScenario::compile(&spec).unwrap();
        assert_eq!(compiled.hash(), spec.hash());
        assert_eq!(compiled.topology().unwrap().len(), 9);
        assert!(compiled.fault_schedule().is_none());
        assert_eq!(compiled.canonical_json(), spec.canonical_json());
    }

    #[test]
    fn seeded_replications_defer_topology() {
        let mut spec = grid_spec(5);
        spec.topology = Some(TopologySpec::Random {
            nodes: 10,
            field_m: 100.0,
        });
        spec.replications = 4;
        spec.validate().unwrap();
        let compiled = CompiledScenario::compile(&spec).unwrap();
        assert!(compiled.topology().is_none(), "per-seed layouts stay lazy");
        // But a single-run random layout is pinned (seed is fixed).
        spec.replications = 1;
        let single = CompiledScenario::compile(&spec).unwrap();
        assert_eq!(single.topology().unwrap().len(), 10);
    }

    #[test]
    fn faulted_single_run_precompiles_schedule_and_timeline() {
        let mut spec = grid_spec(20);
        spec.faults = Some("death=0.5".to_owned());
        let compiled = CompiledScenario::compile(&spec).unwrap();
        assert!(compiled.fault_spec().is_some());
        let schedule = compiled.fault_schedule().expect("schedule drawn");
        assert!(!schedule.is_empty());
        assert!(compiled.fault_timeline().is_some());
    }

    #[test]
    fn manifest_is_thread_invariant() {
        let spec = grid_spec(10);
        let compiled = CompiledScenario::compile(&spec).unwrap();
        let one = compiled.run_threads(1).to_json();
        let four = compiled.run_threads(4).to_json();
        assert_eq!(one, four);
        assert!(one.contains("\"scenario_hash\""));
        assert!(one.contains(&compiled.hash().to_string()));
    }

    #[test]
    fn lossy_parallel_rounds_knob_only_moves_execution() {
        // Whatever the knob says — forced on, forced off, or unset —
        // the manifest is byte-identical at every worker count: the
        // PDES lossy engine's contract, surfaced at the scenario layer.
        // (The 9-node grid sits under the engine's nodes-per-worker
        // floor, so force-engage it for the `true` runs.)
        ami_net::set_par_min_nodes_per_worker(Some(0));
        let docs = [
            "",
            r#", "parallel_rounds": true"#,
            r#", "parallel_rounds": false"#,
        ];
        let manifests: Vec<String> = docs
            .iter()
            .map(|extra| {
                let spec = ScenarioSpec::from_json_str(&format!(
                    r#"{{
                        "name": "t-lossy",
                        "rounds": 20,
                        "topology": {{"kind": "grid", "side": 3, "spacing_m": 30.0}},
                        "workload": {{"kind": "lossy", "ber": 0.001, "arq_attempts": 4{extra}}}
                    }}"#
                ))
                .unwrap();
                let compiled = CompiledScenario::compile(&spec).unwrap();
                let one = compiled.run_threads(1).to_json();
                let four = compiled.run_threads(4).to_json();
                assert_eq!(one, four, "thread-variant manifest with {extra:?}");
                one
            })
            .collect();
        ami_net::set_par_min_nodes_per_worker(None);
        // The knob is spelled in the canonical spec (hence the hash and
        // the manifest header) when set, so strip nothing: compare the
        // *numbers* by checking the knob-free and knob-forced runs agree
        // on counters and energy lines.
        let body = |m: &str| {
            m.lines()
                .filter(|l| l.contains("total_energy_j") || l.contains("counters"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&manifests[0]), body(&manifests[1]));
        assert_eq!(body(&manifests[0]), body(&manifests[2]));
    }

    #[test]
    fn replicated_manifest_is_thread_invariant() {
        let mut spec = grid_spec(10);
        spec.topology = Some(TopologySpec::Random {
            nodes: 8,
            field_m: 80.0,
        });
        spec.replications = 3;
        spec.faults = Some("death=0.3".to_owned());
        let compiled = CompiledScenario::compile(&spec).unwrap();
        assert_eq!(
            compiled.run_threads(1).to_json(),
            compiled.run_threads(3).to_json()
        );
    }
}
