//! The bounded compile cache: LRU over canonical hashes, with
//! single-flight deduplication of concurrent compilations.
//!
//! [`ScenarioCache::get_or_compile`] is the only way work enters the
//! engine. Requests whose specs canonicalize to the same
//! [`ScenarioHash`](crate::ScenarioHash) share one
//! `Arc<CompiledScenario>`; when several arrive while that artifact is
//! still being compiled, exactly **one** thread compiles and the rest
//! block on a condvar until the slot flips from in-flight to ready
//! (single-flight). Ready entries are evicted least-recently-used once
//! the cache exceeds its capacity; in-flight slots are never evicted.
//!
//! Validation happens *before* a slot is claimed, so compilation inside
//! the cache cannot fail for spec reasons — a claimed slot always
//! resolves, and waiters never deadlock on an abandoned entry.
//!
//! # Example
//!
//! ```
//! use ami_scenario::{ScenarioCache, ScenarioSpec};
//!
//! let cache = ScenarioCache::new(4);
//! let spec = ScenarioSpec::from_json_str(r#"{
//!     "name": "doc-cache",
//!     "rounds": 5,
//!     "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}
//! }"#).unwrap();
//! let (first, hit) = cache.get_or_compile(&spec).unwrap();
//! assert!(!hit);
//! let (second, hit) = cache.get_or_compile(&spec).unwrap();
//! assert!(hit);
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!(cache.stats().compiles, 1);
//! ```

use crate::compile::CompiledScenario;
use crate::spec::{ScenarioError, ScenarioSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Counters describing cache behavior since construction. Monotonic;
/// read them via [`ScenarioCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Specs actually compiled (cache misses that did the work).
    pub compiles: u64,
    /// Requests served from a ready entry.
    pub hits: u64,
    /// Requests that found no entry and claimed the compile.
    pub misses: u64,
    /// Ready entries evicted by the LRU bound.
    pub evictions: u64,
    /// Requests that waited on another thread's in-flight compile
    /// (the single-flight path).
    pub coalesced: u64,
}

enum Slot {
    /// Some thread is compiling; waiters block on the condvar.
    InFlight,
    /// The artifact, with its LRU stamp.
    Ready {
        artifact: Arc<CompiledScenario>,
        last_used: u64,
    },
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    /// Logical clock for LRU stamps.
    tick: u64,
}

/// A bounded, thread-safe compile cache. See the [module docs](self).
pub struct ScenarioCache {
    capacity: usize,
    state: Mutex<CacheState>,
    ready: Condvar,
    compiles: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for ScenarioCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ScenarioCache {
    /// A cache holding at most `capacity` ready artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a scenario cache needs capacity >= 1");
        Self {
            capacity,
            state: Mutex::new(CacheState {
                slots: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the compiled artifact for `spec` and whether it was a
    /// cache hit, compiling at most once per canonical hash however
    /// many threads ask concurrently.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Spec`] when validation rejects the spec (before
    /// any slot is claimed).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking compile on
    /// another thread.
    pub fn get_or_compile(
        &self,
        spec: &ScenarioSpec,
    ) -> Result<(Arc<CompiledScenario>, bool), ScenarioError> {
        spec.validate()?;
        let hash = spec.hash().0;
        {
            enum Action {
                Hit(Arc<CompiledScenario>),
                Wait,
                Claim,
            }
            let mut state = self.state.lock().expect("scenario cache poisoned");
            let mut waited = false;
            loop {
                let action = match state.slots.get(&hash) {
                    Some(Slot::Ready { artifact, .. }) => Action::Hit(artifact.clone()),
                    Some(Slot::InFlight) => Action::Wait,
                    None => Action::Claim,
                };
                match action {
                    Action::Hit(artifact) => {
                        state.tick += 1;
                        let tick = state.tick;
                        if let Some(Slot::Ready { last_used, .. }) = state.slots.get_mut(&hash) {
                            *last_used = tick;
                        }
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((artifact, true));
                    }
                    Action::Wait => {
                        if !waited {
                            waited = true;
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                        state = self.ready.wait(state).expect("scenario cache poisoned");
                    }
                    Action::Claim => {
                        state.slots.insert(hash, Slot::InFlight);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
        // Compile outside the lock; the spec is already validated, so
        // this cannot fail and the in-flight slot always resolves.
        let artifact = CompiledScenario::compile(spec)?;
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().expect("scenario cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        state.slots.insert(
            hash,
            Slot::Ready {
                artifact: artifact.clone(),
                last_used: tick,
            },
        );
        self.evict_over_capacity(&mut state, hash);
        drop(state);
        self.ready.notify_all();
        Ok((artifact, false))
    }

    /// Evicts least-recently-used ready entries until at most
    /// `capacity` remain; never evicts in-flight slots or `keep`.
    fn evict_over_capacity(&self, state: &mut CacheState, keep: u64) {
        loop {
            let ready_count = state
                .slots
                .values()
                .filter(|slot| matches!(slot, Slot::Ready { .. }))
                .count();
            if ready_count <= self.capacity {
                return;
            }
            let victim = state
                .slots
                .iter()
                .filter_map(|(&h, slot)| match slot {
                    Slot::Ready { last_used, .. } if h != keep => Some((h, *last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, stamp)| stamp)
                .map(|(h, _)| h);
            match victim {
                Some(h) => {
                    state.slots.remove(&h);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Only `keep` and in-flight slots remain; capacity 1
                // with the fresh entry lands here.
                None => return,
            }
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Number of ready artifacts currently held.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("scenario cache poisoned")
            .slots
            .values()
            .filter(|slot| matches!(slot, Slot::Ready { .. }))
            .count()
    }

    /// True when no ready artifact is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, rounds: u64) -> ScenarioSpec {
        ScenarioSpec::from_json_str(&format!(
            r#"{{
                "name": "{name}",
                "rounds": {rounds},
                "topology": {{"kind": "grid", "side": 3, "spacing_m": 30.0}},
                "workload": {{"kind": "gathering", "strategy": "minimum_energy"}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = ScenarioCache::new(2);
        let (a, hit_a) = cache.get_or_compile(&spec("a", 5)).unwrap();
        let (b, hit_b) = cache.get_or_compile(&spec("a", 5)).unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.compiles, stats.hits, stats.misses), (1, 1, 1));
    }

    #[test]
    fn invalid_specs_never_claim_a_slot() {
        let cache = ScenarioCache::new(2);
        let mut bad = spec("bad", 5);
        bad.rounds = 0;
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ScenarioCache::new(2);
        cache.get_or_compile(&spec("a", 5)).unwrap();
        cache.get_or_compile(&spec("b", 5)).unwrap();
        // Touch `a` so `b` is the LRU victim.
        let (_, hit) = cache.get_or_compile(&spec("a", 5)).unwrap();
        assert!(hit);
        cache.get_or_compile(&spec("c", 5)).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit_a) = cache.get_or_compile(&spec("a", 5)).unwrap();
        assert!(hit_a, "a was kept");
        let (_, hit_b) = cache.get_or_compile(&spec("b", 5)).unwrap();
        assert!(!hit_b, "b was evicted and recompiled");
    }

    #[test]
    fn concurrent_identical_requests_compile_once() {
        let cache = Arc::new(ScenarioCache::new(4));
        let shared = spec("conc", 40);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let shared = shared.clone();
                scope.spawn(move || {
                    let (artifact, _) = cache.get_or_compile(&shared).unwrap();
                    assert_eq!(artifact.hash(), shared.hash());
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.compiles, 1, "single-flight");
        assert_eq!(stats.misses, 1);
        // Every other thread is served the ready artifact, whether it
        // arrived before (coalesced wait) or after the compile landed.
        assert_eq!(stats.hits, 7);
    }
}
