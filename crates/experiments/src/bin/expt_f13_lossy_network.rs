//! F13 — gathering over lossy links: end-to-end delivery and energy
//! versus channel quality and ARQ budget, at network scale.
//!
//! Expected shape: multi-hop paths compound per-hop loss, so end-to-end
//! delivery collapses faster than the single-link analysis (F8) suggests;
//! ARQ restores it at an energy cost that grows with BER. The per-hop
//! analytic prediction matches the Monte-Carlo network on single-hop
//! stars (cross-validated in tests).

use ami_experiments::manifests::{emit_when_requested, f13_manifest};
use ami_experiments::{banner, print_table, section};
use ami_net::{simulate_lossy_gathering, LossyConfig, LossyReport, Topology};
use ami_radio::StopAndWaitArq;
use ami_units::Length;

/// The per-delivered-bit column: `-` when nothing got through.
fn per_bit_cell(report: &LossyReport, config: &LossyConfig) -> String {
    report
        .energy_per_delivered_bit(&config.packet)
        .map_or("-".to_owned(), |e| {
            format!("{:.2}", 1e6 * e.as_joules_per_bit())
        })
}

fn main() {
    banner("F13", "lossy-link gathering: delivery vs BER and ARQ");
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );
    let topo = Topology::grid(5, Length::from_meters(30.0));
    let rounds = 300;

    section("5x5 grid, 4-attempt ARQ: channel quality sweep");
    let bers = [1e-5, 1e-4, 1e-3, 3e-3, 1e-2];
    let rows = ami_sim::runner::par_map_indexed(&bers, |_, &ber| {
        let mut config = LossyConfig::bruised_channel();
        config.ber = ber;
        let report = simulate_lossy_gathering(&topo, &config, rounds, 2003);
        vec![
            format!("{ber:.0e}"),
            format!("{:.1}%", 100.0 * report.delivery_ratio()),
            format!("{:.2}", report.tx_per_packet()),
            format!("{:.2}", report.total_energy.as_joules()),
            per_bit_cell(&report, &config),
        ]
    });
    print_table(
        &["BER", "delivered", "tx/packet", "energy (J)", "uJ/bit"],
        &rows,
    );

    section("BER 3e-3: how much ARQ is enough?");
    let budgets = [1u32, 2, 4, 8];
    let rows = ami_sim::runner::par_map_indexed(&budgets, |_, &budget| {
        let mut config = LossyConfig::bruised_channel();
        config.ber = 3e-3;
        config.arq = StopAndWaitArq::new(budget);
        let report = simulate_lossy_gathering(&topo, &config, rounds, 2003);
        vec![
            budget.to_string(),
            format!("{:.1}%", 100.0 * report.delivery_ratio()),
            format!("{:.2}", report.total_energy.as_joules()),
            per_bit_cell(&report, &config),
        ]
    });
    print_table(
        &["max tx per hop", "delivered", "energy (J)", "uJ/bit"],
        &rows,
    );

    section("reading");
    println!("multi-hop compounds loss: what is 'fine' on one link fails the");
    println!("network. Per-hop ARQ restores delivery with energy that tracks");
    println!("the F8 expected-transmission curve — the link and network views");
    println!("of reliability agree.");

    emit_when_requested(f13_manifest);
}
