//! F13 — gathering over lossy links: end-to-end delivery and energy
//! versus channel quality and ARQ budget, at network scale.
//!
//! Expected shape: multi-hop paths compound per-hop loss, so end-to-end
//! delivery collapses faster than the single-link analysis (F8) suggests;
//! ARQ restores it at an energy cost that grows with BER. The per-hop
//! analytic prediction matches the Monte-Carlo network on single-hop
//! stars (cross-validated in tests).
//!
//! The grid, seed, rounds, channel and sweep axes load from the
//! checked-in `scenarios/f13_lossy_network.scenario.json` through the
//! scenario engine (override with `AMBIENCE_SCENARIO`); the output is
//! byte-identical to the former hard-coded constants.

use ami_experiments::manifests::{emit_when_requested, f13_faulted_manifest_with, f13_manifest};
use ami_experiments::{banner, print_table, section};
use ami_net::{
    simulate_lossy_gathering, simulate_lossy_gathering_faulted, LossyConfig, LossyReport,
};
use ami_radio::StopAndWaitArq;
use ami_scenario::ScenarioSpec;
use ami_sim::fault::{FaultModel, FaultSpec, FAULTS_ENV};

const SCENARIO: &str = "crates/experiments/scenarios/f13_lossy_network.scenario.json";

/// Pulls a single-valued axis out of the scenario.
fn scalar_axis(scenario: &ScenarioSpec, name: &str) -> f64 {
    let values = scenario
        .axis(name)
        .unwrap_or_else(|| panic!("scenario is missing the {name} axis"));
    assert_eq!(values.len(), 1, "{name} must carry exactly one value");
    values[0]
}

/// The per-delivered-bit column: `-` when nothing got through.
fn per_bit_cell(report: &LossyReport, config: &LossyConfig) -> String {
    report
        .energy_per_delivered_bit(&config.packet)
        .map_or("-".to_owned(), |e| {
            format!("{:.2}", 1e6 * e.as_joules_per_bit())
        })
}

fn main() {
    let scenario = ami_scenario::load_for_binary(SCENARIO).unwrap_or_else(|err| panic!("{err}"));
    let compiled =
        ami_scenario::CompiledScenario::compile(&scenario).unwrap_or_else(|err| panic!("{err}"));
    let topo = compiled
        .topology()
        .expect("F13 scenario pins its grid")
        .clone();
    let rounds = scenario.rounds;
    let seed = scenario.seed;

    banner("F13", "lossy-link gathering: delivery vs BER and ARQ");
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );

    section("5x5 grid, 4-attempt ARQ: channel quality sweep");
    let bers = scenario.axis("ber").expect("scenario carries a ber axis");
    let rows = ami_sim::runner::par_map_indexed(bers, |_, &ber| {
        let mut config = LossyConfig::bruised_channel();
        config.ber = ber;
        let report = simulate_lossy_gathering(&topo, &config, rounds, seed);
        vec![
            format!("{ber:.0e}"),
            format!("{:.1}%", 100.0 * report.delivery_ratio()),
            format!("{:.2}", report.tx_per_packet()),
            format!("{:.2}", report.total_energy.as_joules()),
            per_bit_cell(&report, &config),
        ]
    });
    print_table(
        &["BER", "delivered", "tx/packet", "energy (J)", "uJ/bit"],
        &rows,
    );

    section("BER 3e-3: how much ARQ is enough?");
    let arq_ber = scalar_axis(&scenario, "arq_sweep_ber");
    let budgets = scenario
        .axis_usize("arq_budget")
        .expect("integral arq_budget axis");
    let rows = ami_sim::runner::par_map_indexed(&budgets, |_, &budget| {
        let mut config = LossyConfig::bruised_channel();
        config.ber = arq_ber;
        config.arq = StopAndWaitArq::new(budget as u32);
        let report = simulate_lossy_gathering(&topo, &config, rounds, seed);
        vec![
            budget.to_string(),
            format!("{:.1}%", 100.0 * report.delivery_ratio()),
            format!("{:.2}", report.total_energy.as_joules()),
            per_bit_cell(&report, &config),
        ]
    });
    print_table(
        &["max tx per hop", "delivered", "energy (J)", "uJ/bit"],
        &rows,
    );

    section("resilience: exogenous node churn on the bruised channel");
    // Node death plus transient outages layered on the BER-1e-3 grid:
    // routing re-resolves around downed relays, so delivery degrades
    // with the churn instead of collapsing, and fault losses are
    // attributed separately from channel losses.
    let outage_rounds = scalar_axis(&scenario, "churn_outage_rounds") as u64;
    let churn = scenario
        .axis("churn_rate")
        .expect("scenario carries a churn_rate axis");
    let rows = ami_sim::runner::par_map_indexed(churn, |_, &rate| {
        let config = compiled
            .lossy_config()
            .expect("lossy scenarios compile a LossyConfig")
            .clone();
        let model = FaultModel {
            death_rate: rate,
            outage_rate: rate,
            outage_rounds,
            ..FaultModel::none()
        };
        let faults = model.schedule(seed, topo.len(), rounds);
        let report = simulate_lossy_gathering_faulted(&topo, &config, rounds, seed, &faults);
        vec![
            format!("{:.0}%", 100.0 * rate),
            report.offered.to_string(),
            format!("{:.1}%", 100.0 * report.delivery_ratio()),
            report.dropped_fault.to_string(),
            format!("{:.2}", report.total_energy.as_joules()),
            per_bit_cell(&report, &config),
        ]
    });
    print_table(
        &[
            "churn rate",
            "offered",
            "delivered",
            "fault drops",
            "energy (J)",
            "uJ/bit",
        ],
        &rows,
    );

    section("reading");
    println!("multi-hop compounds loss: what is 'fine' on one link fails the");
    println!("network. Per-hop ARQ restores delivery with energy that tracks");
    println!("the F8 expected-transmission curve — the link and network views");
    println!("of reliability agree. Under exogenous churn, rerouting keeps the");
    println!("network degrading gracefully; set AMBIENCE_FAULTS to rerun the");
    println!("manifest under any fault mix.");

    // With AMBIENCE_FAULTS set, the manifest pins the faulted run (CI
    // freezes the F13_FAULT_SPEC mix as a golden file); unset, it pins
    // the plain one. The spec is parsed eagerly so a malformed value
    // fails the run even when no manifest is requested.
    match std::env::var(FAULTS_ENV) {
        Ok(spec) => {
            FaultSpec::parse(&spec).unwrap_or_else(|err| panic!("bad {FAULTS_ENV}: {err}"));
            emit_when_requested(|| f13_faulted_manifest_with(&spec));
        }
        Err(_) => emit_when_requested(f13_manifest),
    }
}
