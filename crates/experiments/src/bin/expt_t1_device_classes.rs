//! T1 — the three-device-class characteristics table.
//!
//! Every cell is computed from the models (130 nm intrinsic efficiency,
//! indoor 868 MHz link budget, battery/harvester presets); see
//! `ami_core::class_table`.

use ami_core::class_table::class_table_text;
use ami_experiments::{banner, section};

fn main() {
    banner(
        "T1",
        "device-class characteristics (derived, not transcribed)",
    );
    section("the three classes of the Ambient Intelligence taxonomy");
    print!("{}", class_table_text());
    println!();
    println!("notes:");
    println!("  compute    = ASIC-bound MOPS affordable inside the class budget at 130 nm");
    println!(
        "  radio reach= indoor 868 MHz FSK link closed at 50 kbit/s with 10% of budget as TX power"
    );
    println!("  endurance  = unlimited for energy-neutral harvesting and for mains");
}
