//! F9 — how many ambient nodes can share one channel?
//!
//! Expected shape: slotted ALOHA's 1/e ceiling turns the channel bit rate
//! and report interval into a hard node-density budget: thousands of
//! sensor-rate reporters per 50 kbit/s channel, but single-digit
//! audio-rate streams — the scalability split between the µW sensing
//! plane and the mW/W media plane.

use ami_experiments::{banner, print_table, section};
use ami_radio::{
    collision_probability, pure_aloha_throughput, slotted_aloha_throughput, Packet, SharedChannel,
};
use ami_units::{DataRate, TimeSpan};

fn main() {
    banner("F9", "channel contention and the node-density budget");

    section("ALOHA throughput vs offered load (packets per slot)");
    let mut rows = Vec::new();
    for g in [0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0] {
        rows.push(vec![
            format!("{g:.2}"),
            format!("{:.3}", slotted_aloha_throughput(g)),
            format!("{:.3}", pure_aloha_throughput(g)),
            format!("{:.1}%", 100.0 * collision_probability(g)),
        ]);
    }
    print_table(&["G", "slotted S", "pure S", "P(collision)"], &rows);

    section("node budget of a 50 kbit/s sensor channel (slotted ALOHA peak)");
    let ch = SharedChannel::sensor_default();
    let mut rows = Vec::new();
    for (caption, interval) in [
        ("1 s reports", TimeSpan::from_seconds(1.0)),
        ("10 s reports", TimeSpan::from_seconds(10.0)),
        ("1 min reports", TimeSpan::from_minutes(1.0)),
        ("5 min reports", TimeSpan::from_minutes(5.0)),
    ] {
        rows.push(vec![
            caption.to_owned(),
            format!("{:.0}", ch.max_nodes(interval)),
            format!("{:.1}%", 100.0 * ch.delivered_fraction(100.0, interval)),
        ]);
    }
    print_table(
        &["traffic", "max nodes (1/e peak)", "delivery @ 100 nodes"],
        &rows,
    );

    section("and the media plane: audio frames on the same channel");
    let audio = SharedChannel::new(
        DataRate::from_kilobits_per_second(50.0),
        Packet::audio_frame(),
    );
    println!(
        "audio streams sustainable: {:.2} (one stream already saturates)",
        audio.max_nodes(TimeSpan::from_millis(24.0))
    );

    section("reading");
    println!("the sensing plane scales to room-densities of thousands; media");
    println!("traffic must move to the W-node's wideband links. The taxonomy");
    println!("is also a spectrum-allocation rule.");
}
