//! F14 — contextual awareness: the latency–power frontier of sensing.
//!
//! Expected shape: detection latency follows the order statistics of
//! periodic sampling — `interval/(n+1)` plus the MAC report latency — so
//! node count and sampling rate both purchase awareness, linearly in
//! power. The frontier (latency × power minimized) tells a deployment
//! designer where the µW budget is best spent.

use ami_core::context::{context_design_space, simulate_context_detection, ContextConfig};
use ami_experiments::{banner, print_table, section};
use ami_units::TimeSpan;

fn main() {
    banner("F14", "context-awareness latency vs deployment power");

    section("the default room: 4 nodes, 2 s sampling, 1 s radio checks");
    let report = simulate_context_detection(&ContextConfig::room_default());
    println!(
        "mean detection latency {:.2} s | p95 {:.2} s | deployment power {}",
        report.mean_latency.as_seconds(),
        report.p95_latency.as_seconds(),
        report.total_power
    );

    section("design space: nodes x sampling interval");
    let intervals: Vec<TimeSpan> = [0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let space = context_design_space(&[1, 2, 4, 8, 16], &intervals);
    let mut rows = Vec::new();
    for (nodes, interval, r) in &space {
        rows.push(vec![
            nodes.to_string(),
            format!("{:.1}", interval.as_seconds()),
            format!("{:.2}", r.mean_latency.as_seconds()),
            format!("{:.1}", r.total_power.as_microwatts()),
            format!("{:.2e}", r.latency_power_product()),
        ]);
    }
    print_table(
        &[
            "nodes",
            "sample (s)",
            "latency (s)",
            "power (uW)",
            "lat x pwr",
        ],
        &rows,
    );

    let best = space
        .iter()
        .min_by(|a, b| {
            a.2.latency_power_product()
                .total_cmp(&b.2.latency_power_product())
        })
        .expect("non-empty space");
    println!(
        "\nfrontier optimum: {} nodes sampling every {:.1} s ({:.2} s latency at {})",
        best.0,
        best.1.as_seconds(),
        best.2.mean_latency.as_seconds(),
        best.2.total_power
    );

    section("reading");
    println!("awareness is purchasable: latency = interval/(n+1) + MAC/2, power");
    println!("= n x node budget. But the measured frontier lands on ONE node");
    println!("sampling fast: sensing is nearly free (the ADC/ASIP are nW-µW)");
    println!("while every node pays the same radio-listening floor, and the");
    println!("MAC report latency caps what extra nodes can buy. Once again the");
    println!("keynote's µW challenge is the radio, not the sensing.");
}
