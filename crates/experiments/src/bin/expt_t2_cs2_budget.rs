//! T2 — CS2 (personal mW-node): component power budget of the
//! battery-powered audio receiver, per technology node.
//!
//! Expected shape: the analog front-end (tuner + converters) dominates
//! and barely moves across nodes, while the DSP line shrinks — the
//! keynote's "RF and mixed-signal integration" challenge in one table.

use ami_core::case_studies::cs2::{run_cs2, Cs2Config};
use ami_experiments::{banner, section};
use ami_tech::TechnologyNode;

fn main() {
    banner("T2", "CS2 audio receiver: component power budget");

    for node in [TechnologyNode::n130(), TechnologyNode::n90()] {
        let result = run_cs2(&Cs2Config {
            node: node.clone(),
            ..Cs2Config::default()
        });
        section(&format!("budget at {}", node.name()));
        print!("{}", result.budget.table());
        println!(
            "DSP jobs {} | misses {} | battery life {:.1} h on an alkaline AA",
            result.dsp.jobs_run,
            result.dsp.deadline_misses,
            result.battery_life.as_hours()
        );
    }

    section("reading");
    println!("scaling the digital baseband one node barely moves the total:");
    println!("the analog floor (tuner RF bias, converters, amplifier) is the");
    println!("mW-node design challenge the keynote points at.");
}
