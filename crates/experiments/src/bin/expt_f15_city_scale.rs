//! F15 — city-scale routing: the spatial-grid neighbor index and
//! incremental route repair that keep the network simulator linear-ish
//! as node counts climb toward ambient-intelligence densities.
//!
//! Expected shape: the grid CSR build visits ~9 cells per node instead
//! of all N, yet produces the scan's adjacency bit for bit; under a
//! churn mix every usable-set transition after round 0 is absorbed by
//! an incremental repair (never a full rebuild), and the repaired run
//! is report-identical to the retired full-rebuild oracle. The repaired
//! runs execute on the region-parallel PDES engine at
//! `AMBIENCE_THREADS` workers (the oracle runs stay on the serial
//! kernel), so the identity column also witnesses the parallel ≡ serial
//! contract. Everything printed is a count and the engine is
//! bit-identical at any worker count, so the output is byte-stable at
//! any `AMBIENCE_THREADS`.

use ami_experiments::{banner, print_table, section};
use ami_net::routing::{
    reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
    set_route_repair_enabled,
};
use ami_net::{
    simulate_gathering_faulted, simulate_gathering_faulted_par, CsrAdjacency, NetworkConfig,
    NetworkReport, Position, RoutingStrategy, Topology,
};
use ami_sim::fault::{FaultSchedule, FaultSpec};
use ami_sim::runner::thread_count;
use ami_units::Length;

/// The bench fault mix, frozen alongside `expt_bench_snapshot`.
const FAULT_MIX: &str = "death=0.1,outage=0.2:10,link=0.1:8";
const ROUNDS: u64 = 30;
const SEED: u64 = 2003;

/// Constant-density random field (side 25·√n m), as in the bench sweep.
fn field(n: usize) -> Topology {
    Topology::random(n, Length::from_meters(25.0 * (n as f64).sqrt()), SEED)
}

/// One faulted run, returning the report plus the (build, repair)
/// counter deltas it cost. `threads: None` runs the serial kernel (the
/// oracle side); `Some(t)` runs the region-parallel PDES engine on `t`
/// workers — bit-identical by contract, so the printed counts agree.
fn faulted_run(
    topo: &Topology,
    config: &NetworkConfig,
    faults: &FaultSchedule,
    threads: Option<usize>,
) -> (NetworkReport, u64, u64) {
    reset_route_build_count();
    reset_route_repair_count();
    let report = match threads {
        Some(threads) => simulate_gathering_faulted_par(
            topo,
            RoutingStrategy::MinimumEnergy,
            config,
            ROUNDS,
            faults,
            threads,
        ),
        None => {
            simulate_gathering_faulted(topo, RoutingStrategy::MinimumEnergy, config, ROUNDS, faults)
        }
    };
    (report, route_build_count(), route_repair_count())
}

fn main() {
    banner("F15", "city-scale routing: grid neighbors + route repair");
    let config = NetworkConfig::sensor_default();
    let spec = FaultSpec::parse(FAULT_MIX).expect("frozen fault mix parses");
    let sizes = [400usize, 1600, 4096];

    section("spatial-grid CSR vs the all-pairs scan (pinned oracle)");
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let topo = field(n);
            let positions: Vec<Position> = topo.ids().map(|id| topo.position(id)).collect();
            let grid = CsrAdjacency::build(&positions, config.max_hop);
            let scan = CsrAdjacency::build_scan(&positions, config.max_hop);
            vec![
                n.to_string(),
                grid.edge_count().to_string(),
                format!("{:.1}", grid.edge_count() as f64 / n as f64),
                if grid == scan { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(&["n", "edges", "avg degree", "grid == scan"], &rows);

    section(format!("churn mix [{FAULT_MIX}], {ROUNDS} rounds: repairs, not rebuilds").as_str());
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let topo = field(n);
            let faults = spec.schedule_for(SEED, n, ROUNDS);

            // Oracle first: the retired full-rebuild-per-transition
            // path, on the serial kernel. The repaired run then takes
            // the region-parallel engine at `AMBIENCE_THREADS`.
            set_route_repair_enabled(false);
            let (oracle_report, oracle_builds, _) = faulted_run(&topo, &config, &faults, None);
            set_route_repair_enabled(true);
            let (report, builds, repairs) =
                faulted_run(&topo, &config, &faults, Some(thread_count()));

            let offered = ROUNDS * (n as u64 - 1);
            vec![
                n.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * report.delivered_packets as f64 / offered as f64
                ),
                report.alive_nodes.to_string(),
                format!("{oracle_builds}"),
                format!("{builds}+{repairs}"),
                if report == oracle_report { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &[
            "n",
            "delivered",
            "alive",
            "oracle builds",
            "builds+repairs",
            "identical",
        ],
        &rows,
    );
    println!();
    println!("Every transition after round 0 is an incremental repair (builds stay at 1),");
    println!("and the repaired runs reproduce the full-rebuild oracle bit for bit.");
}
