//! F15 — city-scale routing: the spatial-grid neighbor index and
//! incremental route repair that keep the network simulator linear-ish
//! as node counts climb toward ambient-intelligence densities.
//!
//! Expected shape: the grid CSR build visits ~9 cells per node instead
//! of all N, yet produces the scan's adjacency bit for bit; under a
//! churn mix every usable-set transition after round 0 is absorbed by
//! an incremental repair (never a full rebuild), and the repaired run
//! is report-identical to the retired full-rebuild oracle. The repaired
//! runs execute on the region-parallel PDES engine at
//! `AMBIENCE_THREADS` workers (the oracle runs stay on the serial
//! kernel), so the identity column also witnesses the parallel ≡ serial
//! contract. Everything printed is a count and the engine is
//! bit-identical at any worker count, so the output is byte-stable at
//! any `AMBIENCE_THREADS`.
//!
//! The sizes, density, seed, rounds and churn mix load from the
//! checked-in `scenarios/f15_city_scale.scenario.json` through the
//! scenario engine (override with `AMBIENCE_SCENARIO`); the output is
//! byte-identical to the former hard-coded constants.

use ami_experiments::{banner, print_table, section};
use ami_net::routing::{
    reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
    set_route_repair_enabled,
};
use ami_net::{
    simulate_gathering_faulted, simulate_gathering_faulted_par, CsrAdjacency, NetworkConfig,
    NetworkReport, Position, RoutingStrategy, Topology,
};
use ami_scenario::ScenarioSpec;
use ami_sim::fault::{FaultSchedule, FaultSpec};
use ami_sim::runner::thread_count;
use ami_units::Length;

const SCENARIO: &str = "crates/experiments/scenarios/f15_city_scale.scenario.json";

/// Pulls a single-valued axis out of the scenario.
fn scalar_axis(scenario: &ScenarioSpec, name: &str) -> f64 {
    let values = scenario
        .axis(name)
        .unwrap_or_else(|| panic!("scenario is missing the {name} axis"));
    assert_eq!(values.len(), 1, "{name} must carry exactly one value");
    values[0]
}

/// Constant-density random field (side `density`·√n m), as in the bench
/// sweep.
fn field(n: usize, density: f64, seed: u64) -> Topology {
    Topology::random(n, Length::from_meters(density * (n as f64).sqrt()), seed)
}

/// One faulted run, returning the report plus the (build, repair)
/// counter deltas it cost. `threads: None` runs the serial kernel (the
/// oracle side); `Some(t)` runs the region-parallel PDES engine on `t`
/// workers — bit-identical by contract, so the printed counts agree.
fn faulted_run(
    topo: &Topology,
    config: &NetworkConfig,
    faults: &FaultSchedule,
    rounds: u64,
    threads: Option<usize>,
) -> (NetworkReport, u64, u64) {
    reset_route_build_count();
    reset_route_repair_count();
    let report = match threads {
        Some(threads) => simulate_gathering_faulted_par(
            topo,
            RoutingStrategy::MinimumEnergy,
            config,
            rounds,
            faults,
            threads,
        ),
        None => {
            simulate_gathering_faulted(topo, RoutingStrategy::MinimumEnergy, config, rounds, faults)
        }
    };
    (report, route_build_count(), route_repair_count())
}

fn main() {
    let scenario = ami_scenario::load_for_binary(SCENARIO).unwrap_or_else(|err| panic!("{err}"));
    let fault_mix = scenario
        .faults
        .clone()
        .expect("F15 scenario carries a fault mix");
    let rounds = scenario.rounds;
    let seed = scenario.seed;
    let density = scalar_axis(&scenario, "field_m_per_sqrt_n");
    let sizes = scenario.axis_usize("nodes").expect("integral nodes axis");

    banner("F15", "city-scale routing: grid neighbors + route repair");
    let config = scenario.network.to_network_config();
    let spec = FaultSpec::parse(&fault_mix).expect("frozen fault mix parses");

    section("spatial-grid CSR vs the all-pairs scan (pinned oracle)");
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let topo = field(n, density, seed);
            let positions: Vec<Position> = topo.ids().map(|id| topo.position(id)).collect();
            let grid = CsrAdjacency::build(&positions, config.max_hop);
            let scan = CsrAdjacency::build_scan(&positions, config.max_hop);
            vec![
                n.to_string(),
                grid.edge_count().to_string(),
                format!("{:.1}", grid.edge_count() as f64 / n as f64),
                if grid == scan { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(&["n", "edges", "avg degree", "grid == scan"], &rows);

    section(format!("churn mix [{fault_mix}], {rounds} rounds: repairs, not rebuilds").as_str());
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let topo = field(n, density, seed);
            let faults = spec.schedule_for(seed, n, rounds);

            // Oracle first: the retired full-rebuild-per-transition
            // path, on the serial kernel. The repaired run then takes
            // the region-parallel engine at `AMBIENCE_THREADS`.
            set_route_repair_enabled(false);
            let (oracle_report, oracle_builds, _) =
                faulted_run(&topo, &config, &faults, rounds, None);
            set_route_repair_enabled(true);
            let (report, builds, repairs) =
                faulted_run(&topo, &config, &faults, rounds, Some(thread_count()));

            let offered = rounds * (n as u64 - 1);
            vec![
                n.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * report.delivered_packets as f64 / offered as f64
                ),
                report.alive_nodes.to_string(),
                format!("{oracle_builds}"),
                format!("{builds}+{repairs}"),
                if report == oracle_report { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &[
            "n",
            "delivered",
            "alive",
            "oracle builds",
            "builds+repairs",
            "identical",
        ],
        &rows,
    );
    println!();
    println!("Every transition after round 0 is an incremental repair (builds stay at 1),");
    println!("and the repaired runs reproduce the full-rebuild oracle bit for bit.");
}
