//! A2 — ablation: battery-model fidelity on the CS2 lifetime conclusion.
//!
//! Expected shape: at the receiver's ~100 mW draw the three models agree
//! within a few tens of percent (the conclusion is robust), but under a
//! heavy 1 A-class load Peukert derating cuts the naive lifetime by half
//! or more — model choice matters exactly where the datasheet rate is
//! exceeded.

use ami_core::case_studies::cs2::{run_cs2, Cs2Config};
use ami_energy::{Battery, BatteryModel, Chemistry, KineticBattery};
use ami_experiments::{banner, print_table, section};
use ami_units::{Energy, Power, TimeSpan};

fn main() {
    banner("A2", "battery-model fidelity ablation");
    let models = [
        ("linear", BatteryModel::Linear),
        ("Peukert", BatteryModel::Peukert),
        ("rate-capacity", BatteryModel::RateCapacity),
    ];

    section("CS2 receiver lifetime (alkaline AA) per battery model");
    let mut rows = Vec::new();
    for (name, model) in models {
        let result = run_cs2(&Cs2Config {
            battery_model: model,
            ..Cs2Config::default()
        });
        rows.push(vec![
            name.to_owned(),
            format!("{:.1}", result.battery_life.as_hours()),
        ]);
    }
    print_table(&["model", "life (h)"], &rows);

    section("lifetime under synthetic constant loads (alkaline AA)");
    let loads = [
        ("10 mW", Power::from_milliwatts(10.0)),
        ("75 mW (rated)", Power::from_milliwatts(75.0)),
        ("300 mW", Power::from_milliwatts(300.0)),
        ("1.5 W", Power::from_watts(1.5)),
    ];
    let mut rows = Vec::new();
    for (caption, load) in loads {
        let mut row = vec![caption.to_owned()];
        for (_, model) in models {
            let cell = Battery::new(Chemistry::AlkalineAa, model);
            row.push(format!("{:.1}", cell.lifetime_under(load).as_hours()));
        }
        rows.push(row);
    }
    print_table(
        &["load", "linear (h)", "Peukert (h)", "rate-cap (h)"],
        &rows,
    );

    section("kinetic (KiBaM) recovery: pulsed vs continuous heavy load");
    let run_until_brownout = |pulsed: bool| -> Energy {
        let mut cell = KineticBattery::from_chemistry(Chemistry::LiCoin);
        let mut total = Energy::ZERO;
        let chunk = TimeSpan::from_minutes(1.0);
        let load = Power::from_milliwatts(90.0); // 30 mA: brutal for a coin cell
        loop {
            let got = cell.drain(load, chunk);
            total += got;
            if pulsed {
                cell.rest(chunk);
            }
            if got.as_joules() < (load * chunk).as_joules() * 0.999 {
                return total;
            }
        }
    };
    let continuous = run_until_brownout(false);
    let pulsed = run_until_brownout(true);
    println!("continuous 90 mW until brown-out : {continuous}");
    println!("pulsed 90 mW @ 50% duty          : {pulsed}");
    println!(
        "recovery gain: {:.1}% more energy extracted",
        100.0 * (pulsed.as_joules() / continuous.as_joules() - 1.0)
    );

    section("reading");
    println!("below the rated current the models converge; above it Peukert");
    println!("derating dominates. The CS2 conclusion (tens of hours) is robust");
    println!("to model choice because the receiver stays near the rated rate.");
    println!("KiBaM adds the recovery effect: bursty (duty-cycled) operation");
    println!("extracts more of a coin cell than the same average drawn flat.");
}
