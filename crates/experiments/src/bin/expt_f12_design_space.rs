//! F12 — the µW-node design space: PV area × check interval feasibility.
//!
//! Expected shape: a monotone feasibility frontier — more collecting area
//! buys faster listening; patience (longer check intervals) substitutes
//! for silicon-external cost. The corner the keynote's autonomous node
//! must live in is visible at a glance.

use ami_core::case_studies::cs1::Cs1Config;
use ami_core::design_space::{cs1_frontier, explore_cs1, render_map};
use ami_experiments::{banner, section};
use ami_units::{Area, TimeSpan};

fn main() {
    banner(
        "F12",
        "CS1 design space: harvester area vs listening latency",
    );
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );

    let areas: Vec<Area> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&cm2| Area::from_square_centimeters(cm2))
        .collect();
    let intervals: Vec<TimeSpan> = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let cells = explore_cs1(&Cs1Config::default(), &areas, &intervals);

    section("feasibility map (# = energy-neutral over the office day)");
    print!("{}", render_map(&cells));

    section("frontier: smallest sustainable PV cell per check interval");
    for (interval, area) in cs1_frontier(&cells) {
        println!(
            "check every {:>5.2} s -> {}",
            interval.as_seconds(),
            area.map_or("infeasible on this grid".to_owned(), |a| format!(
                "{:.0} cm2",
                a.as_square_centimeters()
            ))
        );
    }

    section("reading");
    println!("listening latency is purchasable with collector area and vice");
    println!("versa; the product of the two is (to first order) fixed by the");
    println!("radio's check energy — the µW-node design rule in one figure.");
}
