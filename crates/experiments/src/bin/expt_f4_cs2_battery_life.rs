//! F4 — CS2: battery life versus DVS policy and technology node.
//!
//! Expected shape: DVS buys a solid battery-life improvement on the DSP
//! line (which is slack-rich), but because the analog floor dominates the
//! receiver, the *device-level* gain is percent-scale — while the
//! *DSP-level* energy drops by 2-5x. Both views are printed.

use ami_core::case_studies::cs2::sweep_battery_life;
use ami_dvs::DvsPolicy;
use ami_experiments::{banner, print_table, section};
use ami_tech::TechnologyNode;

fn main() {
    banner("F4", "CS2: battery life vs DVS policy and node");

    let nodes = [
        TechnologyNode::n250(),
        TechnologyNode::n180(),
        TechnologyNode::n130(),
        TechnologyNode::n90(),
        TechnologyNode::n65(),
    ];
    let policies = DvsPolicy::all();
    let rows_raw = sweep_battery_life(&nodes, &policies);

    section("DSP average power (mW) by node and policy");
    let mut rows = Vec::new();
    for node in &nodes {
        let mut row = vec![node.name().to_owned()];
        for &policy in &policies {
            let entry = rows_raw
                .iter()
                .find(|(n, p, _, _)| n == node.name() && *p == policy)
                .expect("sweep covers the grid");
            row.push(format!("{:.2}", entry.2.as_milliwatts()));
        }
        rows.push(row);
    }
    print_table(
        &["node", "no DVS", "static", "WCET stretch", "oracle"],
        &rows,
    );

    section("battery life (hours) by node and policy");
    let mut rows = Vec::new();
    for node in &nodes {
        let mut row = vec![node.name().to_owned()];
        for &policy in &policies {
            let entry = rows_raw
                .iter()
                .find(|(n, p, _, _)| n == node.name() && *p == policy)
                .expect("sweep covers the grid");
            row.push(format!("{:.1}", entry.3.as_hours()));
        }
        rows.push(row);
    }
    print_table(
        &["node", "no DVS", "static", "WCET stretch", "oracle"],
        &rows,
    );

    section("reading");
    println!("DVS slashes the DSP line (compare columns), and scaling shrinks");
    println!("it further (compare rows) until leakage pushes back at 65 nm;");
    println!("device-level battery life moves less because the analog floor");
    println!("does not scale — see T2.");
}
