//! A5 — ablation: in-network aggregation (data fusion) on gathering cost.
//!
//! Expected shape: with no fusion the bits relayed toward the sink grow
//! with network size and the sink-adjacent relays carry everything; full
//! fusion caps every transmission at one summary, so the energy per
//! *generated* bit flattens with scale — the keynote's "ambient functions
//! move information, not packets" in numbers.

use ami_experiments::{banner, print_table, section};
use ami_net::{analyze_aggregation, Topology};
use ami_radio::RadioEnergyModel;
use ami_units::{DataVolume, Length};

fn main() {
    banner("A5", "in-network aggregation vs raw relaying");
    let radio = RadioEnergyModel::short_range_2003();
    let payload = DataVolume::from_bytes(16.0);
    let framing = DataVolume::from_bits(112.0);
    let range = Length::from_meters(45.0);

    section("energy per generated bit (nJ) across fusion factors, 6x6 grid");
    let topo = Topology::grid(6, Length::from_meters(30.0));
    let mut rows = Vec::new();
    for fusion in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let report = analyze_aggregation(&topo, &radio, range, payload, framing, fusion);
        rows.push(vec![
            format!("{fusion:.2}"),
            format!("{:.1}", report.sink_volume.as_kilobits()),
            format!("{:.2}", report.round_energy.as_millijoules()),
            format!(
                "{:.0}",
                report.energy_per_generated_bit.as_nanojoules_per_bit()
            ),
        ]);
    }
    print_table(
        &["fusion", "sink kbit/round", "mJ/round", "nJ/generated bit"],
        &rows,
    );

    section("scaling: energy per generated bit vs grid side");
    let mut rows = Vec::new();
    for side in [3usize, 5, 7, 9] {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let raw = analyze_aggregation(&topo, &radio, range, payload, framing, 1.0);
        let fused = analyze_aggregation(&topo, &radio, range, payload, framing, 0.0);
        rows.push(vec![
            format!("{side}x{side}"),
            format!(
                "{:.0}",
                raw.energy_per_generated_bit.as_nanojoules_per_bit()
            ),
            format!(
                "{:.0}",
                fused.energy_per_generated_bit.as_nanojoules_per_bit()
            ),
            format!(
                "{:.1}x",
                raw.round_energy.as_joules() / fused.round_energy.as_joules()
            ),
        ]);
    }
    print_table(
        &["grid", "raw nJ/bit", "fused nJ/bit", "fusion saving"],
        &rows,
    );

    section("reading");
    println!("raw relaying cost per generated bit grows with scale (the relays");
    println!("near the sink forward everything); full fusion makes it flat.");
    println!("In-network processing is what lets µW networks scale.");
}
