//! F5 — CS3 (static W-node): throughput versus power for CPU/DSP/ASIC
//! implementations of the video kernel; the flexibility crossover.
//!
//! Expected shape: the ASIC sustains SD far inside the 2 W ceiling; the
//! CPU cannot even reach SD throughput; the programmable middle (ASIP,
//! DSP, FPGA) tops out between QCIF and CIF-or-SD — "who wins" depends
//! on the rate.

use ami_core::case_studies::cs3::{flexibility_table_text, Cs3Config};
use ami_experiments::tables::f5_best_format_lines_threads;
use ami_experiments::{banner, section};
use ami_tech::TechnologyNode;

fn main() {
    banner("F5", "CS3 media hub: the flexibility-efficiency crossover");
    let config = Cs3Config::default();
    let threads = ami_sim::thread_count();

    section(&format!(
        "feasibility and power at {} (25 fps, ceiling {})",
        config.node.name(),
        config.ceiling
    ));
    print!("{}", flexibility_table_text(&config));

    section("highest sustainable format per class (within ceiling)");
    // One worker per architecture class; class-order merge keeps the
    // listing byte-identical to the old serial loop.
    for line in f5_best_format_lines_threads(threads, &config) {
        println!("{line}");
    }

    section("and at 65 nm — scaling relaxes the gap");
    let future = Cs3Config {
        node: TechnologyNode::n65(),
        ..Cs3Config::default()
    };
    for line in f5_best_format_lines_threads(threads, &future) {
        println!("{line}");
    }
}
