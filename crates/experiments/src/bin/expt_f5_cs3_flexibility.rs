//! F5 — CS3 (static W-node): throughput versus power for CPU/DSP/ASIC
//! implementations of the video kernel; the flexibility crossover.
//!
//! Expected shape: the ASIC sustains SD far inside the 2 W ceiling; the
//! CPU cannot even reach SD throughput; the programmable middle (ASIP,
//! DSP, FPGA) tops out between QCIF and CIF-or-SD — "who wins" depends
//! on the rate.

use ami_arch::ArchitectureClass;
use ami_core::case_studies::cs3::{best_format, flexibility_table_text, Cs3Config};
use ami_experiments::{banner, section};
use ami_tech::TechnologyNode;

fn main() {
    banner("F5", "CS3 media hub: the flexibility-efficiency crossover");
    let config = Cs3Config::default();

    section(&format!(
        "feasibility and power at {} (25 fps, ceiling {})",
        config.node.name(),
        config.ceiling
    ));
    print!("{}", flexibility_table_text(&config));

    section("highest sustainable format per class (within ceiling)");
    for class in ArchitectureClass::all() {
        println!(
            "{:<5}  {}",
            class.to_string(),
            best_format(&config, class).map_or("none".to_owned(), |f| f.to_string())
        );
    }

    section("and at 65 nm — scaling relaxes the gap");
    let future = Cs3Config {
        node: TechnologyNode::n65(),
        ..Cs3Config::default()
    };
    for class in ArchitectureClass::all() {
        println!(
            "{:<5}  {}",
            class.to_string(),
            best_format(&future, class).map_or("none".to_owned(), |f| f.to_string())
        );
    }
}
