//! F2 — intrinsic computational efficiency versus technology node, and
//! the ASIC/DSP/CPU flexibility gap on top of it.
//!
//! Expected shape: MOPS/mW improves roughly 2x per node at the ASIC
//! bound; the flexibility gap (CPU vs ASIC) holds at 2–3 decades at every
//! node.

use ami_arch::{ArchitectureClass, Processor};
use ami_experiments::{banner, print_table, section};
use ami_tech::{intrinsic_efficiency, Roadmap};

fn main() {
    banner("F2", "computational efficiency across the 2003 roadmap");
    let roadmap = Roadmap::full_2003();

    section("intrinsic (ASIC-bound) efficiency per node");
    let rows: Vec<Vec<String>> = roadmap
        .nodes()
        .iter()
        .map(|node| {
            let ice = intrinsic_efficiency(node, node.vdd_nominal());
            vec![
                node.name().to_owned(),
                format!("{:.2}", node.vdd_nominal().as_volts()),
                format!("{:.1}", ice.as_mops_per_milliwatt()),
                format!("{:.2}", ice.to_energy_per_op().as_picojoules_per_op()),
            ]
        })
        .collect();
    print_table(&["node", "Vdd (V)", "MOPS/mW", "pJ/op"], &rows);

    section("architecture-class efficiency (MOPS/mW) per node");
    let classes = ArchitectureClass::all();
    let mut rows = Vec::new();
    for node in roadmap.nodes() {
        let mut row = vec![node.name().to_owned()];
        for class in classes {
            let p = Processor::new("p", class, node.clone());
            row.push(format!(
                "{:.3}",
                p.efficiency(node.vdd_nominal()).as_mops_per_milliwatt()
            ));
        }
        rows.push(row);
    }
    print_table(&["node", "ASIC", "ASIP", "DSP", "FPGA", "CPU"], &rows);

    section("flexibility gap (CPU energy/op over ASIC energy/op)");
    for node in roadmap.nodes() {
        let asic = Processor::new("a", ArchitectureClass::Asic, node.clone());
        let cpu = Processor::new("c", ArchitectureClass::Cpu, node.clone());
        let gap = cpu.energy_per_op_nominal().as_joules_per_op()
            / asic.energy_per_op_nominal().as_joules_per_op();
        println!("{:<6}  {gap:.0}x", node.name());
    }
}
