//! F8 — link reliability economics: energy per *delivered* bit under
//! ARQ and FEC across channel quality.
//!
//! Expected shape: on clean channels the uncoded link wins (coding
//! overhead is pure loss); as BER degrades, first Hamming(7,4) and then
//! repetition-3 take over; ARQ alone collapses once whole packets rarely
//! survive. The crossovers are the µW-node link-design rules.

use ami_experiments::{banner, print_table, section};
use ami_radio::{analyze_reliability, FecScheme, Packet, RadioEnergyModel, StopAndWaitArq};
use ami_units::Length;

fn main() {
    banner(
        "F8",
        "energy per delivered bit: ARQ x FEC across channel BER",
    );
    let radio = RadioEnergyModel::short_range_2003();
    let packet = Packet::sensor_report();
    let d = Length::from_meters(20.0);
    let arq = StopAndWaitArq::new(8);

    section("nJ per delivered payload bit (8-attempt ARQ, 20 m hop)");
    let bers = [1e-6, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2];
    let mut rows = Vec::new();
    for &ber in &bers {
        let mut row = vec![format!("{ber:.0e}")];
        for fec in FecScheme::all() {
            let report = analyze_reliability(&packet, fec, arq, ber, d, &radio);
            row.push(format!(
                "{:.1} ({:.0}%)",
                report.energy_per_delivered_bit.as_nanojoules_per_bit(),
                100.0 * report.delivery_probability
            ));
        }
        rows.push(row);
    }
    print_table(
        &["channel BER", "uncoded", "repetition-3", "Hamming(7,4)"],
        &rows,
    );

    section("winner per channel (lowest energy per delivered bit)");
    for &ber in &bers {
        let winner = FecScheme::all()
            .into_iter()
            .min_by(|&a, &b| {
                let ea =
                    analyze_reliability(&packet, a, arq, ber, d, &radio).energy_per_delivered_bit;
                let eb =
                    analyze_reliability(&packet, b, arq, ber, d, &radio).energy_per_delivered_bit;
                ea.total_cmp(&eb)
            })
            .expect("three schemes");
        println!("BER {ber:>6.0e}: {winner}");
    }

    section("expected transmissions (uncoded) vs ARQ budget at BER 1e-2");
    let mut rows = Vec::new();
    for budget in [1u32, 2, 4, 8, 16] {
        let report = analyze_reliability(
            &packet,
            FecScheme::None,
            StopAndWaitArq::new(budget),
            1e-2,
            d,
            &radio,
        );
        rows.push(vec![
            budget.to_string(),
            format!("{:.2}", report.expected_transmissions),
            format!("{:.1}%", 100.0 * report.delivery_probability),
            format!(
                "{:.1}",
                report.energy_per_delivered_bit.as_nanojoules_per_bit()
            ),
        ]);
    }
    print_table(&["max tx", "E[tx]", "delivery", "nJ/delivered bit"], &rows);

    section("reading");
    println!("reliability is an energy knob: pick the cheapest mechanism that");
    println!("meets the delivery target for the channel you actually have.");
}
