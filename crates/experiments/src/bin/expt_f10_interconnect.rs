//! F10 — on-chip communication: moving a bit vs computing on it, and the
//! bus/segmented-fabric trade.
//!
//! Expected shape: crossing the die costs about as much as an ASIC
//! operation at 130 nm and the ratio worsens with scaling (wires scale
//! worse than gates); segmented fabrics win exactly when traffic is
//! local — the NoC argument of the 2003 proceedings.

use ami_arch::Interconnect;
use ami_experiments::{banner, print_table, section};
use ami_tech::{intrinsic_energy_per_op, Roadmap};
use ami_units::{DataVolume, Length};

fn main() {
    banner("F10", "on-chip interconnect energy vs computation");

    section("die-crossing cost vs ASIC op cost per node (pJ)");
    let mut rows = Vec::new();
    for node in Roadmap::full_2003().nodes() {
        let fabric = Interconnect::typical_soc(node.clone());
        let wire = fabric
            .wire_energy_per_bit(Length::from_millimeters(10.0))
            .as_picojoules();
        let op = intrinsic_energy_per_op(node, node.vdd_nominal()).as_picojoules_per_op();
        rows.push(vec![
            node.name().to_owned(),
            format!("{wire:.2}"),
            format!("{op:.2}"),
            format!("{:.2}", wire / op),
        ]);
    }
    print_table(
        &["node", "10mm wire pJ/bit", "ASIC pJ/op", "wire/op ratio"],
        &rows,
    );

    section("bus vs segmented fabric for a 32-bit transfer at 130 nm");
    let fabric = Interconnect::typical_soc(ami_tech::TechnologyNode::n130());
    let word = DataVolume::from_bytes(4.0);
    let mut rows = Vec::new();
    for (caption, mm) in [
        ("neighbour tile", 2.0),
        ("across half the die", 5.0),
        ("full span", 10.0),
    ] {
        let advantage = fabric.segmentation_advantage(word, Length::from_millimeters(mm));
        rows.push(vec![
            caption.to_owned(),
            format!("{mm:.0} mm"),
            format!("{advantage:.2}x"),
        ]);
    }
    print_table(&["traffic pattern", "path", "bus/segmented energy"], &rows);
    println!(
        "\nbus transfer of one word: {} | segmented (3-hop): {}",
        fabric.bus_transfer_energy(word),
        fabric.segmented_transfer_energy(word)
    );

    section("reading");
    println!("wires scale worse than gates: the wire/op ratio grows every node.");
    println!("Segmented on-chip networks pay off exactly as far as traffic is");
    println!("local — the architectural echo of the multi-hop result (F6).");
}
