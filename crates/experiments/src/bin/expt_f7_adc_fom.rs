//! F7 — data-converter power via the figure-of-merit law, placing the
//! interface electronics on the power–information graph.
//!
//! Expected shape: power doubles per effective bit and scales linearly
//! with sample rate; sensor-class converters live in nanowatts, audio in
//! milliwatts, video at tens of milliwatts — interface electronics spans
//! the same three decades as the device classes themselves.

use ami_arch::converter::FOM_2003;
use ami_arch::Adc;
use ami_experiments::{banner, print_table, section};
use ami_power::PowerClass;
use ami_units::Frequency;

fn main() {
    banner(
        "F7",
        "ADC power across resolution and sample rate (FoM law)",
    );

    section(&format!(
        "P = FoM * 2^ENOB * fs at the 2003 state of the art ({} pJ/step)",
        FOM_2003 * 1e12
    ));
    let bits = [8.0, 10.0, 12.0, 14.0, 16.0];
    let rates = [
        ("1 kS/s", Frequency::from_kilohertz(1.0)),
        ("100 kS/s", Frequency::from_kilohertz(100.0)),
        ("1 MS/s", Frequency::from_megahertz(1.0)),
        ("10 MS/s", Frequency::from_megahertz(10.0)),
        ("100 MS/s", Frequency::from_megahertz(100.0)),
    ];
    let mut rows = Vec::new();
    for &b in &bits {
        let mut row = vec![format!("{b:.0} bit")];
        for (_, rate) in &rates {
            let adc = Adc::state_of_the_art_2003(b, *rate);
            row.push(format!("{}", adc.power()));
        }
        rows.push(row);
    }
    print_table(
        &[
            "ENOB", "1 kS/s", "100 kS/s", "1 MS/s", "10 MS/s", "100 MS/s",
        ],
        &rows,
    );

    section("archetype converters and the class they belong to");
    let archetypes = [
        (
            "sensor (12 bit, 100 S/s)",
            12.0,
            Frequency::from_hertz(100.0),
        ),
        (
            "audio (16 bit, 48 kS/s)",
            16.0,
            Frequency::from_kilohertz(48.0),
        ),
        (
            "DAB IF (10 bit, 8.2 MS/s)",
            10.0,
            Frequency::from_megahertz(8.192),
        ),
        (
            "video (10 bit, 27 MS/s)",
            10.0,
            Frequency::from_megahertz(27.0),
        ),
        (
            "WLAN (8 bit, 100 MS/s)",
            8.0,
            Frequency::from_megahertz(100.0),
        ),
    ];
    for (name, enob, rate) in archetypes {
        let adc = Adc::state_of_the_art_2003(enob, rate);
        println!(
            "{:<28}  {:>10}  fits the {}",
            name,
            adc.power().to_string(),
            PowerClass::of(adc.power())
        );
    }
}
