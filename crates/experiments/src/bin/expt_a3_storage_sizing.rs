//! A3 — ablation: storage sizing on the CS1 node's outage probability.
//!
//! Expected shape: with a healthy average-power margin, outage is decided
//! entirely by whether the buffer bridges the dark 14 hours of the office
//! day (~0.3 J for the default node). Undersized caps starve every night;
//! oversized ones add nothing but leakage.

use ami_core::case_studies::cs1::{run_cs1, sweep_storage, Cs1Config};
use ami_experiments::{banner, print_table, section};
use ami_units::Capacitance;

fn main() {
    banner("A3", "CS1 storage sizing vs overnight outage");
    let base = Cs1Config::default();

    let result = run_cs1(&base);
    section("margin check (storage-independent)");
    println!(
        "mean harvest {} vs mean load {} -> margin {}",
        result.sustainability.mean_harvest,
        result.sustainability.mean_load,
        result.sustainability.margin()
    );

    section("sweep: supercapacitor size at 2.5 V (usable = 75% of E = CV^2/2)");
    let caps: Vec<Capacitance> = [5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0]
        .iter()
        .map(|&mf| Capacitance::from_millifarads(mf))
        .collect();
    let rows: Vec<Vec<String>> = sweep_storage(&base, &caps)
        .into_iter()
        .map(|(c, outage)| {
            let usable = 0.75 * 0.5 * c.as_farads() * 2.5 * 2.5;
            vec![
                format!("{:.0}", c.as_farads() * 1e3),
                format!("{usable:.3}"),
                format!("{:.1}%", 100.0 * outage),
                if outage == 0.0 { "OK" } else { "starves" }.to_owned(),
            ]
        })
        .collect();
    print_table(&["cap (mF)", "usable (J)", "outage", "verdict"], &rows);

    section("reading");
    println!("average power says nothing about the night: the buffer must hold");
    println!("the dark-hours energy (~0.3 J here). The knee of the outage curve");
    println!("is the storage-sizing rule for every autonomous node.");
}
