//! A1 — ablation: the leakage model on/off across the roadmap.
//!
//! Expected shape: without leakage, every shrink is a pure win and the
//! 65 nm node looks ~10x better than 250 nm for fixed work; with the
//! subthreshold model the leakage share climbs from negligible to double
//! digits, and for low-activity (ambient!) workloads it caps the benefit
//! of scaling — the central scaled-CMOS design challenge.

use ami_experiments::{banner, print_table, section};
use ami_tech::{DesignPoint, LeakageModel, Roadmap, TechnologyNode};
use ami_units::{Frequency, Temperature};

fn project(roadmap: &Roadmap, design: &DesignPoint) -> Vec<Vec<String>> {
    roadmap
        .project(design)
        .into_iter()
        .map(|step| {
            vec![
                step.node.clone(),
                format!("{}", step.dynamic),
                format!("{}", step.leakage),
                format!("{}", step.total()),
                format!("{:.1}%", 100.0 * step.leakage_fraction()),
            ]
        })
        .collect()
}

fn main() {
    banner("A1", "leakage ablation across the roadmap");

    let active = DesignPoint::new(
        500e3,
        0.12,
        Frequency::from_megahertz(100.0),
        Temperature::ROOM,
    );
    let ambient = DesignPoint::new(
        500e3,
        0.005,
        Frequency::from_megahertz(2.0),
        Temperature::ROOM,
    );

    let with = Roadmap::full_2003();
    let without = Roadmap::new(
        with.nodes()
            .iter()
            .cloned()
            .map(|n| n.with_leakage_model(LeakageModel::Off))
            .collect(),
    );

    section("active design (500 kgate, 12% activity, 100 MHz) — leakage ON");
    print_table(
        &["node", "dynamic", "leakage", "total", "leak share"],
        &project(&with, &active),
    );

    section("same design — leakage OFF (the pre-130 nm mental model)");
    print_table(
        &["node", "dynamic", "leakage", "total", "leak share"],
        &project(&without, &active),
    );

    section("ambient-workload design (0.5% activity, 2 MHz) — leakage ON");
    print_table(
        &["node", "dynamic", "leakage", "total", "leak share"],
        &project(&with, &ambient),
    );

    section("temperature sensitivity at 65 nm (ambient design)");
    let mut rows = Vec::new();
    for celsius in [25.0, 45.0, 65.0, 85.0] {
        let node = TechnologyNode::n65();
        let leak = node.leakage_power(
            500e3,
            node.vdd_nominal(),
            Temperature::from_celsius(celsius),
        );
        rows.push(vec![format!("{celsius:.0} C"), format!("{leak}")]);
    }
    print_table(&["temperature", "leakage"], &rows);

    section("mitigation: MTCMOS power gating (sleep transistors)");
    let gate = ami_tech::PowerGate::sleep_transistor_2003();
    let mut rows = Vec::new();
    for node in Roadmap::full_2003().nodes() {
        let ungated = node.leakage_power(500e3, node.vdd_nominal(), Temperature::ROOM);
        let gated = gate.gated_leakage(node, 500e3, Temperature::ROOM);
        let be = gate.breakeven_idle(node, 500e3, Temperature::ROOM);
        rows.push(vec![
            node.name().to_owned(),
            format!("{ungated}"),
            format!("{gated}"),
            format!("{be}"),
        ]);
    }
    print_table(&["node", "idle leakage", "gated", "break-even idle"], &rows);

    section("reading");
    println!("for always-on, low-activity ambient silicon the leakage share at");
    println!("90/65 nm dominates the budget: the correct 2003 design choice is");
    println!("an older node (CS1 defaults to 180 nm) or power gating, whose");
    println!("break-even idle time at 65 nm is sub-millisecond — gate everything.");
}
