//! F3 — CS1 (autonomous µW-node): harvested versus consumed power across
//! the radio duty-cycle knob, and the sustainable-operation region.
//!
//! Expected shape: node load falls with the check interval; the
//! sustainable region opens up once the load drops below the mean
//! harvested power (≈14 µW for the default 8 cm² office cell), which
//! happens around second-scale check intervals.
//!
//! The ledger span and sweep axis load from the checked-in
//! `scenarios/f3_cs1_duty_cycle.scenario.json` (override with
//! `AMBIENCE_SCENARIO`); the output is byte-identical to the former
//! hard-coded constants.

use ami_core::case_studies::cs1::{cs1_energy_ledger, run_cs1, sweep_check_interval, Cs1Config};
use ami_experiments::manifests::{emit_when_requested, f3_manifest};
use ami_experiments::{banner, print_table, section};
use ami_scenario::WorkloadSpec;
use ami_sim::obs::EnergyCategory;
use ami_units::TimeSpan;

const SCENARIO: &str = "crates/experiments/scenarios/f3_cs1_duty_cycle.scenario.json";

fn main() {
    let scenario = ami_scenario::load_for_binary(SCENARIO).unwrap_or_else(|err| panic!("{err}"));
    let WorkloadSpec::Cs1DutyCycle { ledger_days } = scenario.workload else {
        panic!(
            "F3 needs a cs1_duty_cycle scenario, got {:?}",
            scenario.workload.kind()
        );
    };

    banner("F3", "CS1 sensor node: duty cycle vs sustainability");
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );

    let base = Cs1Config::default();
    section("default node budget");
    let result = run_cs1(&base);
    print!("{}", result.budget.table());
    println!(
        "mean harvest {} | mean load {} | margin {} | outage {:.1}% | sustainable: {}",
        result.sustainability.mean_harvest,
        result.sustainability.mean_load,
        result.sustainability.margin(),
        100.0 * result.sustainability.outage_fraction,
        result.sustainability.sustainable
    );

    section("3-day energy ledger (where every joule goes)");
    let ledger = cs1_energy_ledger(&base, TimeSpan::from_days(ledger_days));
    for category in EnergyCategory::ALL {
        println!(
            "{:>8}  {:>8.3} J  {:>5.1}%",
            category.label(),
            ledger.category_total(category).as_joules(),
            100.0 * ledger.fraction(category)
        );
    }
    println!("{:>8}  {:>8.3} J", "total", ledger.total().as_joules());

    section("sweep: MAC check interval (the duty-cycle knob)");
    let intervals: Vec<TimeSpan> = scenario
        .axis("check_interval_s")
        .expect("validated cs1 scenario has a check_interval_s axis")
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let rows: Vec<Vec<String>> = sweep_check_interval(&base, &intervals)
        .into_iter()
        .map(|(interval, load, harvest, sustainable)| {
            vec![
                format!("{:.2}", interval.as_seconds()),
                format!("{:.1}", load.as_microwatts()),
                format!("{:.1}", harvest.as_microwatts()),
                if sustainable { "YES" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &["check (s)", "load (uW)", "harvest (uW)", "sustainable"],
        &rows,
    );
    println!();
    println!("the sustainable region opens where load < harvest: the node");
    println!("must duty-cycle its receiver below ~1% to live on office light.");

    emit_when_requested(f3_manifest);
}
