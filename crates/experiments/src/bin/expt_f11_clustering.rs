//! F11 — cluster-head rotation versus the static minimum-energy tree.
//!
//! Expected shape: the static tree is energy-optimal per round but kills
//! its sink-adjacent relays first; rotating cluster heads with
//! aggregation balances residual energy (lower CV) and extends the time
//! to first death on spread-out fields.

use ami_experiments::tables::f11_clustering_rows_threads;
use ami_experiments::{banner, print_table, section};

fn main() {
    banner("F11", "rotating clusters vs the static gathering tree");

    section("time to first death, and residual balance after 2000 rounds");
    // One worker per grid side; side-order merge keeps the table
    // byte-identical to the old serial loop at any thread count.
    let rows = f11_clustering_rows_threads(ami_sim::thread_count());
    print_table(
        &[
            "grid",
            "tree: 1st death",
            "tree CV@2k",
            "cluster: 1st death",
            "cluster CV@2k",
        ],
        &rows,
    );

    section("reading");
    println!("the tree spends less per round but concentrates wear; rotation");
    println!("spreads it (lower residual CV) and with aggregation usually buys");
    println!("a longer time to first death — load balancing IS lifetime.");
}
