//! F11 — cluster-head rotation versus the static minimum-energy tree.
//!
//! Expected shape: the static tree is energy-optimal per round but kills
//! its sink-adjacent relays first; rotating cluster heads with
//! aggregation balances residual energy (lower CV) and extends the time
//! to first death on spread-out fields.

use ami_experiments::{banner, print_table, section};
use ami_net::{
    simulate_clustered, simulate_gathering, ClusterConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_radio::RadioEnergyModel;
use ami_units::{Energy, Length, Power};

fn main() {
    banner("F11", "rotating clusters vs the static gathering tree");
    let radio = RadioEnergyModel::short_range_2003();
    let budget = Energy::from_joules(2.0);
    let rounds = 30_000;

    section("time to first death, and residual balance after 2000 rounds");
    let mut rows = Vec::new();
    for side in [4usize, 5, 6] {
        let topo = Topology::grid(side, Length::from_meters(30.0));

        let mut tree_config = NetworkConfig::sensor_default();
        tree_config.idle_power = Power::ZERO; // isolate radio energy
        tree_config.node_energy = budget;
        let tree = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &tree_config, rounds);
        let clustered = simulate_clustered(
            &topo,
            &radio,
            &ClusterConfig::classic(),
            budget,
            rounds,
            2003,
        );

        // Balance is measured early, while everyone is still alive.
        let early_rounds = 2000;
        let tree_early = simulate_gathering(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &tree_config,
            early_rounds,
        );
        let clustered_early = simulate_clustered(
            &topo,
            &radio,
            &ClusterConfig::classic(),
            budget,
            early_rounds,
            2003,
        );
        let cv_of = |residual: &[ami_units::Energy]| {
            let v: Vec<f64> = residual.iter().map(|e| e.as_joules()).collect();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
                / mean.max(1e-12)
        };

        let fmt_death = |r: Option<u64>| r.map_or("-".to_owned(), |v| v.to_string());
        rows.push(vec![
            format!("{side}x{side}"),
            fmt_death(tree.first_death_round),
            format!("{:.3}", cv_of(&tree_early.residual_energy)),
            fmt_death(clustered.first_death_round),
            format!("{:.3}", cv_of(&clustered_early.residual_energy)),
        ]);
    }
    print_table(
        &[
            "grid",
            "tree: 1st death",
            "tree CV@2k",
            "cluster: 1st death",
            "cluster CV@2k",
        ],
        &rows,
    );

    section("reading");
    println!("the tree spends less per round but concentrates wear; rotation");
    println!("spreads it (lower residual CV) and with aggregation usually buys");
    println!("a longer time to first death — load balancing IS lifetime.");
}
