//! A4 — ablation: discrete voltage/frequency ladders versus the
//! continuous-DVS idealization.
//!
//! Expected shape: real hardware's handful of operating points gives back
//! part of the voltage win — a two-point ladder loses most of the gap to
//! no-DVS, a four-point ladder recovers the bulk of it, and the
//! continuous model is the bound. Deadlines hold throughout (quantizing
//! *up* is safe).

use ami_arch::{ArchitectureClass, Processor};
use ami_dvs::{
    simulate_taskset, simulate_taskset_with_levels, DvsPolicy, FrequencyLadder, TaskSet,
};
use ami_experiments::{banner, print_table, section};
use ami_tech::TechnologyNode;
use ami_units::TimeSpan;

fn main() {
    banner("A4", "DVS quantization: discrete ladders vs continuous");
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
    let tasks = TaskSet::personal_audio();
    let horizon = TimeSpan::from_seconds(10.0);
    let seed = 2003;

    section("DSP busy energy (mJ) by policy and ladder, 10 s of audio");
    let ladders: [(&str, FrequencyLadder); 3] = [
        ("continuous", FrequencyLadder::continuous()),
        ("4-point", FrequencyLadder::four_point()),
        ("2-point", FrequencyLadder::two_point()),
    ];
    let mut rows = Vec::new();
    for policy in [
        DvsPolicy::UtilizationStatic,
        DvsPolicy::WorstCaseStretch,
        DvsPolicy::Clairvoyant,
    ] {
        let mut row = vec![policy.to_string()];
        for (_, ladder) in &ladders {
            let report = simulate_taskset_with_levels(&dsp, &tasks, policy, ladder, horizon, seed);
            assert_eq!(report.deadline_misses, 0, "quantizing up must stay safe");
            row.push(format!("{:.2}", report.busy_energy.as_millijoules()));
        }
        rows.push(row);
    }
    let none = simulate_taskset(&dsp, &tasks, DvsPolicy::None, horizon, seed);
    rows.push(vec![
        "no DVS (reference)".to_owned(),
        format!("{:.2}", none.busy_energy.as_millijoules()),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    print_table(&["policy", "continuous", "4-point", "2-point"], &rows);

    section("reading");
    println!("the ladder is a silicon-cost knob: each extra operating point");
    println!("needs regulator range and characterization, and buys back part");
    println!("of the continuous-DVS bound. Four points recovered most of it");
    println!("in 2003 practice — and do here.");
}
