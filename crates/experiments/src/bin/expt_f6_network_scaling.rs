//! F6 — network scaling: delivered information, energy per bit and
//! lifetime versus node count; single-hop versus multi-hop crossover.
//!
//! Expected shape: on spread-out fields, multi-hop routing delivers the
//! same information for less energy; the advantage grows with field size
//! (nodes beyond the ~45 m radio crossover). Lifetime is bottlenecked by
//! the relays around the sink.

use ami_experiments::manifests::{emit_when_requested, f6_manifest};
use ami_experiments::{banner, print_table, section};
use ami_net::{
    replicate_gathering, replicate_gathering_faulted_observed, replicate_gathering_observed,
    simulate_gathering, summarize_reports, NetworkConfig, RoutingStrategy, Topology,
};
use ami_scenario::TopologySpec;
use ami_sim::fault::FaultSpec;
use ami_sim::obs::EnergyCategory;
use ami_units::{Energy, Length};

const SCENARIO: &str = "crates/experiments/scenarios/f6_network_scaling.scenario.json";

/// Pulls a single-valued axis out of the scenario.
fn scalar_axis(scenario: &ami_scenario::ScenarioSpec, name: &str) -> f64 {
    let values = scenario
        .axis(name)
        .unwrap_or_else(|| panic!("scenario is missing the {name} axis"));
    assert_eq!(values.len(), 1, "{name} must carry exactly one value");
    values[0]
}

fn main() {
    let scenario = ami_scenario::load_for_binary(SCENARIO).unwrap_or_else(|err| panic!("{err}"));
    let TopologySpec::Random { nodes, field_m } = *scenario
        .topology
        .as_ref()
        .expect("F6 scenario has a topology")
    else {
        panic!("F6 needs a random-field topology");
    };
    let fault_mix = scenario
        .faults
        .clone()
        .expect("F6 scenario carries a fault mix");

    banner("F6", "network scaling and the multi-hop crossover");
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );
    let config = scenario.network.to_network_config();
    let rounds = scenario.rounds;
    let base_seed = scenario.seed;
    let replications = scenario.replications as usize;

    section("grid networks of growing side (30 m spacing, 500 rounds)");
    let spacing = Length::from_meters(scalar_axis(&scenario, "grid_spacing_m"));
    let sides = scenario
        .axis_usize("grid_side")
        .expect("integral grid_side axis");
    let rows = ami_sim::runner::par_map_indexed(&sides, |_, &side| {
        let topo = Topology::grid(side, spacing);
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, rounds);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, rounds);
        vec![
            format!("{}x{}", side, side),
            format!("{:.0}", topo.radius().as_meters()),
            format!("{:.2}", direct.total_energy.as_joules()),
            format!("{:.2}", multi.total_energy.as_joules()),
            format!(
                "{:.2}x",
                direct.total_energy.as_joules() / multi.total_energy.as_joules()
            ),
            format!("{}", multi.delivered_packets),
        ]
    });
    print_table(
        &[
            "grid",
            "radius (m)",
            "direct (J)",
            "multi-hop (J)",
            "saving",
            "delivered",
        ],
        &rows,
    );

    section("lifetime to first node death (tiny 0.5 J budgets, 1-min rounds)");
    let mut tiny = NetworkConfig::sensor_default();
    tiny.node_energy = Energy::from_joules(scalar_axis(&scenario, "tiny_node_energy_j"));
    let tiny_rounds = scalar_axis(&scenario, "tiny_rounds") as u64;
    let tiny_sides = scenario
        .axis_usize("tiny_grid_side")
        .expect("integral tiny_grid_side axis");
    let rows = ami_sim::runner::par_map_indexed(&tiny_sides, |_, &side| {
        let topo = Topology::grid(side, spacing);
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &tiny, tiny_rounds);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &tiny, tiny_rounds);
        let show = |r: &ami_net::NetworkReport| {
            r.lifetime(tiny.report_interval)
                .map_or("(survives)".to_owned(), |t| {
                    format!("{:.1} h", t.as_hours())
                })
        };
        vec![format!("{}x{}", side, side), show(&direct), show(&multi)]
    });
    print_table(&["grid", "direct lifetime", "multi-hop lifetime"], &rows);

    section("random fields: multi-hop saving with 95% CI over 32 topologies");
    // A 400 m square (sink at center) puts most nodes well past the
    // ~45 m single-hop crossover, so the saving is visible.
    let field = Length::from_meters(field_m);
    let n_nodes = nodes as usize;
    let reports_of = |strategy| {
        replicate_gathering(
            replications,
            base_seed,
            |seed| Topology::random(n_nodes, field, seed),
            strategy,
            &config,
            rounds,
        )
    };
    let direct = reports_of(RoutingStrategy::DirectToSink);
    let (multi, obs) = replicate_gathering_observed(
        replications,
        base_seed,
        |seed| Topology::random(n_nodes, field, seed),
        RoutingStrategy::MinimumEnergy,
        &config,
        rounds,
    );
    let direct_energy = summarize_reports(&direct, |r| r.total_energy.as_joules());
    let multi_energy = summarize_reports(&multi, |r| r.total_energy.as_joules());
    let savings: Vec<f64> = direct
        .iter()
        .zip(&multi)
        .map(|(d, m)| d.total_energy.as_joules() / m.total_energy.as_joules())
        .collect();
    let saving = ami_sim::summarize(&savings);
    println!(
        "direct    {:.2} +/- {:.2} J   multi-hop {:.2} +/- {:.2} J",
        direct_energy.mean,
        direct_energy.ci95_half_width(),
        multi_energy.mean,
        multi_energy.ci95_half_width()
    );
    println!(
        "saving    {:.2}x +/- {:.2}x  (range {:.2}x..{:.2}x, {} random 40-node fields)",
        saving.mean,
        saving.ci95_half_width(),
        saving.min,
        saving.max,
        saving.n
    );

    // Per-bit delivery cost through the Option API: fields whose sink is
    // cut off simply have no per-bit cost, rather than poisoning the mean.
    let per_bit: Vec<f64> = multi
        .iter()
        .filter_map(|r| r.energy_per_delivered_bit())
        .map(|e| e.as_joules_per_bit())
        .collect();
    println!(
        "per-bit   {:.1} uJ/bit mean over {} delivering fields ({} delivered nothing)",
        1e6 * per_bit.iter().sum::<f64>() / per_bit.len() as f64,
        per_bit.len(),
        multi.len() - per_bit.len()
    );

    section("multi-hop energy ledger (32 fields merged)");
    for category in EnergyCategory::ALL {
        println!(
            "{:>8}  {:>8.2} J  {:>5.1}%",
            category.label(),
            obs.ledger.category_total(category).as_joules(),
            100.0 * obs.ledger.fraction(category)
        );
    }
    println!(
        "packets: {} offered, {} delivered, {} dropped on dead hops, {} disconnected",
        obs.packets.offered,
        obs.packets.delivered,
        obs.packets.dropped_dead_hop,
        obs.packets.dropped_disconnected
    );

    section(&format!(
        "resilience: the same 32 fields under faults ({fault_mix})"
    ));
    // Each replication's seed derives both its topology and its fault
    // schedule, so the comparison is paired: same fields, with and
    // without exogenous churn.
    let spec = FaultSpec::parse(&fault_mix).expect("frozen spec parses");
    let (faulted, fobs) = replicate_gathering_faulted_observed(
        replications,
        base_seed,
        |seed| Topology::random(n_nodes, field, seed),
        |seed| spec.schedule_for(seed, n_nodes, rounds),
        RoutingStrategy::MinimumEnergy,
        &config,
        rounds,
    );
    let baseline_delivered = summarize_reports(&multi, |r| r.delivered_packets as f64);
    let faulted_delivered = summarize_reports(&faulted, |r| r.delivered_packets as f64);
    let faulted_energy = summarize_reports(&faulted, |r| r.total_energy.as_joules());
    let rows = vec![
        vec![
            "healthy".to_owned(),
            format!(
                "{:.0} +/- {:.0}",
                baseline_delivered.mean,
                baseline_delivered.ci95_half_width()
            ),
            format!(
                "{:.2} +/- {:.2}",
                multi_energy.mean,
                multi_energy.ci95_half_width()
            ),
            obs.packets.dropped_fault.to_string(),
        ],
        vec![
            "faulted".to_owned(),
            format!(
                "{:.0} +/- {:.0}",
                faulted_delivered.mean,
                faulted_delivered.ci95_half_width()
            ),
            format!(
                "{:.2} +/- {:.2}",
                faulted_energy.mean,
                faulted_energy.ci95_half_width()
            ),
            fobs.packets.dropped_fault.to_string(),
        ],
    ];
    print_table(
        &["fields", "delivered/field", "energy (J)", "fault drops"],
        &rows,
    );
    println!(
        "faulted packets: {} offered, {} delivered, {} dead-hop, {} disconnected, {} fault",
        fobs.packets.offered,
        fobs.packets.delivered,
        fobs.packets.dropped_dead_hop,
        fobs.packets.dropped_disconnected,
        fobs.packets.dropped_fault
    );

    section("reading");
    println!("multi-hop wins once the field radius passes the ~45 m radio");
    println!("crossover, and the advantage grows with scale; the relays next");
    println!("to the sink are the lifetime bottleneck (the energy hole).");
    println!("Under exogenous churn the delivered volume drops but the network");
    println!("keeps operating: rerouting contains each fault's blast radius.");

    emit_when_requested(f6_manifest);
}
