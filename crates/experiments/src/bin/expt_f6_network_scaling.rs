//! F6 — network scaling: delivered information, energy per bit and
//! lifetime versus node count; single-hop versus multi-hop crossover.
//!
//! Expected shape: on spread-out fields, multi-hop routing delivers the
//! same information for less energy; the advantage grows with field size
//! (nodes beyond the ~45 m radio crossover). Lifetime is bottlenecked by
//! the relays around the sink.

use ami_experiments::{banner, print_table, section};
use ami_net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
use ami_units::{Energy, Length};

fn main() {
    banner("F6", "network scaling and the multi-hop crossover");
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(20.0);
    let rounds = 500;

    section("grid networks of growing side (30 m spacing, 500 rounds)");
    let mut rows = Vec::new();
    for side in [2usize, 3, 4, 5, 6, 7] {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, rounds);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, rounds);
        rows.push(vec![
            format!("{}x{}", side, side),
            format!("{:.0}", topo.radius().as_meters()),
            format!("{:.2}", direct.total_energy.as_joules()),
            format!("{:.2}", multi.total_energy.as_joules()),
            format!(
                "{:.2}x",
                direct.total_energy.as_joules() / multi.total_energy.as_joules()
            ),
            format!("{}", multi.delivered_packets),
        ]);
    }
    print_table(
        &[
            "grid",
            "radius (m)",
            "direct (J)",
            "multi-hop (J)",
            "saving",
            "delivered",
        ],
        &rows,
    );

    section("lifetime to first node death (tiny 0.5 J budgets, 1-min rounds)");
    let mut tiny = NetworkConfig::sensor_default();
    tiny.node_energy = Energy::from_millijoules(500.0);
    let mut rows = Vec::new();
    for side in [3usize, 5, 7] {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &tiny, 20_000);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &tiny, 20_000);
        let show = |r: &ami_net::NetworkReport| {
            r.lifetime(tiny.report_interval)
                .map_or("(survives)".to_owned(), |t| {
                    format!("{:.1} h", t.as_hours())
                })
        };
        rows.push(vec![
            format!("{}x{}", side, side),
            show(&direct),
            show(&multi),
        ]);
    }
    print_table(&["grid", "direct lifetime", "multi-hop lifetime"], &rows);

    section("reading");
    println!("multi-hop wins once the field radius passes the ~45 m radio");
    println!("crossover, and the advantage grows with scale; the relays next");
    println!("to the sink are the lifetime bottleneck (the energy hole).");
}
