//! Bench snapshot — a fast, machine-readable timing pass over the
//! network-simulator and simulation-kernel hot paths, for tracking the
//! perf trajectory across PRs.
//!
//! Unlike the criterion benches (`cargo bench -p ami-bench`), this
//! binary is built to run in CI in seconds and emit two snapshots:
//!
//! `BENCH_NET.json` (schema `ambience-bench-net/v1`) — one entry per
//! (workload, network size), keyed by commit-stable labels
//! (`gather_round/n400`, …) so successive snapshots diff cleanly:
//!
//! * `route_build`  — one minimum-energy route-table build (op = build);
//! * `gather_round` — a healthy gathering run (op = simulated round);
//! * `lossy_round`  — a lossy-link ARQ run (op = simulated round);
//! * `faulted_replication` — seeded replications under a fault mix on a
//!   single pinned worker (op = replication).
//!
//! Network sizes are N ∈ {25, 100, 400, 1600} uniform-random fields at
//! constant node density (field side 25·√N m, so ~10 neighbours in
//! radio range whatever the scale). `route_build`, `gather_round` and
//! `lossy_round` additionally run at the city scales
//! N ∈ {10 000, 100 000} and at the megacity N = 1 000 000 (fewer
//! rounds per iteration), pinning the spatial-grid CSR build and the
//! aggregated round loop where quadratic scans would be unaffordable.
//! At the city scales and up, `gather_round` and `lossy_round` measure
//! **marginal rounds** through the session APIs ([`GatherSession`] /
//! [`LossySession`]): the warm-up iteration performs the route build
//! and sizes the scratch, so the timed iterations isolate per-round
//! kernel cost from the build (which `route_build` prices separately).
//! `gather_round_par` repeats the city-scale gathering runs on the
//! region-parallel PDES engine at `AMBIENCE_THREADS` workers and
//! carries `threads`/`cpus` fields plus a `speedup` field (serial mean
//! / parallel mean — expect >1× on a multi-core box; when `cpus` is 1
//! the `_par` rows time engine overhead on a single core, so `speedup`
//! is advisory and CI treats it that way). `lossy_round_par` times the
//! rollback-free region-parallel lossy engine the same way. The `_par`
//! rows force-engage the engines past the small-n serial fallback —
//! the snapshot times the engine, not the dispatch heuristic.
//!
//! `BENCH_SIM.json` (schema `ambience-bench-sim/v1`) — the `ami-sim`
//! kernel and sweep layer (labels mirrored by the `sim_hotpath`
//! criterion group in `ami-bench`):
//!
//! * `day_sim_cs1` — one full CS1 day simulation (op = simulated day);
//! * `state_meter_transition` — interned-id meter transitions
//!   (op = transition);
//! * `event_queue_churn` — steady-state pop/schedule churn on a
//!   1000-event population (op = pop+schedule);
//! * `mc_variation_2000` — A6's 2000-die Monte-Carlo leakage spread on
//!   the worker pool (op = die, honors `AMBIENCE_THREADS`);
//! * `design_space_grid` — F12's 6×7 area×interval feasibility grid on
//!   the worker pool (op = grid cell, honors `AMBIENCE_THREADS`).
//!
//! Flags / environment:
//!
//! * `--quick` (or `AMBIENCE_BENCH_QUICK=1`): two timed iterations per
//!   label instead of a 0.5 s budget — the CI smoke mode;
//! * `AMBIENCE_BENCH_OUT`: network snapshot path (default
//!   `BENCH_NET.json`, `-` = stdout only);
//! * `AMBIENCE_BENCH_SIM_OUT`: kernel snapshot path (default
//!   `BENCH_SIM.json`, `-` = stdout only).

use ami_core::case_studies::cs1::Cs1Config;
use ami_core::case_studies::cs1_trace::trace_one_day;
use ami_core::design_space::explore_cs1;
use ami_experiments::banner;
use ami_net::{
    build_routes, replicate_gathering_faulted_observed_threads, set_par_min_nodes_per_worker,
    simulate_gathering, simulate_gathering_par, simulate_lossy_gathering,
    simulate_lossy_gathering_par, GatherSession, LossyConfig, LossySession, NetworkConfig,
    RoutingStrategy, Topology,
};
use ami_sim::fault::FaultSpec;
use ami_sim::{replicate_par, sim_rng, EnergyMeter, EventQueue};
use ami_tech::{TechnologyNode, VariationModel};
use ami_units::{Area, Length, Power, Temperature, TimeSpan};
use std::hint::black_box;
use std::time::Instant;

/// Network sizes of the snapshot sweep.
const SIZES: [usize; 4] = [25, 100, 400, 1600];
/// City-scale sizes: `route_build`, `gather_round` and `lossy_round`
/// (the faulted-replication workload stays at the classic sizes so the
/// snapshot keeps finishing in seconds). The `_par` rows stop at 100k —
/// the megacity row times the serial aggregated kernel.
const LARGE_SIZES: [usize; 2] = [10_000, 100_000];
/// The megacity size: serial `route_build` / `gather_round` /
/// `lossy_round` only, one round per iteration.
const MEGA_SIZE: usize = 1_000_000;
/// Rounds per gather / lossy iteration at the city scales — enough to
/// expose a per-round regression without drowning the snapshot in wall
/// clock.
const GATHER_ROUNDS_LARGE: u64 = 2;
const LOSSY_ROUNDS_LARGE: u64 = 2;
/// Rounds per iteration at the megacity scale (a single round is ~2 s).
const ROUNDS_MEGA: u64 = 1;
/// Rounds per gather / lossy iteration (kept small so route building is
/// a realistic share of the work, as in short replication studies).
const GATHER_ROUNDS: u64 = 10;
const LOSSY_ROUNDS: u64 = 10;
/// Faulted-replication workload: replications × rounds under this mix.
const FAULT_REPS: usize = 3;
const FAULT_ROUNDS: u64 = 30;
const FAULT_MIX: &str = "death=0.1,outage=0.2:10,link=0.1:8";
/// Seed for every topology draw (matches `ami_bench::BENCH_SEED`).
const SEED: u64 = 2003;

/// One measured row of the snapshot.
struct Entry {
    label: String,
    group: &'static str,
    n: usize,
    ops_per_iter: u64,
    iters: u64,
    wall_ns_mean: u128,
    wall_ns_min: u128,
    ops_per_sec: f64,
    /// Serial mean / this entry's mean, for rows that re-run a serial
    /// workload on the intra-run parallel engine (`gather_round_par`).
    speedup: Option<f64>,
    /// Worker threads the `_par` engine ran with (absent on serial rows).
    threads: Option<usize>,
    /// CPUs available to this process when the row was measured. A
    /// `speedup` recorded with `cpus: 1` times engine overhead, not
    /// parallelism — CI treats it as advisory.
    cpus: Option<usize>,
}

/// Times `work` (which performs `ops_per_iter` logical operations per
/// call): one warm-up call, then either exactly two timed iterations
/// (quick) or iterations until ~0.5 s of measurement (full).
fn measure(
    label: String,
    group: &'static str,
    n: usize,
    ops_per_iter: u64,
    quick: bool,
    mut work: impl FnMut(),
) -> Entry {
    work(); // warm-up: populates caches exactly like a long run would
    let budget_ns: u128 = 500_000_000;
    let (min_iters, max_iters) = if quick { (2, 2) } else { (3, 50) };
    let mut samples: Vec<u128> = Vec::new();
    let mut elapsed: u128 = 0;
    while samples.len() < max_iters && (samples.len() < min_iters || elapsed < budget_ns) {
        let start = Instant::now();
        work();
        let ns = start.elapsed().as_nanos();
        elapsed += ns;
        samples.push(ns);
    }
    let iters = samples.len() as u64;
    let wall_ns_mean = elapsed / u128::from(iters);
    let wall_ns_min = samples.iter().copied().min().expect("at least one sample");
    let ops_per_sec = ops_per_iter as f64 * 1e9 / wall_ns_mean as f64;
    Entry {
        label,
        group,
        n,
        ops_per_iter,
        iters,
        wall_ns_mean,
        wall_ns_min,
        ops_per_sec,
        speedup: None,
        threads: None,
        cpus: None,
    }
}

/// CPUs available to the process (the honesty context for `speedup`).
fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Constant-density random field for `n` nodes.
fn field(n: usize) -> Topology {
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    Topology::random(n, side, SEED)
}

fn run_net_snapshot(quick: bool) -> Vec<Entry> {
    let mut entries = Vec::new();
    let net_config = NetworkConfig::sensor_default();
    let lossy_config = LossyConfig::bruised_channel();
    let spec = FaultSpec::parse(FAULT_MIX).expect("frozen fault mix parses");

    for &n in &SIZES {
        let topo = field(n);
        entries.push(measure(
            format!("route_build/n{n}"),
            "route_build",
            n,
            1,
            quick,
            || {
                black_box(build_routes(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config.radio,
                    net_config.max_hop,
                ));
            },
        ));
        entries.push(measure(
            format!("gather_round/n{n}"),
            "gather_round",
            n,
            GATHER_ROUNDS,
            quick,
            || {
                black_box(simulate_gathering(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config,
                    GATHER_ROUNDS,
                ));
            },
        ));
        entries.push(measure(
            format!("lossy_round/n{n}"),
            "lossy_round",
            n,
            LOSSY_ROUNDS,
            quick,
            || {
                black_box(simulate_lossy_gathering(
                    black_box(&topo),
                    &lossy_config,
                    LOSSY_ROUNDS,
                    SEED,
                ));
            },
        ));
        let side = Length::from_meters(25.0 * (n as f64).sqrt());
        entries.push(measure(
            format!("faulted_replication/n{n}"),
            "faulted_replication",
            n,
            FAULT_REPS as u64,
            quick,
            || {
                black_box(replicate_gathering_faulted_observed_threads(
                    1, // pinned worker: the snapshot times the simulator, not the pool
                    FAULT_REPS,
                    SEED,
                    |seed| Topology::random(n, side, seed),
                    |seed| spec.schedule_for(seed, n, FAULT_ROUNDS),
                    RoutingStrategy::MinimumEnergy,
                    &net_config,
                    FAULT_ROUNDS,
                ));
            },
        ));
    }

    // The city-scale `_par` rows must time the region-parallel engines
    // themselves: at n = 10 000 the nodes-per-worker floor would route
    // an 8-worker run back to the serial kernel, turning `speedup`
    // into a measurement of the dispatch heuristic. Results are
    // bit-identical either way, so engagement is purely a timing
    // concern. (Thread-local: restored before returning.)
    let par_floor = set_par_min_nodes_per_worker(Some(0));
    for &n in &LARGE_SIZES {
        let topo = field(n);
        entries.push(measure(
            format!("route_build/n{n}"),
            "route_build",
            n,
            1,
            quick,
            || {
                black_box(build_routes(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config.radio,
                    net_config.max_hop,
                ));
            },
        ));
        // Marginal rounds through the session API: the warm-up run
        // builds routes and sizes the aggregation scratch, so the timed
        // iterations price per-round work only (`route_build` above
        // prices the build).
        let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &net_config);
        entries.push(measure(
            format!("gather_round/n{n}"),
            "gather_round",
            n,
            GATHER_ROUNDS_LARGE,
            quick,
            || {
                black_box(session.run(GATHER_ROUNDS_LARGE));
            },
        ));
        let serial_mean = entries
            .last()
            .expect("serial gather_round row was just pushed")
            .wall_ns_mean;
        let threads = ami_sim::runner::thread_count();
        let mut par = measure(
            format!("gather_round_par/n{n}"),
            "gather_round_par",
            n,
            GATHER_ROUNDS_LARGE,
            quick,
            || {
                black_box(simulate_gathering_par(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config,
                    GATHER_ROUNDS_LARGE,
                    threads,
                ));
            },
        );
        par.speedup = Some(serial_mean as f64 / par.wall_ns_mean as f64);
        par.threads = Some(threads);
        par.cpus = Some(available_cpus());
        entries.push(par);

        let mut lossy_session = LossySession::new(&topo, &lossy_config);
        entries.push(measure(
            format!("lossy_round/n{n}"),
            "lossy_round",
            n,
            LOSSY_ROUNDS_LARGE,
            quick,
            || {
                black_box(lossy_session.run(LOSSY_ROUNDS_LARGE, SEED));
            },
        ));
        let lossy_serial_mean = entries
            .last()
            .expect("serial lossy_round row was just pushed")
            .wall_ns_mean;
        let mut lossy_par = measure(
            format!("lossy_round_par/n{n}"),
            "lossy_round_par",
            n,
            LOSSY_ROUNDS_LARGE,
            quick,
            || {
                black_box(simulate_lossy_gathering_par(
                    black_box(&topo),
                    &lossy_config,
                    LOSSY_ROUNDS_LARGE,
                    SEED,
                    threads,
                ));
            },
        );
        lossy_par.speedup = Some(lossy_serial_mean as f64 / lossy_par.wall_ns_mean as f64);
        lossy_par.threads = Some(threads);
        lossy_par.cpus = Some(available_cpus());
        entries.push(lossy_par);
    }
    set_par_min_nodes_per_worker(par_floor);

    // The megacity: serial rows only, one round per iteration. The
    // session warm-up pays the route build (priced by `route_build`
    // below) so the round rows are pure marginal-round cost — the
    // tractability headline the aggregated kernel exists for.
    {
        let n = MEGA_SIZE;
        let topo = field(n);
        entries.push(measure(
            format!("route_build/n{n}"),
            "route_build",
            n,
            1,
            quick,
            || {
                black_box(build_routes(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config.radio,
                    net_config.max_hop,
                ));
            },
        ));
        let mut session = GatherSession::new(&topo, RoutingStrategy::MinimumEnergy, &net_config);
        entries.push(measure(
            format!("gather_round/n{n}"),
            "gather_round",
            n,
            ROUNDS_MEGA,
            quick,
            || {
                black_box(session.run(ROUNDS_MEGA));
            },
        ));
        let mut lossy_session = LossySession::new(&topo, &lossy_config);
        entries.push(measure(
            format!("lossy_round/n{n}"),
            "lossy_round",
            n,
            ROUNDS_MEGA,
            quick,
            || {
                black_box(lossy_session.run(ROUNDS_MEGA, SEED));
            },
        ));
    }
    entries
}

/// The simulation-kernel and sweep-layer workloads (`BENCH_SIM.json`).
fn run_sim_snapshot(quick: bool) -> Vec<Entry> {
    let mut entries = Vec::new();
    let config = Cs1Config::default();

    entries.push(measure(
        "day_sim_cs1".to_owned(),
        "day_sim_cs1",
        1,
        1,
        quick,
        || {
            black_box(trace_one_day(black_box(&config)));
        },
    ));

    // The meter hot path as the day sim drives it: pre-interned ids,
    // rotating through four states.
    const TRANSITIONS: u64 = 100_000;
    entries.push(measure(
        "state_meter_transition".to_owned(),
        "state_meter_transition",
        TRANSITIONS as usize,
        TRANSITIONS,
        quick,
        || {
            let mut meter =
                EnergyMeter::new("baseline", Power::from_microwatts(2.0), TimeSpan::ZERO);
            let states = [
                meter.intern("baseline"),
                meter.intern("radio check"),
                meter.intern("radio tx"),
                meter.intern("radio startup"),
            ];
            for i in 0..TRANSITIONS {
                let id = states[(i % 4) as usize];
                meter.transition_id(
                    id,
                    Power::from_microwatts(5.0),
                    TimeSpan::from_seconds(i as f64),
                );
            }
            black_box(meter.transitions());
        },
    ));

    const CHURNS: u64 = 100_000;
    entries.push(measure(
        "event_queue_churn".to_owned(),
        "event_queue_churn",
        CHURNS as usize,
        CHURNS,
        quick,
        || {
            let mut queue: EventQueue<u64> = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                queue.schedule_in(TimeSpan::from_seconds(i as f64), i);
            }
            for i in 0..CHURNS {
                let (_, e) = queue.pop().expect("queue stays populated");
                queue.schedule_in(TimeSpan::from_seconds(1000.0 + (e % 7) as f64), i);
            }
            black_box(queue.len());
        },
    ));

    // A6's leakage-spread Monte Carlo on the worker pool (the snapshot
    // honors AMBIENCE_THREADS, like the experiment binaries).
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    entries.push(measure(
        "mc_variation_2000".to_owned(),
        "mc_variation_2000",
        2000,
        2000,
        quick,
        || {
            let summary = replicate_par(2000, 42, |seed| {
                let mut rng = sim_rng(seed);
                model
                    .sample_die(&node, 100e3, Temperature::ROOM, &mut rng)
                    .leakage
                    .as_watts()
            });
            black_box(summary.mean);
        },
    ));

    // F12's area × check-interval feasibility grid on the worker pool.
    let areas: Vec<Area> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&cm2| Area::from_square_centimeters(cm2))
        .collect();
    let intervals: Vec<TimeSpan> = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let cells = areas.len() * intervals.len();
    entries.push(measure(
        "design_space_grid".to_owned(),
        "design_space_grid",
        cells,
        cells as u64,
        quick,
        || {
            black_box(explore_cs1(black_box(&config), &areas, &intervals));
        },
    ));

    entries
}

/// Renders a snapshot as deterministic, diff-stable JSON.
fn to_json(schema: &str, entries: &[Entry], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"entries\": [\n");
    for (idx, e) in entries.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"label\": \"{}\", ", e.label));
        out.push_str(&format!("\"group\": \"{}\", ", e.group));
        out.push_str(&format!("\"n\": {}, ", e.n));
        out.push_str(&format!("\"ops_per_iter\": {}, ", e.ops_per_iter));
        out.push_str(&format!("\"iters\": {}, ", e.iters));
        out.push_str(&format!("\"wall_ns_mean\": {}, ", e.wall_ns_mean));
        out.push_str(&format!("\"wall_ns_min\": {}, ", e.wall_ns_min));
        out.push_str(&format!("\"ops_per_sec\": {:.3}", e.ops_per_sec));
        if let Some(threads) = e.threads {
            out.push_str(&format!(", \"threads\": {threads}"));
        }
        if let Some(cpus) = e.cpus {
            out.push_str(&format!(", \"cpus\": {cpus}"));
        }
        if let Some(speedup) = e.speedup {
            out.push_str(&format!(", \"speedup\": {speedup:.3}"));
        }
        out.push_str(if idx + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints one snapshot's table and writes (or streams) its JSON.
fn emit(entries: &[Entry], schema: &str, quick: bool, out_env: &str, default_path: &str) {
    println!();
    println!(
        "{:<28} {:>6} {:>7} {:>14} {:>14} {:>14}",
        "label", "n", "iters", "mean (µs)", "min (µs)", "ops/sec"
    );
    for e in entries {
        println!(
            "{:<28} {:>6} {:>7} {:>14.1} {:>14.1} {:>14.1}",
            e.label,
            e.n,
            e.iters,
            e.wall_ns_mean as f64 / 1e3,
            e.wall_ns_min as f64 / 1e3,
            e.ops_per_sec
        );
    }

    let json = to_json(schema, entries, quick);
    let target =
        std::env::var_os(out_env).unwrap_or_else(|| std::ffi::OsString::from(default_path));
    if target == "-" {
        print!("{json}");
    } else {
        std::fs::write(&target, &json)
            .unwrap_or_else(|err| panic!("cannot write snapshot to {target:?}: {err}"));
        println!("\n[snapshot written to {}]", target.to_string_lossy());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("AMBIENCE_BENCH_QUICK").is_some_and(|v| v == "1");
    banner(
        "BENCH",
        "network + simulation-kernel hot-path snapshot (machine-readable trajectory)",
    );
    println!("[mode: {}]", if quick { "quick" } else { "full" });
    println!(
        "[runner: {} worker thread(s)]",
        ami_sim::runner::thread_count()
    );

    let net = run_net_snapshot(quick);
    emit(
        &net,
        "ambience-bench-net/v1",
        quick,
        "AMBIENCE_BENCH_OUT",
        "BENCH_NET.json",
    );

    let sim = run_sim_snapshot(quick);
    emit(
        &sim,
        "ambience-bench-sim/v1",
        quick,
        "AMBIENCE_BENCH_SIM_OUT",
        "BENCH_SIM.json",
    );
}
