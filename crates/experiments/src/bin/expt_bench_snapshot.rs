//! Bench snapshot — a fast, machine-readable timing pass over the
//! network-simulator hot paths, for tracking the perf trajectory
//! across PRs.
//!
//! Unlike the criterion benches (`cargo bench -p ami-bench`), this
//! binary is built to run in CI in seconds and emit `BENCH_NET.json`:
//! one entry per (workload, network size) with wall times and ops/sec,
//! keyed by commit-stable labels (`gather_round/n400`, …) so successive
//! snapshots diff cleanly. Workloads:
//!
//! * `route_build`  — one minimum-energy route-table build (op = build);
//! * `gather_round` — a healthy gathering run (op = simulated round);
//! * `lossy_round`  — a lossy-link ARQ run (op = simulated round);
//! * `faulted_replication` — seeded replications under a fault mix on a
//!   single pinned worker (op = replication).
//!
//! Network sizes are N ∈ {25, 100, 400, 1600} uniform-random fields at
//! constant node density (field side 25·√N m, so ~10 neighbours in
//! radio range whatever the scale).
//!
//! Flags / environment:
//!
//! * `--quick` (or `AMBIENCE_BENCH_QUICK=1`): two timed iterations per
//!   label instead of a 0.5 s budget — the CI smoke mode;
//! * `AMBIENCE_BENCH_OUT`: output path (default `BENCH_NET.json`,
//!   `-` = stdout only).

use ami_experiments::banner;
use ami_net::{
    build_routes, replicate_gathering_faulted_observed_threads, simulate_gathering,
    simulate_lossy_gathering, LossyConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_sim::fault::FaultSpec;
use ami_units::Length;
use std::hint::black_box;
use std::time::Instant;

/// Network sizes of the snapshot sweep.
const SIZES: [usize; 4] = [25, 100, 400, 1600];
/// Rounds per gather / lossy iteration (kept small so route building is
/// a realistic share of the work, as in short replication studies).
const GATHER_ROUNDS: u64 = 10;
const LOSSY_ROUNDS: u64 = 10;
/// Faulted-replication workload: replications × rounds under this mix.
const FAULT_REPS: usize = 3;
const FAULT_ROUNDS: u64 = 30;
const FAULT_MIX: &str = "death=0.1,outage=0.2:10,link=0.1:8";
/// Seed for every topology draw (matches `ami_bench::BENCH_SEED`).
const SEED: u64 = 2003;

/// One measured row of the snapshot.
struct Entry {
    label: String,
    group: &'static str,
    n: usize,
    ops_per_iter: u64,
    iters: u64,
    wall_ns_mean: u128,
    wall_ns_min: u128,
    ops_per_sec: f64,
}

/// Times `work` (which performs `ops_per_iter` logical operations per
/// call): one warm-up call, then either exactly two timed iterations
/// (quick) or iterations until ~0.5 s of measurement (full).
fn measure(
    label: String,
    group: &'static str,
    n: usize,
    ops_per_iter: u64,
    quick: bool,
    mut work: impl FnMut(),
) -> Entry {
    work(); // warm-up: populates caches exactly like a long run would
    let budget_ns: u128 = 500_000_000;
    let (min_iters, max_iters) = if quick { (2, 2) } else { (3, 50) };
    let mut samples: Vec<u128> = Vec::new();
    let mut elapsed: u128 = 0;
    while samples.len() < max_iters && (samples.len() < min_iters || elapsed < budget_ns) {
        let start = Instant::now();
        work();
        let ns = start.elapsed().as_nanos();
        elapsed += ns;
        samples.push(ns);
    }
    let iters = samples.len() as u64;
    let wall_ns_mean = elapsed / u128::from(iters);
    let wall_ns_min = samples.iter().copied().min().expect("at least one sample");
    let ops_per_sec = ops_per_iter as f64 * 1e9 / wall_ns_mean as f64;
    Entry {
        label,
        group,
        n,
        ops_per_iter,
        iters,
        wall_ns_mean,
        wall_ns_min,
        ops_per_sec,
    }
}

/// Constant-density random field for `n` nodes.
fn field(n: usize) -> Topology {
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    Topology::random(n, side, SEED)
}

fn run_snapshot(quick: bool) -> Vec<Entry> {
    let mut entries = Vec::new();
    let net_config = NetworkConfig::sensor_default();
    let lossy_config = LossyConfig::bruised_channel();
    let spec = FaultSpec::parse(FAULT_MIX).expect("frozen fault mix parses");

    for &n in &SIZES {
        let topo = field(n);
        entries.push(measure(
            format!("route_build/n{n}"),
            "route_build",
            n,
            1,
            quick,
            || {
                black_box(build_routes(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config.radio,
                    net_config.max_hop,
                ));
            },
        ));
        entries.push(measure(
            format!("gather_round/n{n}"),
            "gather_round",
            n,
            GATHER_ROUNDS,
            quick,
            || {
                black_box(simulate_gathering(
                    black_box(&topo),
                    RoutingStrategy::MinimumEnergy,
                    &net_config,
                    GATHER_ROUNDS,
                ));
            },
        ));
        entries.push(measure(
            format!("lossy_round/n{n}"),
            "lossy_round",
            n,
            LOSSY_ROUNDS,
            quick,
            || {
                black_box(simulate_lossy_gathering(
                    black_box(&topo),
                    &lossy_config,
                    LOSSY_ROUNDS,
                    SEED,
                ));
            },
        ));
        let side = Length::from_meters(25.0 * (n as f64).sqrt());
        entries.push(measure(
            format!("faulted_replication/n{n}"),
            "faulted_replication",
            n,
            FAULT_REPS as u64,
            quick,
            || {
                black_box(replicate_gathering_faulted_observed_threads(
                    1, // pinned worker: the snapshot times the simulator, not the pool
                    FAULT_REPS,
                    SEED,
                    |seed| Topology::random(n, side, seed),
                    |seed| spec.schedule_for(seed, n, FAULT_ROUNDS),
                    RoutingStrategy::MinimumEnergy,
                    &net_config,
                    FAULT_ROUNDS,
                ));
            },
        ));
    }
    entries
}

/// Renders the snapshot as deterministic, diff-stable JSON.
fn to_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambience-bench-net/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"entries\": [\n");
    for (idx, e) in entries.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"label\": \"{}\", ", e.label));
        out.push_str(&format!("\"group\": \"{}\", ", e.group));
        out.push_str(&format!("\"n\": {}, ", e.n));
        out.push_str(&format!("\"ops_per_iter\": {}, ", e.ops_per_iter));
        out.push_str(&format!("\"iters\": {}, ", e.iters));
        out.push_str(&format!("\"wall_ns_mean\": {}, ", e.wall_ns_mean));
        out.push_str(&format!("\"wall_ns_min\": {}, ", e.wall_ns_min));
        out.push_str(&format!("\"ops_per_sec\": {:.3}", e.ops_per_sec));
        out.push_str(if idx + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("AMBIENCE_BENCH_QUICK").is_some_and(|v| v == "1");
    banner(
        "BENCH",
        "network hot-path snapshot (machine-readable trajectory)",
    );
    println!("[mode: {}]", if quick { "quick" } else { "full" });

    let entries = run_snapshot(quick);
    println!();
    println!(
        "{:<28} {:>6} {:>7} {:>14} {:>14} {:>14}",
        "label", "n", "iters", "mean (µs)", "min (µs)", "ops/sec"
    );
    for e in &entries {
        println!(
            "{:<28} {:>6} {:>7} {:>14.1} {:>14.1} {:>14.1}",
            e.label,
            e.n,
            e.iters,
            e.wall_ns_mean as f64 / 1e3,
            e.wall_ns_min as f64 / 1e3,
            e.ops_per_sec
        );
    }

    let json = to_json(&entries, quick);
    let target = std::env::var_os("AMBIENCE_BENCH_OUT")
        .unwrap_or_else(|| std::ffi::OsString::from("BENCH_NET.json"));
    if target == "-" {
        print!("{json}");
    } else {
        std::fs::write(&target, &json)
            .unwrap_or_else(|err| panic!("cannot write snapshot to {target:?}: {err}"));
        println!("\n[snapshot written to {}]", target.to_string_lossy());
    }
}
