//! A6 — process variation: parametric yield under Vth spread.
//!
//! Expected shape: a ±20 mV σ(Vth) leaves frequency nearly Gaussian but
//! makes leakage lognormal with a >10x spread; the joint speed+power
//! yield collapses as the constraints tighten — and the power constraint,
//! not the speed one, becomes binding at the scaled nodes. This is the
//! statistical-design headline of the 2003 proceedings.

use ami_experiments::tables::{a6_joint_yield_rows, a6_leakage_spread_rows_threads};
use ami_experiments::{banner, print_table, section};

fn main() {
    banner("A6", "parametric yield under threshold-voltage variation");

    section("leakage spread per node (2000 Monte-Carlo dies, sigma 20 mV)");
    // Replicated across the worker pool; seed-order merge keeps the
    // table byte-identical to the old serial loop at any thread count.
    let rows = a6_leakage_spread_rows_threads(ami_sim::thread_count());
    print_table(
        &["node", "mean leak (W)", "max leak (W)", "max/min", "CV"],
        &rows,
    );

    section("joint yield at 90 nm: speed x power constraints");
    let rows = a6_joint_yield_rows();
    print_table(&["f_min", "leak_max", "yield"], &rows);

    section("reading");
    println!("variation couples the two constraints adversarially: fast dies");
    println!("are the leaky dies. Binning and adaptive body bias — not tighter");
    println!("nominal design — were the 2003 answers.");
}
