//! A6 — process variation: parametric yield under Vth spread.
//!
//! Expected shape: a ±20 mV σ(Vth) leaves frequency nearly Gaussian but
//! makes leakage lognormal with a >10x spread; the joint speed+power
//! yield collapses as the constraints tighten — and the power constraint,
//! not the speed one, becomes binding at the scaled nodes. This is the
//! statistical-design headline of the 2003 proceedings.

use ami_experiments::{banner, print_table, section};
use ami_sim::{replicate, sim_rng};
use ami_tech::{Roadmap, TechnologyNode, VariationModel};
use ami_units::{Frequency, Power, Temperature};

fn main() {
    banner("A6", "parametric yield under threshold-voltage variation");
    let model = VariationModel::typical_2003();
    let gates = 100e3;
    let temp = Temperature::ROOM;

    section("leakage spread per node (2000 Monte-Carlo dies, sigma 20 mV)");
    let mut rows = Vec::new();
    for node in Roadmap::full_2003().nodes() {
        let summary = replicate(2000, 42, |seed| {
            let mut rng = sim_rng(seed);
            model
                .sample_die(node, gates, temp, &mut rng)
                .leakage
                .as_watts()
        });
        rows.push(vec![
            node.name().to_owned(),
            format!("{:.3e}", summary.mean),
            format!("{:.3e}", summary.max),
            format!("{:.1}x", summary.max / summary.min.max(1e-30)),
            format!("{:.2}", summary.cv()),
        ]);
    }
    print_table(
        &["node", "mean leak (W)", "max leak (W)", "max/min", "CV"],
        &rows,
    );

    section("joint yield at 90 nm: speed x power constraints");
    let node = TechnologyNode::n90();
    let mut rows = Vec::new();
    for (f_ghz, p_mw) in [
        (0.9, 100.0),
        (1.0, 100.0),
        (1.05, 10.0),
        (1.1, 5.0),
        (1.15, 5.0),
    ] {
        let y = model.parametric_yield(
            &node,
            gates,
            temp,
            Frequency::from_gigahertz(f_ghz),
            Power::from_milliwatts(p_mw),
            4000,
            7,
        );
        rows.push(vec![
            format!("{f_ghz:.2} GHz"),
            format!("{p_mw:.0} mW"),
            format!("{:.1}%", 100.0 * y),
        ]);
    }
    print_table(&["f_min", "leak_max", "yield"], &rows);

    section("reading");
    println!("variation couples the two constraints adversarially: fast dies");
    println!("are the leaky dies. Binning and adaptive body bias — not tighter");
    println!("nominal design — were the 2003 answers.");
}
