//! T3 — MAC comparison for the µW class: average radio power, latency,
//! effective duty cycle.
//!
//! Expected shape: always-on CSMA burns ~15 mW of idle listening; TDMA
//! and preamble sampling both reach the tens-of-µW regime, trading sync
//! infrastructure (TDMA) against wake-up preambles (LPL); latency is the
//! price of every duty-cycled watt saved.

use ami_experiments::manifests::{emit_when_requested, t3_manifest};
use ami_experiments::{banner, print_table, section};
use ami_radio::{
    CsmaMac, MacProtocol, PreambleSamplingMac, RadioPowerStates, TdmaMac, TrafficLoad,
};
use ami_units::TimeSpan;

fn main() {
    banner("T3", "medium-access protocols for the autonomous node");
    let radio = RadioPowerStates::sensor_default();

    for (caption, traffic) in [
        (
            "light traffic: one report every 5 minutes",
            TrafficLoad::periodic_report(TimeSpan::from_minutes(5.0)),
        ),
        (
            "chatty traffic: one report every 10 seconds",
            TrafficLoad::periodic_report(TimeSpan::from_seconds(10.0)),
        ),
    ] {
        section(caption);
        let macs: Vec<(String, ami_radio::MacAnalysis)> = vec![
            ("CSMA (always-on)".into(), CsmaMac.analyze(&radio, &traffic)),
            (
                "TDMA (1 s frame)".into(),
                TdmaMac::new(TimeSpan::from_seconds(1.0)).analyze(&radio, &traffic),
            ),
            (
                "LPL (0.5 s checks)".into(),
                PreambleSamplingMac::new(TimeSpan::from_millis(500.0)).analyze(&radio, &traffic),
            ),
            (
                "LPL (2 s checks)".into(),
                PreambleSamplingMac::new(TimeSpan::from_seconds(2.0)).analyze(&radio, &traffic),
            ),
        ];
        let rows: Vec<Vec<String>> = macs
            .into_iter()
            .map(|(name, a)| {
                vec![
                    name,
                    format!("{:.1}", a.average_power.as_microwatts()),
                    format!("{:.0}", a.mean_latency.as_millis()),
                    format!("{:.3}", 100.0 * a.effective_duty),
                ]
            })
            .collect();
        print_table(
            &["MAC", "avg power (uW)", "latency (ms)", "duty (%)"],
            &rows,
        );
    }

    section("reading");
    println!("duty cycling buys 2-3 orders of magnitude of radio power; the");
    println!("LPL check interval trades sender preamble cost (chatty nodes)");
    println!("against listening cost (quiet nodes).");

    emit_when_requested(t3_manifest);
}
