//! F1 — the power–information graph of the 2003 device portfolio.
//!
//! Regenerates the keynote's central figure as a table (device, rate,
//! power, efficiency, class, frontier membership) plus the per-class
//! summary bands. Expected shape: three classes separated by decades of
//! power; a Pareto frontier of the most information-efficient devices.

use ami_experiments::{banner, section};
use ami_power::{portfolio_2003, scatter_plot, PowerClass};

fn main() {
    banner("F1", "power-information graph, 2003 portfolio");
    let graph = portfolio_2003();

    section("the graph itself (log-log)");
    print!("{}", scatter_plot(&graph, 64, 22));

    section("device scatter (x = information rate, y = power)");
    print!("{}", graph.table());

    section("class bands");
    for class in PowerClass::all() {
        let members = graph.in_class(class);
        let powers: Vec<f64> = members.iter().map(|p| p.power().as_watts()).collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<10}  {} devices, power {:.2e}..{:.2e} W, source: {}",
            class.to_string(),
            members.len(),
            min,
            max,
            class.energy_source()
        );
    }

    section("efficiency frontier");
    let frontier = graph.frontier();
    for idx in &frontier {
        let p = &graph.points()[*idx];
        println!("{:<22}  {:>10.3e} bit/J", p.name(), p.bits_per_joule());
    }
    println!();
    println!(
        "most information-efficient device: {}",
        graph
            .most_efficient()
            .expect("portfolio is non-empty")
            .name()
    );
}
