//! Shared row builders for the sweep-heavy experiment binaries.
//!
//! The hot sweeps of A6 (Monte-Carlo leakage spread, joint yield), F11
//! (grid-family clustering comparison) and F5 (per-class sustainable
//! formats) live here rather than inside their `src/bin/` mains, so
//! that (a) the binaries print exactly what the determinism suite
//! checks — `tests/table_determinism.rs` asserts every builder renders
//! byte-identical rows at 1, 2 and 8 worker threads — and (b) the
//! parallel fan-out is written once. Each builder merges its cells in
//! fixed grid order, so thread count can never reorder a table.

use ami_arch::ArchitectureClass;
use ami_core::case_studies::cs3::{best_format, Cs3Config};
use ami_net::{
    simulate_clustered, simulate_gathering, ClusterConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_radio::RadioEnergyModel;
use ami_sim::{par_map_indexed_threads, replicate_par_threads, sim_rng};
use ami_tech::{Roadmap, TechnologyNode, VariationModel};
use ami_units::{Energy, Frequency, Length, Power, Temperature};

/// A6, table 1: per-node leakage spread over 2000 Monte-Carlo dies
/// (σ(Vth) = 20 mV), replicated across `threads` workers with the seed
/// schedule (base 42) merged in seed order — bit-exact with the serial
/// `replicate` loop it replaced.
pub fn a6_leakage_spread_rows_threads(threads: usize) -> Vec<Vec<String>> {
    let model = VariationModel::typical_2003();
    let gates = 100e3;
    let temp = Temperature::ROOM;
    let mut rows = Vec::new();
    for node in Roadmap::full_2003().nodes() {
        let summary = replicate_par_threads(threads, 2000, 42, |seed| {
            let mut rng = sim_rng(seed);
            model
                .sample_die(node, gates, temp, &mut rng)
                .leakage
                .as_watts()
        });
        rows.push(vec![
            node.name().to_owned(),
            format!("{:.3e}", summary.mean),
            format!("{:.3e}", summary.max),
            format!("{:.1}x", summary.max / summary.min.max(1e-30)),
            format!("{:.2}", summary.cv()),
        ]);
    }
    rows
}

/// A6, table 2: joint speed×power yield at 90 nm. The five constraint
/// pairs share one 4000-die population (`parametric_yield_many`), so
/// the dies are sampled once instead of once per row — bit-identical
/// yields, a fifth of the Monte-Carlo work.
pub fn a6_joint_yield_rows() -> Vec<Vec<String>> {
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let pairs = [
        (0.9, 100.0),
        (1.0, 100.0),
        (1.05, 10.0),
        (1.1, 5.0),
        (1.15, 5.0),
    ];
    let constraints: Vec<(Frequency, Power)> = pairs
        .iter()
        .map(|&(f_ghz, p_mw)| {
            (
                Frequency::from_gigahertz(f_ghz),
                Power::from_milliwatts(p_mw),
            )
        })
        .collect();
    let yields =
        model.parametric_yield_many(&node, 100e3, Temperature::ROOM, &constraints, 4000, 7);
    pairs
        .iter()
        .zip(&yields)
        .map(|(&(f_ghz, p_mw), &y)| {
            vec![
                format!("{f_ghz:.2} GHz"),
                format!("{p_mw:.0} mW"),
                format!("{:.1}%", 100.0 * y),
            ]
        })
        .collect()
}

/// F11's grid family: each side length is one independent cell (its own
/// topologies and seeded cluster runs), fanned across `threads` workers
/// and merged back in side order.
pub fn f11_clustering_rows_threads(threads: usize) -> Vec<Vec<String>> {
    let sides = [4usize, 5, 6];
    par_map_indexed_threads(threads, &sides, |_, &side| {
        let radio = RadioEnergyModel::short_range_2003();
        let budget = Energy::from_joules(2.0);
        let rounds = 30_000;
        let topo = Topology::grid(side, Length::from_meters(30.0));

        let mut tree_config = NetworkConfig::sensor_default();
        tree_config.idle_power = Power::ZERO; // isolate radio energy
        tree_config.node_energy = budget;
        let tree = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &tree_config, rounds);
        let clustered = simulate_clustered(
            &topo,
            &radio,
            &ClusterConfig::classic(),
            budget,
            rounds,
            2003,
        );

        // Balance is measured early, while everyone is still alive.
        let early_rounds = 2000;
        let tree_early = simulate_gathering(
            &topo,
            RoutingStrategy::MinimumEnergy,
            &tree_config,
            early_rounds,
        );
        let clustered_early = simulate_clustered(
            &topo,
            &radio,
            &ClusterConfig::classic(),
            budget,
            early_rounds,
            2003,
        );
        let cv_of = |residual: &[Energy]| {
            let v: Vec<f64> = residual.iter().map(|e| e.as_joules()).collect();
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
                / mean.max(1e-12)
        };

        let fmt_death = |r: Option<u64>| r.map_or("-".to_owned(), |v| v.to_string());
        vec![
            format!("{side}x{side}"),
            fmt_death(tree.first_death_round),
            format!("{:.3}", cv_of(&tree_early.residual_energy)),
            fmt_death(clustered.first_death_round),
            format!("{:.3}", cv_of(&clustered_early.residual_energy)),
        ]
    })
}

/// F5's per-class sweep: the highest sustainable video format for every
/// architecture class of `config`, one class per cell, merged in class
/// order.
pub fn f5_best_format_lines_threads(threads: usize, config: &Cs3Config) -> Vec<String> {
    let classes = ArchitectureClass::all();
    par_map_indexed_threads(threads, &classes, |_, &class| {
        format!(
            "{:<5}  {}",
            class.to_string(),
            best_format(config, class).map_or("none".to_owned(), |f| f.to_string())
        )
    })
}
