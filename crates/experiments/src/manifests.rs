//! Run manifests for the experiment harnesses.
//!
//! Each builder regenerates one experiment's headline computation and
//! pins it down as a deterministic JSON manifest: the configuration, the
//! seeds, the runner policy, the energy ledger and the counter tree.
//! Binaries emit them through [`emit_when_requested`], gated on the
//! `AMBIENCE_MANIFEST` environment variable (unset → skip the work
//! entirely, `-` → stdout, a path → written there), so the default
//! harness output is untouched.
//!
//! Manifests are byte-identical at any `AMBIENCE_THREADS` — replication
//! ledgers merge in seed order — which `tests/determinism.rs` enforces
//! and `golden/f3_manifest.json` freezes for CI.

use ami_core::case_studies::cs1::{cs1_energy_ledger, sweep_check_interval, Cs1Config};
use ami_net::{
    replicate_gathering_faulted_observed_threads, replicate_gathering_observed_threads,
    LossyConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_radio::{
    CsmaMac, MacAnalysis, MacProtocol, PreambleSamplingMac, RadioPowerStates, TdmaMac, TrafficLoad,
};
use ami_sim::fault::FaultSpec;
use ami_sim::obs::{CounterTree, RunManifest, MANIFEST_ENV};
use ami_units::{Energy, Length, TimeSpan};

/// The fault mix the F13 resilience study (and its golden manifest)
/// runs under: 12 % scheduled node deaths, 20 % transient outages of 40
/// rounds, 15 % link outages of 30 rounds. CI regenerates
/// `golden/f13_faulted_manifest.json` with `AMBIENCE_FAULTS` set to
/// exactly this string.
pub const F13_FAULT_SPEC: &str = "death=0.12,outage=0.2:40,link=0.15:30";

/// The fault mix of the F6 resilience columns: lighter node churn plus
/// capacity fade, over the replicated random fields.
pub const F6_FAULT_SPEC: &str = "death=0.08,outage=0.15:60,fade=0.25:0.5";

/// Builds and emits `build()`'s manifest if `AMBIENCE_MANIFEST` is set:
/// `-` sends it to stdout, any other value names the file to write.
/// When the variable is unset the builder never runs.
///
/// # Panics
///
/// Panics if the manifest file cannot be written.
pub fn emit_when_requested(build: impl FnOnce() -> RunManifest) {
    let Some(target) = std::env::var_os(MANIFEST_ENV) else {
        return;
    };
    let json = build().to_json();
    if target == "-" {
        print!("{json}");
    } else {
        std::fs::write(&target, &json)
            .unwrap_or_else(|err| panic!("cannot write manifest to {target:?}: {err}"));
        eprintln!("[manifest written to {}]", target.to_string_lossy());
    }
}

/// F3 (CS1 duty cycle): the default node's budget as a 3-day energy
/// ledger — the "radio checks take ~82 % of the budget" split — plus the
/// sustainability outcome of the check-interval sweep as counters.
pub fn f3_manifest() -> RunManifest {
    let config = Cs1Config::default();
    let span = TimeSpan::from_days(3.0);
    let ledger = cs1_energy_ledger(&config, span);
    let intervals: Vec<TimeSpan> = [0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let rows = sweep_check_interval(&config, &intervals);
    let sustainable = rows.iter().filter(|(_, _, _, ok)| *ok).count() as u64;
    let counters = CounterTree::branch([(
        "sweep",
        CounterTree::branch([
            ("intervals", CounterTree::leaf(rows.len() as u64)),
            ("sustainable", CounterTree::leaf(sustainable)),
        ]),
    )]);
    RunManifest::new("F3")
        .field("config", &config)
        .field("span_days", &span.as_days())
        .runner()
        .ledger(&ledger)
        .counters(&counters)
}

/// F6 (network scaling), random-field section: 32 seeded 40-node fields,
/// minimum-energy gathering, with the merged replication ledger and
/// packet counters. `threads` pins the worker count (the manifest is
/// bit-identical whatever you pass).
pub fn f6_manifest_threads(threads: usize) -> RunManifest {
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(20.0);
    let (replications, base_seed, rounds) = (32usize, 2003u64, 500u64);
    let nodes = 40usize;
    let field = Length::from_meters(400.0);
    let (reports, obs) = replicate_gathering_observed_threads(
        threads,
        replications,
        base_seed,
        |seed| Topology::random(nodes, field, seed),
        RoutingStrategy::MinimumEnergy,
        &config,
        rounds,
    );
    let delivered: u64 = reports.iter().map(|r| r.delivered_packets).sum();
    debug_assert_eq!(delivered, obs.packets.delivered);
    RunManifest::new("F6")
        .field("config", &config)
        .field("strategy", &RoutingStrategy::MinimumEnergy)
        .field("nodes", &(nodes as u64))
        .field("field_m", &field.as_meters())
        .field("replications", &(replications as u64))
        .field("base_seed", &base_seed)
        .field("rounds", &rounds)
        .runner()
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
}

/// [`f6_manifest_threads`] at the ambient thread count.
pub fn f6_manifest() -> RunManifest {
    f6_manifest_threads(ami_sim::runner::thread_count())
}

/// F13 (lossy gathering): the bruised-channel grid run, with the packet
/// outcome as a counter tree and the per-delivered-bit energy through
/// the `Option` API (null when the channel starves the sink).
pub fn f13_manifest() -> RunManifest {
    let topo = Topology::grid(5, Length::from_meters(30.0));
    let config = LossyConfig::bruised_channel();
    let (rounds, seed) = (300u64, 2003u64);
    let report = ami_net::simulate_lossy_gathering(&topo, &config, rounds, seed);
    let counters = CounterTree::branch([
        (
            "packets",
            CounterTree::branch([
                ("offered", CounterTree::leaf(report.offered)),
                ("delivered", CounterTree::leaf(report.delivered)),
                (
                    "dropped",
                    CounterTree::leaf(report.offered - report.delivered),
                ),
            ]),
        ),
        ("transmissions", CounterTree::leaf(report.transmissions)),
    ]);
    RunManifest::new("F13")
        .field("config", &config)
        .field("grid_side", &5u64)
        .field("seed", &seed)
        .field("rounds", &rounds)
        .runner()
        .field("total_energy_j", &report.total_energy)
        .field(
            "energy_per_delivered_bit",
            &report.energy_per_delivered_bit(&config.packet),
        )
        .counters(&counters)
}

/// [`f13_manifest`]'s run under the fault mix in `spec` (an
/// `AMBIENCE_FAULTS` grammar string): the same bruised-channel grid with
/// a seeded [`FaultSpec`] schedule layered on, so the counters grow a
/// `dropped/fault` attribution next to the channel losses.
///
/// # Panics
///
/// Panics if `spec` does not parse.
pub fn f13_faulted_manifest_with(spec: &str) -> RunManifest {
    let spec = FaultSpec::parse(spec).unwrap_or_else(|err| panic!("invalid fault spec: {err}"));
    let topo = Topology::grid(5, Length::from_meters(30.0));
    let config = LossyConfig::bruised_channel();
    let (rounds, seed) = (300u64, 2003u64);
    let faults = spec.schedule_for(seed, topo.len(), rounds);
    let report = ami_net::simulate_lossy_gathering_faulted(&topo, &config, rounds, seed, &faults);
    let channel_losses = report.offered - report.delivered - report.dropped_fault;
    let counters = CounterTree::branch([
        (
            "packets",
            CounterTree::branch([
                ("offered", CounterTree::leaf(report.offered)),
                ("delivered", CounterTree::leaf(report.delivered)),
                (
                    "dropped",
                    CounterTree::branch([
                        ("channel", CounterTree::leaf(channel_losses)),
                        ("fault", CounterTree::leaf(report.dropped_fault)),
                    ]),
                ),
            ]),
        ),
        (
            "fault_events",
            CounterTree::leaf(faults.events().len() as u64),
        ),
        ("transmissions", CounterTree::leaf(report.transmissions)),
    ]);
    RunManifest::new("F13-faulted")
        .field("config", &config)
        .field("grid_side", &5u64)
        .field("seed", &seed)
        .field("rounds", &rounds)
        .field("fault_model", &spec.model)
        .field("fault_seed", &spec.seed)
        .runner()
        .field("total_energy_j", &report.total_energy)
        .field(
            "energy_per_delivered_bit",
            &report.energy_per_delivered_bit(&config.packet),
        )
        .counters(&counters)
}

/// [`f13_faulted_manifest_with`] under the frozen [`F13_FAULT_SPEC`] mix
/// — the manifest CI diffs against `golden/f13_faulted_manifest.json`.
pub fn f13_faulted_manifest() -> RunManifest {
    f13_faulted_manifest_with(F13_FAULT_SPEC)
}

/// [`f6_manifest_threads`]'s random-field study under the
/// [`F6_FAULT_SPEC`] mix: each replication's seed derives both its
/// topology and its decorrelated fault schedule, and the merged ledger
/// and counters stay bit-identical at any `threads`.
pub fn f6_faulted_manifest_threads(threads: usize) -> RunManifest {
    let spec =
        FaultSpec::parse(F6_FAULT_SPEC).unwrap_or_else(|err| panic!("invalid fault spec: {err}"));
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(20.0);
    let (replications, base_seed, rounds) = (32usize, 2003u64, 500u64);
    let nodes = 40usize;
    let field = Length::from_meters(400.0);
    let (reports, obs) = replicate_gathering_faulted_observed_threads(
        threads,
        replications,
        base_seed,
        |seed| Topology::random(nodes, field, seed),
        |seed| spec.schedule_for(seed, nodes, rounds),
        RoutingStrategy::MinimumEnergy,
        &config,
        rounds,
    );
    let delivered: u64 = reports.iter().map(|r| r.delivered_packets).sum();
    debug_assert_eq!(delivered, obs.packets.delivered);
    RunManifest::new("F6-faulted")
        .field("config", &config)
        .field("strategy", &RoutingStrategy::MinimumEnergy)
        .field("nodes", &(nodes as u64))
        .field("field_m", &field.as_meters())
        .field("replications", &(replications as u64))
        .field("base_seed", &base_seed)
        .field("rounds", &rounds)
        .field("fault_model", &spec.model)
        .field("fault_seed", &spec.seed)
        .runner()
        .ledger(&obs.ledger)
        .counters(&obs.packets.tree())
}

/// [`f6_faulted_manifest_threads`] at the ambient thread count.
pub fn f6_faulted_manifest() -> RunManifest {
    f6_faulted_manifest_threads(ami_sim::runner::thread_count())
}

/// T3 (MAC comparison): the analytic MAC table for both traffic regimes
/// — no simulation, but the same manifest contract as the sweeps.
pub fn t3_manifest() -> RunManifest {
    let radio = RadioPowerStates::sensor_default();
    let table = |traffic: &TrafficLoad| -> Vec<(String, MacAnalysis)> {
        vec![
            ("csma".to_owned(), CsmaMac.analyze(&radio, traffic)),
            (
                "tdma_1s".to_owned(),
                TdmaMac::new(TimeSpan::from_seconds(1.0)).analyze(&radio, traffic),
            ),
            (
                "lpl_500ms".to_owned(),
                PreambleSamplingMac::new(TimeSpan::from_millis(500.0)).analyze(&radio, traffic),
            ),
            (
                "lpl_2s".to_owned(),
                PreambleSamplingMac::new(TimeSpan::from_seconds(2.0)).analyze(&radio, traffic),
            ),
        ]
    };
    let light = table(&TrafficLoad::periodic_report(TimeSpan::from_minutes(5.0)));
    let chatty = table(&TrafficLoad::periodic_report(TimeSpan::from_seconds(10.0)));
    RunManifest::new("T3")
        .field("radio", &radio)
        .runner()
        .field("light_traffic", &light)
        .field("chatty_traffic", &chatty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_manifest_carries_the_ledger_split() {
        let json = f3_manifest().to_json();
        assert!(json.contains("\"experiment\": \"F3\""));
        assert!(json.contains("\"idle\":"));
        assert!(json.contains("\"sweep\":{\"intervals\":9"));
    }

    #[test]
    fn f13_manifest_reports_per_bit_cost() {
        let json = f13_manifest().to_json();
        assert!(json.contains("\"experiment\": \"F13\""));
        assert!(json.contains("\"energy_per_delivered_bit\": "));
        assert!(json.contains("\"transmissions\":"));
    }

    #[test]
    fn t3_manifest_lists_both_regimes() {
        let json = t3_manifest().to_json();
        assert!(json.contains("\"light_traffic\": [[\"csma\","));
        assert!(json.contains("\"chatty_traffic\": "));
        assert!(json.contains("\"lpl_2s\""));
    }
}
