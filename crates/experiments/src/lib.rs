//! Shared plumbing for the experiment harness binaries.
//!
//! Every figure and table of the reconstruction (see DESIGN.md's
//! experiment index) has a binary in `src/bin/` that regenerates its
//! rows/series on stdout. This library holds the tiny shared formatting
//! layer so the binaries stay focused on their experiment, plus the
//! [`manifests`] builders that render headline runs as deterministic
//! JSON run manifests (gated on `AMBIENCE_MANIFEST`).
//!
//! # Example
//!
//! The formatting helpers the binaries share:
//!
//! ```
//! use ami_experiments::{eng, print_table};
//!
//! assert_eq!(eng(1.5), "1.500");
//! print_table(
//!     &["nodes", "energy [J]"],
//!     &[vec!["25".to_owned(), eng(0.0123)]],
//! );
//! ```

pub mod manifests;
pub mod tables;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("(ambience reproduction of Aarts & Roovers, DATE 2003)");
    println!("==============================================================");
}

/// Prints a section separator with a caption.
pub fn section(caption: &str) {
    println!();
    println!("--- {caption} ---");
}

/// Formats a float in short engineering style for table cells.
pub fn eng(value: f64) -> String {
    if value == 0.0 {
        return "0".to_owned();
    }
    let magnitude = value.abs();
    if (0.01..10_000.0).contains(&magnitude) {
        format!("{value:.3}")
    } else {
        format!("{value:.3e}")
    }
}

/// Renders a simple aligned table: a header row then data rows, all
/// left-padded to the widest cell of each column.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header");
        for (idx, cell) in row.iter().enumerate() {
            widths[idx] = widths[idx].max(cell.len());
        }
    }
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(idx, c)| format!("{:>width$}", c, width = widths[idx]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        render(header.iter().map(|s| (*s).to_owned()).collect())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", render(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formats_ranges() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1.5), "1.500");
        assert!(eng(1e-7).contains('e'));
        assert!(eng(1e7).contains('e'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
