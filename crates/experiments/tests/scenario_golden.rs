//! The scenario-driven experiment binaries must reproduce their
//! pre-migration stdout byte for byte, and the checked-in
//! `.scenario.json` files must stay pinned to the frozen constants the
//! manifests in `ami_experiments::manifests` still hard-code. Together
//! these two directions prove the migration moved the *source* of the
//! numbers without moving the numbers.
//!
//! The full F6 and F15 runs take tens of seconds in a debug build, so
//! their golden checks are `#[ignore]`d here and run in release by CI
//! (`cargo test -p ami-experiments --release -- --ignored`).

use std::path::{Path, PathBuf};
use std::process::Command;

use ami_experiments::manifests::F6_FAULT_SPEC;
use ami_net::{LossyConfig, NetworkConfig};
use ami_scenario::{CompiledScenario, ScenarioSpec, TopologySpec, WorkloadSpec};
use ami_units::Energy;

fn crate_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn scenario_path(file: &str) -> PathBuf {
    crate_dir().join("scenarios").join(file)
}

fn load_scenario(file: &str) -> ScenarioSpec {
    ScenarioSpec::load(scenario_path(file)).expect("checked-in scenario loads")
}

/// Runs `exe` exactly as the golden capture did — one worker thread, no
/// manifest/fault/scenario overrides inherited from the test runner —
/// and compares its stdout byte for byte against `golden/<name>`.
fn assert_stdout_matches_golden(exe: &str, golden: &str) {
    let output = Command::new(exe)
        .env("AMBIENCE_THREADS", "1")
        .env_remove("AMBIENCE_FAULTS")
        .env_remove("AMBIENCE_MANIFEST")
        .env_remove("AMBIENCE_SCENARIO")
        .output()
        .expect("experiment binary runs");
    assert!(
        output.status.success(),
        "{exe} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let want =
        std::fs::read(crate_dir().join("golden").join(golden)).expect("golden stdout file exists");
    assert!(
        output.stdout == want,
        "{exe} stdout drifted from golden/{golden}; regenerate the golden \
         only if the drift is intended"
    );
}

#[test]
fn f3_stdout_matches_golden() {
    assert_stdout_matches_golden(
        env!("CARGO_BIN_EXE_expt_f3_cs1_duty_cycle"),
        "f3_cs1_duty_cycle.stdout.txt",
    );
}

#[test]
fn f13_stdout_matches_golden() {
    assert_stdout_matches_golden(
        env!("CARGO_BIN_EXE_expt_f13_lossy_network"),
        "f13_lossy_network.stdout.txt",
    );
}

#[test]
#[ignore = "tens of seconds in debug; CI runs it in release with --ignored"]
fn f6_stdout_matches_golden() {
    assert_stdout_matches_golden(
        env!("CARGO_BIN_EXE_expt_f6_network_scaling"),
        "f6_network_scaling.stdout.txt",
    );
}

#[test]
#[ignore = "tens of seconds in debug; CI runs it in release with --ignored"]
fn f15_stdout_matches_golden() {
    assert_stdout_matches_golden(
        env!("CARGO_BIN_EXE_expt_f15_city_scale"),
        "f15_city_scale.stdout.txt",
    );
}

/// Every checked-in scenario parses, validates and compiles; a file
/// that drifts out of grammar fails here before any binary runs it.
#[test]
fn all_checked_in_scenarios_validate_and_compile() {
    let dir = crate_dir().join("scenarios");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.to_string_lossy().ends_with(".scenario.json") {
            let spec =
                ScenarioSpec::load(&path).unwrap_or_else(|err| panic!("{}: {err}", path.display()));
            CompiledScenario::compile(&spec)
                .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
            seen += 1;
        }
    }
    assert_eq!(seen, 4, "F3, F6, F13 and F15 scenarios are checked in");
}

/// F3's scenario pins the same ledger span and check-interval sweep the
/// frozen `f3_manifest` hard-codes.
#[test]
fn f3_scenario_pins_the_manifest_constants() {
    let spec = load_scenario("f3_cs1_duty_cycle.scenario.json");
    let WorkloadSpec::Cs1DutyCycle { ledger_days } = spec.workload else {
        panic!("F3 is a cs1_duty_cycle scenario");
    };
    assert_eq!(ledger_days, 3.0, "f3_manifest ledgers 3 days");
    assert_eq!(
        spec.axis("check_interval_s").expect("sweep axis"),
        &[0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
        "f3_manifest sweeps these intervals"
    );
}

/// F6's scenario pins the same field, budget, seed and fault mix the
/// frozen `f6_manifest_threads` / `f6_faulted_manifest_threads`
/// hard-code.
#[test]
fn f6_scenario_pins_the_manifest_constants() {
    let spec = load_scenario("f6_network_scaling.scenario.json");
    assert_eq!(spec.seed, 2003);
    assert_eq!(spec.rounds, 500);
    assert_eq!(spec.replications, 32);
    assert_eq!(
        spec.topology,
        Some(TopologySpec::Random {
            nodes: 40,
            field_m: 400.0
        })
    );
    assert_eq!(spec.faults.as_deref(), Some(F6_FAULT_SPEC));
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(20.0);
    assert_eq!(spec.network.to_network_config(), config);
}

/// F13's scenario compiles to exactly the bruised channel the frozen
/// `f13_manifest` hard-codes, on the same 5x5/30 m grid, seed and span.
#[test]
fn f13_scenario_pins_the_manifest_constants() {
    let spec = load_scenario("f13_lossy_network.scenario.json");
    assert_eq!(spec.seed, 2003);
    assert_eq!(spec.rounds, 300);
    assert_eq!(
        spec.topology,
        Some(TopologySpec::Grid {
            side: 5,
            spacing_m: 30.0
        })
    );
    let compiled = CompiledScenario::compile(&spec).expect("F13 compiles");
    assert_eq!(
        compiled.lossy_config(),
        Some(&LossyConfig::bruised_channel()),
        "the scenario's channel is f13_manifest's bruised channel"
    );
}

/// The lossy `parallel_rounds` knob round-trips through the scenario
/// grammar and compiles; typos are caught by the unknown-field wall;
/// and the checked-in (knob-free) F13 scenario keeps its canonical
/// form — and hence its compile-cache hash — unchanged.
#[test]
fn lossy_scenario_parallel_rounds_field_validates() {
    let base = load_scenario("f13_lossy_network.scenario.json");
    assert!(
        !base.canonical_json().contains("parallel_rounds"),
        "the checked-in F13 spec must stay knob-free (hash stability)"
    );
    for forced in [true, false] {
        let doc = format!(
            r#"{{
                "name": "f13-knob",
                "seed": 2003,
                "rounds": 30,
                "topology": {{"kind": "grid", "side": 5, "spacing_m": 30.0}},
                "workload": {{"kind": "lossy", "ber": 0.001, "arq_attempts": 4,
                              "parallel_rounds": {forced}}}
            }}"#
        );
        let spec = ScenarioSpec::from_json_str(&doc).expect("knobbed lossy spec parses");
        let WorkloadSpec::Lossy {
            parallel_rounds, ..
        } = spec.workload
        else {
            panic!("lossy workload expected");
        };
        assert_eq!(parallel_rounds, Some(forced));
        CompiledScenario::compile(&spec).expect("knobbed lossy spec compiles");
    }
    // A typo is an unknown field, not a silent default.
    let err = ScenarioSpec::from_json_str(
        r#"{
            "name": "f13-typo",
            "rounds": 30,
            "topology": {"kind": "grid", "side": 5, "spacing_m": 30.0},
            "workload": {"kind": "lossy", "ber": 0.001, "arq_attempts": 4,
                         "parallel_round": true}
        }"#,
    )
    .expect_err("typoed knob rejected");
    assert!(err.to_string().contains("unknown field"), "{err}");
}

/// F15's scenario pins the bench-snapshot churn mix and the
/// constant-density field family the bench sweep uses.
#[test]
fn f15_scenario_pins_the_bench_constants() {
    let spec = load_scenario("f15_city_scale.scenario.json");
    assert_eq!(spec.seed, 2003);
    assert_eq!(spec.rounds, 30);
    assert_eq!(
        spec.faults.as_deref(),
        Some("death=0.1,outage=0.2:10,link=0.1:8"),
        "the bench-snapshot fault mix, frozen in expt_bench_snapshot"
    );
    assert_eq!(
        spec.axis_usize("nodes").expect("integral nodes axis"),
        vec![400, 1600, 4096]
    );
    assert_eq!(spec.axis("field_m_per_sqrt_n"), Some(&[25.0][..]));
    // The declared topology is the smallest sweep point, so the spec
    // stays self-consistent: 25·√400 = 500 m.
    assert_eq!(
        spec.topology,
        Some(TopologySpec::Random {
            nodes: 400,
            field_m: 500.0
        })
    );
}
