//! The sweep-heavy experiment tables must not depend on the worker
//! count: every builder in `ami_experiments::tables` partitions its
//! work by seed or by grid cell and merges in fixed order, so the rows
//! it renders are byte-identical at 1, 2 and 8 threads — and identical
//! to the serial constructions the binaries used before the sweeps
//! were parallelised.

use ami_arch::ArchitectureClass;
use ami_core::case_studies::cs3::{best_format, Cs3Config};
use ami_experiments::tables::{
    a6_joint_yield_rows, a6_leakage_spread_rows_threads, f11_clustering_rows_threads,
    f5_best_format_lines_threads,
};
use ami_sim::{replicate, sim_rng};
use ami_tech::{Roadmap, TechnologyNode, VariationModel};
use ami_units::{Frequency, Power, Temperature};

#[test]
fn a6_leakage_rows_are_thread_invariant_and_match_serial_replicate() {
    let one = a6_leakage_spread_rows_threads(1);
    let two = a6_leakage_spread_rows_threads(2);
    let eight = a6_leakage_spread_rows_threads(8);
    assert_eq!(one, two, "A6 leakage table differs between 1 and 2 threads");
    assert_eq!(
        one, eight,
        "A6 leakage table differs between 1 and 8 threads"
    );

    // The serial loop the binary used before the parallel switch.
    let model = VariationModel::typical_2003();
    let serial: Vec<Vec<String>> = Roadmap::full_2003()
        .nodes()
        .iter()
        .map(|node| {
            let summary = replicate(2000, 42, |seed| {
                let mut rng = sim_rng(seed);
                model
                    .sample_die(node, 100e3, Temperature::ROOM, &mut rng)
                    .leakage
                    .as_watts()
            });
            vec![
                node.name().to_owned(),
                format!("{:.3e}", summary.mean),
                format!("{:.3e}", summary.max),
                format!("{:.1}x", summary.max / summary.min.max(1e-30)),
                format!("{:.2}", summary.cv()),
            ]
        })
        .collect();
    assert_eq!(one, serial, "parallel A6 rows differ from serial replicate");
}

#[test]
fn a6_joint_yield_rows_match_solo_yield_calls() {
    let rows = a6_joint_yield_rows();
    // One solo parametric_yield call per constraint, each re-sampling
    // the same seed-7 population — the construction the shared-die
    // `parametric_yield_many` replaced.
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let pairs = [
        (0.9, 100.0),
        (1.0, 100.0),
        (1.05, 10.0),
        (1.1, 5.0),
        (1.15, 5.0),
    ];
    let solo: Vec<Vec<String>> = pairs
        .iter()
        .map(|&(f_ghz, p_mw)| {
            let y = model.parametric_yield(
                &node,
                100e3,
                Temperature::ROOM,
                Frequency::from_gigahertz(f_ghz),
                Power::from_milliwatts(p_mw),
                4000,
                7,
            );
            vec![
                format!("{f_ghz:.2} GHz"),
                format!("{p_mw:.0} mW"),
                format!("{:.1}%", 100.0 * y),
            ]
        })
        .collect();
    assert_eq!(
        rows, solo,
        "shared-population yields differ from solo calls"
    );
}

#[test]
fn f11_clustering_rows_are_thread_invariant() {
    let one = f11_clustering_rows_threads(1);
    let two = f11_clustering_rows_threads(2);
    let eight = f11_clustering_rows_threads(8);
    assert_eq!(one, two, "F11 table differs between 1 and 2 threads");
    assert_eq!(one, eight, "F11 table differs between 1 and 8 threads");
    assert_eq!(one.len(), 3, "F11 covers the 4x4, 5x5 and 6x6 grids");
}

#[test]
fn f5_format_lines_are_thread_invariant_and_match_serial_loop() {
    let config = Cs3Config::default();
    let one = f5_best_format_lines_threads(1, &config);
    let two = f5_best_format_lines_threads(2, &config);
    let eight = f5_best_format_lines_threads(8, &config);
    assert_eq!(one, two, "F5 listing differs between 1 and 2 threads");
    assert_eq!(one, eight, "F5 listing differs between 1 and 8 threads");

    let serial: Vec<String> = ArchitectureClass::all()
        .iter()
        .map(|&class| {
            format!(
                "{:<5}  {}",
                class.to_string(),
                best_format(&config, class).map_or("none".to_owned(), |f| f.to_string())
            )
        })
        .collect();
    assert_eq!(one, serial, "parallel F5 lines differ from serial loop");
}
