//! Channel contention and the density limit of ambient networks.
//!
//! "Anyone, anywhere, any time" implies *many* nodes per room sharing one
//! channel. The classic random-access results bound what that channel can
//! carry: slotted ALOHA peaks at `1/e` utilization, and the collision
//! probability grows exponentially with offered load. From these, the
//! maximum sustainable node density per channel follows — the scalability
//! wall the DATE 2003 "Scaling into Ambient Intelligence" session worried
//! about.

use crate::packet::Packet;
use ami_units::{DataRate, Frequency, TimeSpan};
use serde::{Deserialize, Serialize};

/// Slotted-ALOHA throughput `S = G·e^{−G}` at offered load `G`
/// (both in packets per slot).
///
/// # Panics
///
/// Panics if `g` is negative.
pub fn slotted_aloha_throughput(g: f64) -> f64 {
    assert!(
        g >= 0.0 && g.is_finite(),
        "offered load must be non-negative"
    );
    g * (-g).exp()
}

/// Unslotted (pure) ALOHA throughput `S = G·e^{−2G}`.
///
/// # Panics
///
/// Panics if `g` is negative.
pub fn pure_aloha_throughput(g: f64) -> f64 {
    assert!(
        g >= 0.0 && g.is_finite(),
        "offered load must be non-negative"
    );
    g * (-2.0 * g).exp()
}

/// Probability a slotted-ALOHA transmission collides at offered load `g`.
pub fn collision_probability(g: f64) -> f64 {
    assert!(
        g >= 0.0 && g.is_finite(),
        "offered load must be non-negative"
    );
    1.0 - (-g).exp()
}

/// A shared channel characterized by bit rate and packet format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedChannel {
    /// On-air bit rate.
    pub bitrate: DataRate,
    /// The packet every node sends.
    pub packet: Packet,
}

impl SharedChannel {
    /// Creates a channel.
    pub fn new(bitrate: DataRate, packet: Packet) -> Self {
        Self { bitrate, packet }
    }

    /// The 2003 sensor channel: 50 kbit/s, sensor-report packets.
    pub fn sensor_default() -> Self {
        Self::new(
            DataRate::from_kilobits_per_second(50.0),
            Packet::sensor_report(),
        )
    }

    /// Slot duration (one packet airtime).
    pub fn slot(&self) -> TimeSpan {
        self.packet.airtime(self.bitrate)
    }

    /// Maximum *delivered* packets per second under slotted ALOHA
    /// (the `1/e` peak).
    pub fn peak_delivered_rate(&self) -> Frequency {
        Frequency::new((1.0 / std::f64::consts::E) / self.slot().as_seconds())
    }

    /// The maximum number of nodes, each reporting every `interval`,
    /// that the channel sustains at the ALOHA optimum.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn max_nodes(&self, interval: TimeSpan) -> f64 {
        assert!(interval > TimeSpan::ZERO, "interval must be positive");
        self.peak_delivered_rate().as_hertz() * interval.as_seconds()
    }

    /// Delivered fraction for `nodes` nodes reporting every `interval`
    /// under slotted ALOHA (the per-packet success probability `e^{−G}`).
    pub fn delivered_fraction(&self, nodes: f64, interval: TimeSpan) -> f64 {
        assert!(nodes >= 0.0, "node count must be non-negative");
        assert!(interval > TimeSpan::ZERO, "interval must be positive");
        let g = nodes / interval.as_seconds() * self.slot().as_seconds();
        (-g).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aloha_peaks_at_the_textbook_values() {
        // Slotted: max 1/e ≈ 0.368 at G = 1; pure: 1/(2e) ≈ 0.184 at G = ½.
        assert!((slotted_aloha_throughput(1.0) - 0.367_879).abs() < 1e-6);
        assert!((pure_aloha_throughput(0.5) - 0.183_940).abs() < 1e-6);
        // And they really are maxima.
        for g in [0.5, 0.8, 1.2, 2.0] {
            assert!(slotted_aloha_throughput(g) <= slotted_aloha_throughput(1.0) + 1e-12);
        }
        for g in [0.2, 0.4, 0.6, 1.0] {
            assert!(pure_aloha_throughput(g) <= pure_aloha_throughput(0.5) + 1e-12);
        }
    }

    #[test]
    fn slotted_doubles_pure_capacity() {
        let slotted = slotted_aloha_throughput(1.0);
        let pure = pure_aloha_throughput(0.5);
        assert!((slotted / pure - 2.0).abs() < 1e-9);
    }

    #[test]
    fn collision_probability_grows_with_load() {
        assert_eq!(collision_probability(0.0), 0.0);
        assert!(collision_probability(0.5) < collision_probability(1.0));
        assert!(collision_probability(5.0) > 0.99);
    }

    #[test]
    fn room_scale_density_is_thousands_at_five_minute_reports() {
        // The scalability answer: a single 50 kbit/s channel carries
        // thousands of 5-minute reporters — density is NOT the bottleneck
        // at sensor rates.
        let ch = SharedChannel::sensor_default();
        let max = ch.max_nodes(TimeSpan::from_minutes(5.0));
        assert!(max > 10_000.0, "got {max:.0}");
    }

    #[test]
    fn video_rates_saturate_immediately() {
        // One channel cannot even carry a handful of streaming nodes.
        let ch = SharedChannel::new(
            DataRate::from_kilobits_per_second(50.0),
            Packet::audio_frame(),
        );
        let max = ch.max_nodes(TimeSpan::from_millis(24.0));
        assert!(max < 1.0, "got {max:.2}");
    }

    #[test]
    fn delivered_fraction_degrades_gracefully() {
        let ch = SharedChannel::sensor_default();
        let interval = TimeSpan::from_seconds(10.0);
        let light = ch.delivered_fraction(10.0, interval);
        let heavy = ch.delivered_fraction(2000.0, interval);
        assert!(light > 0.99);
        assert!(heavy < light);
        assert!((0.0..=1.0).contains(&heavy));
    }

    #[test]
    fn slot_is_packet_airtime() {
        let ch = SharedChannel::sensor_default();
        assert!((ch.slot().as_millis() - 4.8).abs() < 1e-9);
    }
}
