//! Duty-cycled medium-access protocols and their analytic power models.
//!
//! The µW-node's radio is idle almost always; what it costs depends on
//! *how it listens*. Three archetypes of the era are modelled in their
//! low-traffic analytic regime (collisions negligible), each trading
//! average power against latency:
//!
//! * [`CsmaMac`] — plain carrier-sense with an always-on receiver:
//!   minimal latency, idle listening dominates (milliwatts).
//! * [`TdmaMac`] — globally slotted frames: the node wakes once per frame
//!   for sync plus its own traffic; power scales with frame rate.
//! * [`PreambleSamplingMac`] — low-power listening (B-MAC/WiseMAC family):
//!   periodic channel samples, senders pay a wake-up preamble; power scales
//!   with the check rate, latency with the check interval.

use crate::packet::Packet;
use ami_units::{DataRate, Energy, Frequency, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Radio power-state parameters used by the MAC analyses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerStates {
    /// Receive/listen power.
    pub rx: Power,
    /// Transmit power.
    pub tx: Power,
    /// Sleep power.
    pub sleep: Power,
    /// Oscillator/PLL settle time on wake-up.
    pub startup_time: TimeSpan,
    /// Power burnt while settling.
    pub startup_power: Power,
}

impl RadioPowerStates {
    /// The 2003 sensor-radio calibration matching
    /// `ami_arch::RfFrontEnd::sensor_sub_ghz`.
    pub fn sensor_default() -> Self {
        Self {
            rx: Power::from_milliwatts(15.0),
            tx: Power::from_milliwatts(20.0),
            sleep: Power::from_microwatts(2.0),
            startup_time: TimeSpan::from_micros(500.0),
            startup_power: Power::from_milliwatts(10.0),
        }
    }

    /// Energy of one wake-up.
    pub fn startup_energy(&self) -> Energy {
        self.startup_power * self.startup_time
    }
}

/// Offered traffic seen by one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficLoad {
    /// Packets this node originates per second.
    pub send_rate: Frequency,
    /// Packets this node must receive per second.
    pub recv_rate: Frequency,
    /// The packet format.
    pub packet: Packet,
    /// On-air bit rate.
    pub bitrate: DataRate,
}

impl TrafficLoad {
    /// A periodic sensor report every `interval`, nothing to receive.
    pub fn periodic_report(interval: TimeSpan) -> Self {
        assert!(
            interval > TimeSpan::ZERO,
            "report interval must be positive"
        );
        Self {
            send_rate: Frequency::new(1.0 / interval.as_seconds()),
            recv_rate: Frequency::ZERO,
            packet: Packet::sensor_report(),
            bitrate: DataRate::from_kilobits_per_second(50.0),
        }
    }

    /// A node with nothing to send or receive (pure listening cost).
    pub fn idle() -> Self {
        Self {
            send_rate: Frequency::ZERO,
            recv_rate: Frequency::ZERO,
            packet: Packet::sensor_report(),
            bitrate: DataRate::from_kilobits_per_second(50.0),
        }
    }

    /// On-air time of one packet.
    pub fn airtime(&self) -> TimeSpan {
        self.packet.airtime(self.bitrate)
    }
}

/// Result of a MAC analysis at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacAnalysis {
    /// Long-run average radio power.
    pub average_power: Power,
    /// Mean delay from packet creation to start of transmission.
    pub mean_latency: TimeSpan,
    /// Fraction of time the radio is awake (rx + tx + startup).
    pub effective_duty: f64,
}

/// A medium-access protocol with an analytic low-traffic power model.
pub trait MacProtocol {
    /// Protocol name for reports.
    fn name(&self) -> &str;

    /// Average power, latency and duty cycle under `traffic`.
    fn analyze(&self, radio: &RadioPowerStates, traffic: &TrafficLoad) -> MacAnalysis;
}

/// Plain CSMA with an always-on receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CsmaMac;

impl MacProtocol for CsmaMac {
    fn name(&self) -> &str {
        "CSMA (always-on)"
    }

    fn analyze(&self, radio: &RadioPowerStates, traffic: &TrafficLoad) -> MacAnalysis {
        let airtime = traffic.airtime().as_seconds();
        let tx_frac = traffic.send_rate.as_hertz() * airtime;
        assert!(tx_frac <= 1.0, "offered load exceeds channel capacity");
        // Idle-listen whenever not transmitting.
        let avg = radio.tx * tx_frac + radio.rx * (1.0 - tx_frac);
        MacAnalysis {
            average_power: avg,
            mean_latency: traffic.airtime() * 0.5, // carrier-sense backoff scale
            effective_duty: 1.0,
        }
    }
}

/// Globally synchronized TDMA frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdmaMac {
    /// Frame period (one owned slot per frame).
    pub frame_period: TimeSpan,
    /// Receiver-on guard time per frame for synchronization.
    pub sync_guard: TimeSpan,
}

impl TdmaMac {
    /// A TDMA MAC with the given frame period and a 2 ms sync guard.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive.
    pub fn new(frame_period: TimeSpan) -> Self {
        assert!(
            frame_period > TimeSpan::ZERO,
            "frame period must be positive"
        );
        Self {
            frame_period,
            sync_guard: TimeSpan::from_millis(2.0),
        }
    }
}

impl MacProtocol for TdmaMac {
    fn name(&self) -> &str {
        "TDMA"
    }

    fn analyze(&self, radio: &RadioPowerStates, traffic: &TrafficLoad) -> MacAnalysis {
        let frame = self.frame_period.as_seconds();
        let airtime = traffic.airtime().as_seconds();
        // Per frame: one wake-up, the sync guard listening, plus the node's
        // own slot when it has traffic to send or receive.
        let wakeups_per_s = 1.0 / frame;
        let sync_power = radio.rx * (self.sync_guard.as_seconds() / frame);
        let startup = Power::new(radio.startup_energy().as_joules() * wakeups_per_s);
        let tx_frac = traffic.send_rate.as_hertz() * airtime;
        let rx_frac = traffic.recv_rate.as_hertz() * airtime;
        assert!(
            tx_frac + rx_frac <= 1.0,
            "offered load exceeds channel capacity"
        );
        let awake_frac = (self.sync_guard.as_seconds() + radio.startup_time.as_seconds()) / frame
            + tx_frac
            + rx_frac;
        let avg = startup
            + sync_power
            + radio.tx * tx_frac
            + radio.rx * rx_frac
            + radio.sleep * (1.0 - awake_frac).max(0.0);
        MacAnalysis {
            average_power: avg,
            mean_latency: self.frame_period * 0.5,
            effective_duty: awake_frac.min(1.0),
        }
    }
}

/// Low-power listening with sender preambles (B-MAC/WiseMAC family).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreambleSamplingMac {
    /// Interval between channel samples.
    pub check_interval: TimeSpan,
    /// Duration of one channel sample.
    pub sample_time: TimeSpan,
}

impl PreambleSamplingMac {
    /// A preamble-sampling MAC with the given check interval and a 500 µs
    /// channel sample (the B-MAC-era RSSI-sample duration).
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(check_interval: TimeSpan) -> Self {
        assert!(
            check_interval > TimeSpan::ZERO,
            "check interval must be positive"
        );
        Self {
            check_interval,
            sample_time: TimeSpan::from_micros(500.0),
        }
    }
}

impl MacProtocol for PreambleSamplingMac {
    fn name(&self) -> &str {
        "preamble sampling"
    }

    fn analyze(&self, radio: &RadioPowerStates, traffic: &TrafficLoad) -> MacAnalysis {
        let interval = self.check_interval.as_seconds();
        let airtime = traffic.airtime().as_seconds();
        let checks_per_s = 1.0 / interval;
        // Listening cost: startup + sample, every interval.
        let check_power = Power::new(
            (radio.startup_energy().as_joules() + (radio.rx * self.sample_time).as_joules())
                * checks_per_s,
        );
        // Sending cost: a full-interval preamble plus the packet.
        let tx_time_per_pkt = interval + airtime;
        let tx_frac = traffic.send_rate.as_hertz() * tx_time_per_pkt;
        assert!(tx_frac <= 1.0, "offered load exceeds channel capacity");
        // Receiving cost: on average half the preamble plus the packet.
        let rx_time_per_pkt = interval / 2.0 + airtime;
        let rx_frac = traffic.recv_rate.as_hertz() * rx_time_per_pkt;
        let awake_frac = checks_per_s
            * (self.sample_time.as_seconds() + radio.startup_time.as_seconds())
            + tx_frac
            + rx_frac;
        let avg = check_power
            + radio.tx * tx_frac
            + radio.rx * rx_frac
            + radio.sleep * (1.0 - awake_frac).max(0.0);
        MacAnalysis {
            average_power: avg,
            mean_latency: self.check_interval * 0.5,
            effective_duty: awake_frac.min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioPowerStates {
        RadioPowerStates::sensor_default()
    }

    fn light_traffic() -> TrafficLoad {
        TrafficLoad::periodic_report(TimeSpan::from_minutes(5.0))
    }

    #[test]
    fn csma_burns_idle_listening() {
        let a = CsmaMac.analyze(&radio(), &light_traffic());
        // Always-on receiver: ~15 mW regardless of traffic.
        assert!(a.average_power.as_milliwatts() > 14.0);
        assert_eq!(a.effective_duty, 1.0);
    }

    #[test]
    fn preamble_sampling_reaches_microwatts() {
        let mac = PreambleSamplingMac::new(TimeSpan::from_seconds(1.0));
        let a = mac.analyze(&radio(), &light_traffic());
        assert!(
            a.average_power.as_microwatts() < 150.0,
            "LPL should be ~tens of µW, got {}",
            a.average_power
        );
        assert!(a.effective_duty < 0.01);
    }

    #[test]
    fn duty_cycled_macs_beat_csma_by_orders_of_magnitude() {
        let tdma = TdmaMac::new(TimeSpan::from_seconds(1.0)).analyze(&radio(), &light_traffic());
        let csma = CsmaMac.analyze(&radio(), &light_traffic());
        let lpl = PreambleSamplingMac::new(TimeSpan::from_seconds(1.0))
            .analyze(&radio(), &light_traffic());
        let csma_w = csma.average_power.as_watts();
        assert!(csma_w / tdma.average_power.as_watts() > 50.0);
        assert!(csma_w / lpl.average_power.as_watts() > 50.0);
    }

    #[test]
    fn latency_power_tradeoff_in_lpl() {
        // For a purely listening node, checking more often costs more power
        // but promises less delivery latency — the LPL knob.
        let fast = PreambleSamplingMac::new(TimeSpan::from_millis(100.0));
        let slow = PreambleSamplingMac::new(TimeSpan::from_seconds(2.0));
        let t = TrafficLoad::idle();
        let a_fast = fast.analyze(&radio(), &t);
        let a_slow = slow.analyze(&radio(), &t);
        assert!(a_fast.mean_latency < a_slow.mean_latency);
        assert!(a_fast.average_power > a_slow.average_power);
    }

    #[test]
    fn lpl_sender_pays_for_receiver_sleep() {
        // Heavier send traffic with a long check interval: the preamble
        // cost makes slow checking WORSE for chatty nodes.
        let chatty = TrafficLoad::periodic_report(TimeSpan::from_seconds(2.0));
        let slow = PreambleSamplingMac::new(TimeSpan::from_seconds(1.0));
        let fast = PreambleSamplingMac::new(TimeSpan::from_millis(50.0));
        let a_slow = slow.analyze(&radio(), &chatty);
        let a_fast = fast.analyze(&radio(), &chatty);
        assert!(
            a_fast.average_power < a_slow.average_power,
            "chatty nodes prefer short preambles: {} vs {}",
            a_fast.average_power,
            a_slow.average_power
        );
    }

    #[test]
    fn tdma_power_scales_with_frame_rate() {
        let t = light_traffic();
        let fast = TdmaMac::new(TimeSpan::from_millis(100.0)).analyze(&radio(), &t);
        let slow = TdmaMac::new(TimeSpan::from_seconds(10.0)).analyze(&radio(), &t);
        assert!(fast.average_power > slow.average_power);
        assert!(fast.mean_latency < slow.mean_latency);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overload_rejected() {
        let mut t = TrafficLoad::periodic_report(TimeSpan::from_seconds(1.0));
        t.send_rate = Frequency::from_kilohertz(10.0); // 10k packets/s
        let _ = CsmaMac.analyze(&radio(), &t);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            CsmaMac.name().to_owned(),
            TdmaMac::new(TimeSpan::from_seconds(1.0)).name().to_owned(),
            PreambleSamplingMac::new(TimeSpan::from_seconds(1.0))
                .name()
                .to_owned(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
