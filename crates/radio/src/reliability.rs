//! Link-reliability mechanisms: retransmission (ARQ) and forward error
//! correction, and the energy each costs per *delivered* bit.
//!
//! A lossy channel turns "energy per transmitted bit" into the wrong
//! metric; what a network budget needs is energy per **delivered** bit.
//! Stop-and-wait ARQ multiplies cost by the expected transmission count;
//! FEC trades a fixed code-rate overhead for a steeper residual error
//! curve. Their crossover in BER is a classic low-power design decision
//! (experiment F8).

use crate::energy_model::RadioEnergyModel;
use crate::packet::Packet;
use ami_units::{DataVolume, Energy, EnergyPerBit, Length};
use serde::{Deserialize, Serialize};

/// Stop-and-wait automatic repeat request with bounded retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StopAndWaitArq {
    /// Maximum transmissions per packet (1 = no retries).
    pub max_transmissions: u32,
}

impl StopAndWaitArq {
    /// Creates an ARQ with the given transmission budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_transmissions` is zero.
    pub fn new(max_transmissions: u32) -> Self {
        assert!(max_transmissions >= 1, "at least one transmission");
        Self { max_transmissions }
    }

    /// Probability a packet is eventually delivered when each attempt
    /// succeeds independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn delivery_probability(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        1.0 - (1.0 - p).powi(self.max_transmissions as i32)
    }

    /// Expected number of transmissions per offered packet
    /// (attempts stop at success or at the budget).
    pub fn expected_transmissions(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        if p == 0.0 {
            return f64::from(self.max_transmissions);
        }
        let q = 1.0 - p;
        let n = f64::from(self.max_transmissions);
        // E[T] = (1 - q^N) / p   for truncated geometric attempts.
        (1.0 - q.powf(n)) / p
    }
}

/// Forward-error-correction schemes of the µW-node era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FecScheme {
    /// Uncoded transmission.
    None,
    /// Bit-level triple repetition (rate 1/3, majority vote).
    Repetition3,
    /// Hamming(7,4): rate 4/7, corrects one error per 7-bit block.
    Hamming74,
}

impl FecScheme {
    /// Coded bits transmitted per information bit.
    pub fn overhead(self) -> f64 {
        match self {
            FecScheme::None => 1.0,
            FecScheme::Repetition3 => 3.0,
            FecScheme::Hamming74 => 7.0 / 4.0,
        }
    }

    /// Residual information-bit error rate after decoding, given the raw
    /// channel bit error rate.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 0.5]`.
    pub fn residual_ber(self, ber: f64) -> f64 {
        assert!(
            (0.0..=0.5).contains(&ber),
            "channel BER must lie in [0, 0.5]"
        );
        match self {
            FecScheme::None => ber,
            // Majority vote fails on 2 or 3 flipped repeats.
            FecScheme::Repetition3 => 3.0 * ber * ber * (1.0 - ber) + ber.powi(3),
            // A (7,4) block decodes wrongly when ≥2 of 7 bits flip; charge
            // the block-error rate against each of its 4 info bits (an
            // upper bound, standard practice).
            FecScheme::Hamming74 => {
                let p_ok = (1.0 - ber).powi(7) + 7.0 * ber * (1.0 - ber).powi(6);
                (1.0 - p_ok).min(0.5)
            }
        }
    }

    /// All schemes.
    pub fn all() -> [FecScheme; 3] {
        [
            FecScheme::None,
            FecScheme::Repetition3,
            FecScheme::Hamming74,
        ]
    }
}

impl std::fmt::Display for FecScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FecScheme::None => "uncoded",
            FecScheme::Repetition3 => "repetition-3",
            FecScheme::Hamming74 => "Hamming(7,4)",
        })
    }
}

/// The end-to-end reliability analysis: ARQ over an FEC-coded packet on a
/// channel with raw bit error rate `ber`, at transmit distance `d`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Per-attempt packet delivery probability (after FEC decoding).
    pub attempt_success: f64,
    /// End-to-end delivery probability within the ARQ budget.
    pub delivery_probability: f64,
    /// Expected transmissions per offered packet.
    pub expected_transmissions: f64,
    /// Expected radio energy per *delivered payload bit*.
    pub energy_per_delivered_bit: EnergyPerBit,
}

/// Evaluates `packet` under `fec` + `arq` on a channel of raw `ber` over
/// distance `d` with `radio`'s energy model (transmit + receive charged).
///
/// # Panics
///
/// Panics if `ber` is outside `[0, 0.5]` or nothing can ever be delivered
/// (delivery probability is zero).
pub fn analyze_reliability(
    packet: &Packet,
    fec: FecScheme,
    arq: StopAndWaitArq,
    ber: f64,
    d: Length,
    radio: &RadioEnergyModel,
) -> ReliabilityReport {
    let residual = fec.residual_ber(ber);
    let attempt_success = packet.delivery_probability(residual);
    let delivery = arq.delivery_probability(attempt_success);
    assert!(delivery > 0.0, "channel too bad: nothing is ever delivered");
    let tx_count = arq.expected_transmissions(attempt_success);
    let on_air = DataVolume::from_bits(packet.total_bits().as_bits() * fec.overhead());
    let per_attempt: Energy = radio.transmit_energy(on_air, d) + radio.receive_energy(on_air);
    // Energy is spent on every offered packet; payload arrives on the
    // delivered fraction.
    let energy_per_packet = per_attempt * tx_count;
    let delivered_bits = packet.payload().as_bits() * delivery;
    ReliabilityReport {
        attempt_success,
        delivery_probability: delivery,
        expected_transmissions: tx_count,
        energy_per_delivered_bit: EnergyPerBit::new(energy_per_packet.as_joules() / delivered_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radio() -> RadioEnergyModel {
        RadioEnergyModel::short_range_2003()
    }

    #[test]
    fn arq_geometry() {
        let arq = StopAndWaitArq::new(4);
        assert!((arq.delivery_probability(0.5) - 0.9375).abs() < 1e-12);
        // E[T] = (1-0.5^4)/0.5 = 1.875.
        assert!((arq.expected_transmissions(0.5) - 1.875).abs() < 1e-12);
        assert_eq!(arq.expected_transmissions(0.0), 4.0);
        assert_eq!(arq.expected_transmissions(1.0), 1.0);
    }

    #[test]
    fn fec_improves_residual_ber_when_channel_is_decent() {
        let ber = 1e-3;
        assert!(FecScheme::Repetition3.residual_ber(ber) < ber);
        assert!(FecScheme::Hamming74.residual_ber(ber) < 25.0 * ber * ber);
    }

    #[test]
    fn repetition_hurts_on_clean_channels_via_overhead() {
        // At BER 1e-6 the uncoded packet almost always survives; paying 3x
        // airtime is pure loss.
        let pkt = Packet::sensor_report();
        let arq = StopAndWaitArq::new(3);
        let d = Length::from_meters(20.0);
        let clean = 1e-6;
        let uncoded = analyze_reliability(&pkt, FecScheme::None, arq, clean, d, &radio());
        let coded = analyze_reliability(&pkt, FecScheme::Repetition3, arq, clean, d, &radio());
        assert!(uncoded.energy_per_delivered_bit < coded.energy_per_delivered_bit);
    }

    #[test]
    fn coding_wins_on_dirty_channels() {
        // At BER 1e-2 an uncoded 240-bit packet dies ~91% of the time;
        // repetition-3 rescues it for less energy per delivered bit.
        let pkt = Packet::sensor_report();
        let arq = StopAndWaitArq::new(8);
        let d = Length::from_meters(20.0);
        let dirty = 1e-2;
        let uncoded = analyze_reliability(&pkt, FecScheme::None, arq, dirty, d, &radio());
        let coded = analyze_reliability(&pkt, FecScheme::Repetition3, arq, dirty, d, &radio());
        assert!(
            coded.energy_per_delivered_bit < uncoded.energy_per_delivered_bit,
            "coded {} vs uncoded {}",
            coded.energy_per_delivered_bit,
            uncoded.energy_per_delivered_bit
        );
        assert!(coded.delivery_probability > uncoded.delivery_probability);
    }

    #[test]
    fn hamming_sits_between() {
        let mid = 3e-3;
        let none = FecScheme::None.residual_ber(mid);
        let ham = FecScheme::Hamming74.residual_ber(mid);
        let rep = FecScheme::Repetition3.residual_ber(mid);
        assert!(ham < none);
        assert!(rep < none);
        // Hamming's overhead is far lighter than repetition's.
        assert!(FecScheme::Hamming74.overhead() < FecScheme::Repetition3.overhead());
    }

    #[test]
    fn more_retries_raise_delivery_and_cost() {
        let pkt = Packet::sensor_report();
        let d = Length::from_meters(20.0);
        let ber = 5e-3;
        let few = analyze_reliability(
            &pkt,
            FecScheme::None,
            StopAndWaitArq::new(1),
            ber,
            d,
            &radio(),
        );
        let many = analyze_reliability(
            &pkt,
            FecScheme::None,
            StopAndWaitArq::new(8),
            ber,
            d,
            &radio(),
        );
        assert!(many.delivery_probability > few.delivery_probability);
        assert!(many.expected_transmissions > few.expected_transmissions);
    }

    #[test]
    #[should_panic(expected = "at least one transmission")]
    fn zero_budget_rejected() {
        let _ = StopAndWaitArq::new(0);
    }
}
