//! Modulation schemes and bit-error-rate models.
//!
//! BER curves use the standard AWGN closed forms via the Q-function;
//! the Q-function is computed from a high-accuracy `erfc` rational
//! approximation (Abramowitz–Stegun 7.1.26 refined), adequate to well
//! below the 1e-12 BER floor any link budget cares about.

use serde::{Deserialize, Serialize};

/// Complementary error function via the A&S 7.1.26 polynomial with
/// symmetric extension; absolute error below 1.5e-7.
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-x_abs * x_abs).exp();
    if sign_negative {
        2.0 - e
    } else {
        e
    }
}

/// The Gaussian tail function `Q(x) = ½·erfc(x/√2)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Modulations of the 2003 short-range radio era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// On-off keying (non-coherent): the simplest µW-node transmitter.
    Ook,
    /// Binary FSK (non-coherent detection).
    Fsk,
    /// BPSK (coherent).
    Bpsk,
    /// QPSK (coherent, 2 bit/symbol).
    Qpsk,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> f64 {
        match self {
            Modulation::Ook | Modulation::Fsk | Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 2.0,
        }
    }

    /// Bit error rate at the given linear `Eb/N0`.
    ///
    /// # Panics
    ///
    /// Panics if `ebn0` is negative.
    pub fn bit_error_rate(self, ebn0: f64) -> f64 {
        assert!(ebn0 >= 0.0, "Eb/N0 must be non-negative");
        match self {
            // Non-coherent OOK/FSK: ½·exp(−Eb/2N0).
            Modulation::Ook | Modulation::Fsk => 0.5 * (-ebn0 / 2.0).exp(),
            // Coherent BPSK/QPSK: Q(√(2·Eb/N0)).
            Modulation::Bpsk | Modulation::Qpsk => q_function((2.0 * ebn0).sqrt()),
        }
    }

    /// The linear `Eb/N0` required to hit a target BER, by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `target_ber` is outside `(0, 0.5)`.
    pub fn required_ebn0(self, target_ber: f64) -> f64 {
        assert!(
            target_ber > 0.0 && target_ber < 0.5,
            "target BER must lie in (0, 0.5)"
        );
        let (mut lo, mut hi) = (0.0f64, 200.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.bit_error_rate(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Same as [`Self::required_ebn0`] but in dB.
    pub fn required_ebn0_db(self, target_ber: f64) -> f64 {
        10.0 * self.required_ebn0(target_ber).log10()
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Modulation::Ook => "OOK",
            Modulation::Fsk => "FSK",
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_73).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_function_is_half_at_zero() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!(q_function(5.0) < 3e-7);
    }

    #[test]
    fn bpsk_reference_ber() {
        // Eb/N0 = 9.6 dB gives BER ≈ 1e-5 for BPSK (textbook anchor).
        let ebn0 = 10f64.powf(9.6 / 10.0);
        let ber = Modulation::Bpsk.bit_error_rate(ebn0);
        assert!((5e-6..2e-5).contains(&ber), "BPSK at 9.6 dB: {ber:e}");
    }

    #[test]
    fn coherent_beats_non_coherent() {
        let ebn0 = 10f64.powf(10.0 / 10.0);
        assert!(Modulation::Bpsk.bit_error_rate(ebn0) < Modulation::Fsk.bit_error_rate(ebn0));
    }

    #[test]
    fn ber_monotone_decreasing_in_snr() {
        for m in [Modulation::Ook, Modulation::Bpsk, Modulation::Qpsk] {
            let mut last = 1.0;
            for db in 0..15 {
                let ber = m.bit_error_rate(10f64.powf(f64::from(db) / 10.0));
                assert!(ber <= last, "{m} BER must fall with SNR");
                last = ber;
            }
        }
    }

    #[test]
    fn required_ebn0_inverts_ber() {
        for m in [Modulation::Fsk, Modulation::Bpsk] {
            let target = 1e-4;
            let ebn0 = m.required_ebn0(target);
            let achieved = m.bit_error_rate(ebn0);
            assert!(
                achieved <= target * 1.01,
                "{m}: {achieved:e} vs target {target:e}"
            );
        }
    }

    #[test]
    fn qpsk_doubles_throughput() {
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2.0);
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1.0);
    }

    #[test]
    #[should_panic(expected = "target BER")]
    fn silly_ber_target_rejected() {
        let _ = Modulation::Bpsk.required_ebn0(0.6);
    }
}
