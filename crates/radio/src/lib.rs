//! Wireless-link models: the communication leg of the power–information
//! graph.
//!
//! The keynote's ambient functions are realized by *networks* of µW/mW/W
//! nodes, so the energy cost of moving a bit through the air is as central
//! as the cost of computing on it. This crate models that cost bottom-up:
//!
//! * [`pathloss`] — log-distance propagation and the dBm/watt bridge;
//! * [`modulation`] — BER versus Eb/N0 for the era's modulations;
//! * [`LinkBudget`] — closing a link: range, required transmit power;
//! * [`RadioEnergyModel`] — the first-order energy-per-bit model
//!   (`E_tx = e_elec + e_amp·dⁿ`, `E_rx = e_elec`) used throughout the
//!   sensor-network literature;
//! * [`Packet`] — framing overheads and airtime;
//! * [`mac`] — duty-cycled medium-access protocols (TDMA, CSMA,
//!   preamble sampling) with analytic average-power/latency models (T3).
//!
//! # Example
//!
//! ```
//! use ami_radio::{Packet, RadioEnergyModel};
//! use ami_units::{DataRate, Length};
//!
//! let radio = RadioEnergyModel::short_range_2003();
//! let pkt = Packet::sensor_report();
//! let e = radio.transmit_energy(pkt.total_bits(), Length::from_meters(10.0));
//! assert!(e.as_microjoules() < 50.0); // a 10 m sensor report is tens of µJ
//! ```

pub mod contention;
pub mod energy_model;
pub mod link;
pub mod mac;
pub mod modulation;
pub mod packet;
pub mod pathloss;
pub mod reliability;

pub use contention::{
    collision_probability, pure_aloha_throughput, slotted_aloha_throughput, SharedChannel,
};
pub use energy_model::RadioEnergyModel;
pub use link::LinkBudget;
pub use mac::{
    CsmaMac, MacAnalysis, MacProtocol, PreambleSamplingMac, RadioPowerStates, TdmaMac, TrafficLoad,
};
pub use modulation::Modulation;
pub use packet::Packet;
pub use pathloss::PathLossModel;
pub use reliability::{analyze_reliability, FecScheme, ReliabilityReport, StopAndWaitArq};
