//! Packet framing: payloads, overheads, airtime.

use ami_units::{DataRate, DataVolume, TimeSpan};
use serde::{Deserialize, Serialize};

/// A framed packet: preamble + header + payload + CRC.
///
/// # Example
///
/// ```
/// use ami_radio::Packet;
/// use ami_units::DataRate;
///
/// let pkt = Packet::sensor_report();
/// let t = pkt.airtime(DataRate::from_kilobits_per_second(50.0));
/// assert!(t.as_millis() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    preamble_bits: f64,
    header_bits: f64,
    payload_bits: f64,
    crc_bits: f64,
}

impl Packet {
    /// Creates a packet with explicit field sizes in bits.
    ///
    /// # Panics
    ///
    /// Panics if any field is negative or the payload is zero.
    pub fn new(preamble_bits: f64, header_bits: f64, payload_bits: f64, crc_bits: f64) -> Self {
        for v in [preamble_bits, header_bits, payload_bits, crc_bits] {
            assert!(
                v.is_finite() && v >= 0.0,
                "field sizes must be non-negative"
            );
        }
        assert!(payload_bits > 0.0, "payload must be non-empty");
        Self {
            preamble_bits,
            header_bits,
            payload_bits,
            crc_bits,
        }
    }

    /// A µW-node sensor report: 32-bit preamble, 64-bit header,
    /// 16-byte payload, 16-bit CRC.
    pub fn sensor_report() -> Self {
        Self::new(32.0, 64.0, 128.0, 16.0)
    }

    /// An audio frame of a personal-node stream: 24 ms at 192 kbit/s.
    pub fn audio_frame() -> Self {
        Self::new(32.0, 64.0, 192_000.0 * 0.024, 32.0)
    }

    /// A packet with the standard framing and a custom payload.
    pub fn with_payload(payload: DataVolume) -> Self {
        Self::new(32.0, 64.0, payload.as_bits(), 16.0)
    }

    /// Payload size.
    pub fn payload(&self) -> DataVolume {
        DataVolume::from_bits(self.payload_bits)
    }

    /// Total on-air size including all framing.
    pub fn total_bits(&self) -> DataVolume {
        DataVolume::from_bits(
            self.preamble_bits + self.header_bits + self.payload_bits + self.crc_bits,
        )
    }

    /// Framing overhead fraction (non-payload bits over total).
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.payload_bits / self.total_bits().as_bits()
    }

    /// On-air duration at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn airtime(&self, rate: DataRate) -> TimeSpan {
        rate.time_to_transfer(self.total_bits())
    }

    /// Probability the whole packet survives a channel with bit error
    /// rate `ber` (independent errors, no coding).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`.
    pub fn delivery_probability(&self, ber: f64) -> f64 {
        assert!((0.0..=1.0).contains(&ber), "BER must lie in [0, 1]");
        (1.0 - ber).powf(self.total_bits().as_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_report_sizes() {
        let p = Packet::sensor_report();
        assert_eq!(p.total_bits().as_bits(), 240.0);
        assert_eq!(p.payload().as_bytes(), 16.0);
        assert!((p.overhead_fraction() - 112.0 / 240.0).abs() < 1e-12);
    }

    #[test]
    fn airtime_scales_inversely_with_rate() {
        let p = Packet::sensor_report();
        let slow = p.airtime(DataRate::from_kilobits_per_second(10.0));
        let fast = p.airtime(DataRate::from_kilobits_per_second(100.0));
        assert!((slow.as_seconds() / fast.as_seconds() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn delivery_probability_shrinks_with_size_and_ber() {
        let small = Packet::sensor_report();
        let large = Packet::with_payload(DataVolume::from_bytes(1000.0));
        assert!(small.delivery_probability(1e-4) > large.delivery_probability(1e-4));
        assert!(small.delivery_probability(1e-3) < small.delivery_probability(1e-5));
        assert_eq!(small.delivery_probability(0.0), 1.0);
    }

    #[test]
    fn audio_frame_payload() {
        let p = Packet::audio_frame();
        assert!((p.payload().as_bits() - 4608.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn empty_payload_rejected() {
        let _ = Packet::new(32.0, 64.0, 0.0, 16.0);
    }
}
