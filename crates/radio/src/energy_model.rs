//! The first-order radio energy model of the sensor-network literature.
//!
//! `E_tx(k bits, d) = e_elec·k + e_amp·k·dⁿ`, `E_rx(k) = e_elec·k`:
//! electronics cost per bit plus a distance-dependent amplifier term. The
//! constants follow the oft-cited 2000–2003 calibration (Heinzelman et al.):
//! 50 nJ/bit electronics, 100 pJ/bit/m² amplifier at n = 2.

use ami_units::{DataVolume, Energy, EnergyPerBit, Length};
use serde::{Deserialize, Serialize};

/// First-order transceiver energy model.
///
/// # Example
///
/// ```
/// use ami_radio::RadioEnergyModel;
/// use ami_units::{DataVolume, Length};
///
/// let r = RadioEnergyModel::short_range_2003();
/// let bits = DataVolume::from_bytes(100.0);
/// let tx = r.transmit_energy(bits, Length::from_meters(20.0));
/// let rx = r.receive_energy(bits);
/// assert!(tx > rx); // transmitting always costs at least the electronics
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioEnergyModel {
    electronics: EnergyPerBit,
    /// Amplifier coefficient in J/bit/mⁿ.
    amplifier: f64,
    /// Path-loss exponent the amplifier must overcome.
    exponent: f64,
}

impl RadioEnergyModel {
    /// Creates a model from explicit coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `amplifier` is negative or `exponent` outside `[1.5, 6]`.
    pub fn new(electronics: EnergyPerBit, amplifier: f64, exponent: f64) -> Self {
        assert!(
            amplifier >= 0.0 && amplifier.is_finite(),
            "amplifier coefficient must be non-negative"
        );
        assert!(
            (1.5..=6.0).contains(&exponent),
            "exponent must lie in [1.5, 6]"
        );
        Self {
            electronics,
            amplifier,
            exponent,
        }
    }

    /// The canonical 2003 short-range calibration: 50 nJ/bit electronics,
    /// 100 pJ/bit/m² amplifier, free-space exponent 2.
    pub fn short_range_2003() -> Self {
        Self::new(EnergyPerBit::from_nanojoules_per_bit(50.0), 100e-12, 2.0)
    }

    /// A multipath-environment variant: 50 nJ/bit, 1.3 pJ/bit/m⁴ at n = 4
    /// (the standard two-regime companion calibration).
    pub fn multipath_2003() -> Self {
        Self::new(EnergyPerBit::from_nanojoules_per_bit(50.0), 1.3e-15, 4.0)
    }

    /// Electronics energy per bit (both directions).
    pub fn electronics(&self) -> EnergyPerBit {
        self.electronics
    }

    /// Energy to transmit `volume` over distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative.
    pub fn transmit_energy(&self, volume: DataVolume, d: Length) -> Energy {
        assert!(!d.is_negative(), "distance must be non-negative");
        let k = volume.as_bits();
        let amp = self.amplifier * k * d.as_meters().powf(self.exponent);
        self.electronics * volume + Energy::new(amp)
    }

    /// Energy to receive `volume`.
    pub fn receive_energy(&self, volume: DataVolume) -> Energy {
        self.electronics * volume
    }

    /// Effective energy per bit of a one-hop transfer over `d`
    /// (transmit plus receive).
    pub fn hop_energy_per_bit(&self, d: Length) -> EnergyPerBit {
        let one = DataVolume::from_bits(1.0);
        EnergyPerBit::new((self.transmit_energy(one, d) + self.receive_energy(one)).as_joules())
    }

    /// The distance beyond which relaying through one midpoint hop costs
    /// less energy than transmitting directly: the multi-hop crossover
    /// `d* = (2·e_elec / (e_amp·(1 − 2^{1−n})))^{1/n}` — F6's key scale.
    pub fn multihop_crossover(&self) -> Length {
        let e_elec = self.electronics.as_joules_per_bit();
        let denom = self.amplifier * (1.0 - 2f64.powf(1.0 - self.exponent));
        Length::from_meters((2.0 * e_elec / denom).powf(1.0 / self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_costs_only_electronics() {
        let r = RadioEnergyModel::short_range_2003();
        let bits = DataVolume::from_bits(1000.0);
        let tx = r.transmit_energy(bits, Length::ZERO);
        assert!((tx.as_microjoules() - 50.0).abs() < 1e-9);
        assert_eq!(tx, r.receive_energy(bits));
    }

    #[test]
    fn amplifier_grows_with_square_of_distance() {
        let r = RadioEnergyModel::short_range_2003();
        let bits = DataVolume::from_bits(1.0);
        let e10 = r.transmit_energy(bits, Length::from_meters(10.0));
        let e20 = r.transmit_energy(bits, Length::from_meters(20.0));
        let amp10 = e10.as_joules() - 50e-9;
        let amp20 = e20.as_joules() - 50e-9;
        assert!((amp20 / amp10 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn crossover_distance_formula() {
        // n=2: d* = sqrt(2·e_elec/(e_amp·(1−1/2))) = sqrt(4·e_elec/e_amp)
        //     = sqrt(4·50e-9/100e-12) ≈ 44.7 m.
        let r = RadioEnergyModel::short_range_2003();
        let d = r.multihop_crossover();
        assert!((d.as_meters() - 44.72).abs() < 0.05);
    }

    #[test]
    fn relaying_beats_direct_beyond_crossover() {
        let r = RadioEnergyModel::short_range_2003();
        let bits = DataVolume::from_bytes(50.0);
        let d = r.multihop_crossover();
        let beyond = Length::from_meters(d.as_meters() * 1.5);
        let direct = r.transmit_energy(bits, beyond);
        let half = Length::from_meters(beyond.as_meters() / 2.0);
        let relayed =
            r.transmit_energy(bits, half) + r.receive_energy(bits) + r.transmit_energy(bits, half);
        assert!(relayed < direct);

        // And direct wins inside the crossover.
        let inside = Length::from_meters(d.as_meters() * 0.5);
        let direct_in = r.transmit_energy(bits, inside);
        let half_in = Length::from_meters(inside.as_meters() / 2.0);
        let relayed_in = r.transmit_energy(bits, half_in)
            + r.receive_energy(bits)
            + r.transmit_energy(bits, half_in);
        assert!(direct_in < relayed_in);
    }

    #[test]
    fn hop_energy_per_bit_matches_components() {
        let r = RadioEnergyModel::short_range_2003();
        let d = Length::from_meters(30.0);
        let per_bit = r.hop_energy_per_bit(d);
        // 50n (tx elec) + 100p·900 (amp) + 50n (rx elec) = 190 nJ/bit.
        assert!((per_bit.as_nanojoules_per_bit() - 190.0).abs() < 1e-6);
    }

    #[test]
    fn multipath_model_is_harsher_at_long_range() {
        // The n=2 and n=4 calibrations cross near 277 m
        // (100 pJ·d² = 1.3 fJ·d⁴ → d ≈ 277 m).
        let fs = RadioEnergyModel::short_range_2003();
        let mp = RadioEnergyModel::multipath_2003();
        let bits = DataVolume::from_bits(1.0);
        let far = Length::from_meters(500.0);
        assert!(mp.transmit_energy(bits, far) > fs.transmit_energy(bits, far));
        let near = Length::from_meters(100.0);
        assert!(mp.transmit_energy(bits, near) < fs.transmit_energy(bits, near));
    }
}
