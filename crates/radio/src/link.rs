//! Link-budget closure: can this link carry that rate at this range?

use crate::modulation::Modulation;
use crate::pathloss::{dbm_to_watts, watts_to_dbm, PathLossModel};
use ami_units::{DataRate, Length, Power};
use serde::{Deserialize, Serialize};

/// Boltzmann constant in J/K.
const K_B: f64 = 1.380_649e-23;

/// A complete link budget: transmitter, channel, receiver.
///
/// # Example
///
/// ```
/// use ami_radio::{LinkBudget, Modulation, PathLossModel};
/// use ami_units::{DataRate, Frequency, Length, Power};
///
/// let link = LinkBudget::new(
///     PathLossModel::indoor(Frequency::from_megahertz(868.0)),
///     Modulation::Fsk,
///     10.0,  // receiver noise figure, dB
///     1e-4,  // target BER
/// );
/// let range = link.max_range(Power::from_milliwatts(1.0),
///                            DataRate::from_kilobits_per_second(50.0));
/// assert!(range.as_meters() > 30.0); // 0 dBm closes tens of metres indoors
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    channel: PathLossModel,
    modulation: Modulation,
    noise_figure_db: f64,
    target_ber: f64,
}

impl LinkBudget {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if `noise_figure_db` is negative or `target_ber` outside
    /// `(0, 0.5)`.
    pub fn new(
        channel: PathLossModel,
        modulation: Modulation,
        noise_figure_db: f64,
        target_ber: f64,
    ) -> Self {
        assert!(noise_figure_db >= 0.0, "noise figure must be non-negative");
        assert!(
            target_ber > 0.0 && target_ber < 0.5,
            "target BER must lie in (0, 0.5)"
        );
        Self {
            channel,
            modulation,
            noise_figure_db,
            target_ber,
        }
    }

    /// The propagation model.
    pub fn channel(&self) -> &PathLossModel {
        &self.channel
    }

    /// The modulation.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Receiver sensitivity for `rate`: the minimum received power that
    /// meets the BER target. `P_min = kT·NF·(Eb/N0)·R` at 300 K.
    pub fn sensitivity(&self, rate: DataRate) -> Power {
        let ebn0 = self.modulation.required_ebn0(self.target_ber);
        let nf = 10f64.powf(self.noise_figure_db / 10.0);
        Power::new(K_B * 300.0 * nf * ebn0 * rate.as_bits_per_second())
    }

    /// Link margin in dB for a given transmit power, distance and rate
    /// (negative means the link does not close).
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not positive.
    pub fn margin_db(&self, tx: Power, d: Length, rate: DataRate) -> f64 {
        let rx = self.channel.received_power(tx, d);
        watts_to_dbm(rx) - watts_to_dbm(self.sensitivity(rate))
    }

    /// `true` when the link closes with non-negative margin.
    pub fn closes(&self, tx: Power, d: Length, rate: DataRate) -> bool {
        self.margin_db(tx, d, rate) >= 0.0
    }

    /// Maximum range at which the link still closes.
    pub fn max_range(&self, tx: Power, rate: DataRate) -> Length {
        let budget_db = watts_to_dbm(tx) - watts_to_dbm(self.sensitivity(rate));
        self.channel.range_for_loss(budget_db)
    }

    /// Minimum transmit power to close the link at distance `d` and `rate`.
    pub fn required_tx_power(&self, d: Length, rate: DataRate) -> Power {
        let needed_dbm = watts_to_dbm(self.sensitivity(rate)) + self.channel.path_loss_db(d);
        dbm_to_watts(needed_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ami_units::Frequency;

    fn link() -> LinkBudget {
        LinkBudget::new(
            PathLossModel::indoor(Frequency::from_megahertz(868.0)),
            Modulation::Fsk,
            10.0,
            1e-4,
        )
    }

    #[test]
    fn sensitivity_scales_with_rate() {
        let l = link();
        let slow = l.sensitivity(DataRate::from_kilobits_per_second(10.0));
        let fast = l.sensitivity(DataRate::from_megabits_per_second(1.0));
        assert!((fast.as_watts() / slow.as_watts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_is_realistic_dbm() {
        // 50 kbit/s FSK with 10 dB NF: −100-ish dBm, the 2003 datasheet range.
        let s = link().sensitivity(DataRate::from_kilobits_per_second(50.0));
        let dbm = watts_to_dbm(s);
        assert!((-115.0..=-90.0).contains(&dbm), "sensitivity {dbm:.1} dBm");
    }

    #[test]
    fn margin_decreases_with_distance_and_range_inverts() {
        let l = link();
        let tx = Power::from_milliwatts(1.0);
        let rate = DataRate::from_kilobits_per_second(50.0);
        let m5 = l.margin_db(tx, Length::from_meters(5.0), rate);
        let m50 = l.margin_db(tx, Length::from_meters(50.0), rate);
        assert!(m5 > m50);
        let range = l.max_range(tx, rate);
        let margin_at_range = l.margin_db(tx, range, rate);
        assert!(margin_at_range.abs() < 0.01, "margin at max range ≈ 0");
    }

    #[test]
    fn required_power_closes_exactly() {
        let l = link();
        let d = Length::from_meters(25.0);
        let rate = DataRate::from_kilobits_per_second(50.0);
        let tx = l.required_tx_power(d, rate);
        assert!(l.margin_db(tx, d, rate).abs() < 0.01);
        assert!(l.closes(tx * 1.01, d, rate));
        assert!(!l.closes(tx * 0.97, d, rate));
    }

    #[test]
    fn better_modulation_extends_range() {
        let fsk = link();
        let bpsk = LinkBudget::new(
            PathLossModel::indoor(Frequency::from_megahertz(868.0)),
            Modulation::Bpsk,
            10.0,
            1e-4,
        );
        let tx = Power::from_milliwatts(1.0);
        let rate = DataRate::from_kilobits_per_second(50.0);
        assert!(bpsk.max_range(tx, rate) > fsk.max_range(tx, rate));
    }
}
