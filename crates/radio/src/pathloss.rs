//! Log-distance path-loss propagation and dBm conversions.

use ami_units::{Frequency, Length, Power};
use serde::{Deserialize, Serialize};

/// Speed of light in metres per second.
const C: f64 = 299_792_458.0;

/// Converts a power to dBm.
///
/// # Panics
///
/// Panics if `p` is zero or negative (log of a non-positive value).
pub fn watts_to_dbm(p: Power) -> f64 {
    assert!(p > Power::ZERO, "dBm conversion requires a positive power");
    10.0 * (p.as_milliwatts()).log10()
}

/// Converts a dBm level to power.
pub fn dbm_to_watts(dbm: f64) -> Power {
    Power::from_milliwatts(10f64.powf(dbm / 10.0))
}

/// Log-distance path loss: `PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀)` with the
/// 1 m free-space reference intercept.
///
/// # Example
///
/// ```
/// use ami_radio::PathLossModel;
/// use ami_units::{Frequency, Length};
///
/// let indoor = PathLossModel::indoor(Frequency::from_megahertz(868.0));
/// let pl10 = indoor.path_loss_db(Length::from_meters(10.0));
/// // 868 MHz free-space intercept ≈31 dB; +30 dB per decade at n=3.
/// assert!((pl10 - 61.2).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    carrier: Frequency,
    exponent: f64,
}

impl PathLossModel {
    /// Creates a model with carrier frequency and path-loss exponent `n`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is outside the physical `[1.5, 6]` window or
    /// the carrier is not positive.
    pub fn new(carrier: Frequency, exponent: f64) -> Self {
        assert!(
            (1.5..=6.0).contains(&exponent),
            "path-loss exponent must lie in [1.5, 6]"
        );
        assert!(
            carrier.as_hertz() > 0.0,
            "carrier frequency must be positive"
        );
        Self { carrier, exponent }
    }

    /// Free space: `n = 2`.
    pub fn free_space(carrier: Frequency) -> Self {
        Self::new(carrier, 2.0)
    }

    /// Indoor non-line-of-sight: `n = 3`.
    pub fn indoor(carrier: Frequency) -> Self {
        Self::new(carrier, 3.0)
    }

    /// Cluttered indoor/obstructed: `n = 4`.
    pub fn obstructed(carrier: Frequency) -> Self {
        Self::new(carrier, 4.0)
    }

    /// Carrier frequency.
    pub fn carrier(&self) -> Frequency {
        self.carrier
    }

    /// Path-loss exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Free-space loss at the 1 m reference distance, in dB:
    /// `20·log₁₀(4πd₀f/c)`.
    pub fn reference_loss_db(&self) -> f64 {
        20.0 * (4.0 * std::f64::consts::PI * self.carrier.as_hertz() / C).log10()
    }

    /// Path loss at distance `d`, in dB.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not positive.
    pub fn path_loss_db(&self, d: Length) -> f64 {
        assert!(d.as_meters() > 0.0, "distance must be positive");
        self.reference_loss_db() + 10.0 * self.exponent * d.as_meters().log10()
    }

    /// Received power given transmit power `tx` at distance `d`
    /// (isotropic antennas).
    pub fn received_power(&self, tx: Power, d: Length) -> Power {
        let rx_dbm = watts_to_dbm(tx) - self.path_loss_db(d);
        dbm_to_watts(rx_dbm)
    }

    /// The distance at which the loss reaches `loss_db` (inverse of
    /// [`Self::path_loss_db`]).
    pub fn range_for_loss(&self, loss_db: f64) -> Length {
        let exp = (loss_db - self.reference_loss_db()) / (10.0 * self.exponent);
        Length::from_meters(10f64.powf(exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for dbm in [-90.0, -30.0, 0.0, 20.0] {
            let p = dbm_to_watts(dbm);
            assert!((watts_to_dbm(p) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_watts(0.0).as_milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn free_space_matches_friis_at_2_4ghz() {
        // Friis at 2.4 GHz, 1 m: ≈40.05 dB.
        let m = PathLossModel::free_space(Frequency::from_gigahertz(2.4));
        assert!((m.reference_loss_db() - 40.05).abs() < 0.1);
        // +20 dB per decade at n=2.
        let d10 = m.path_loss_db(Length::from_meters(10.0));
        assert!((d10 - m.reference_loss_db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn higher_exponent_loses_more() {
        let f = Frequency::from_megahertz(868.0);
        let d = Length::from_meters(20.0);
        let fs = PathLossModel::free_space(f).path_loss_db(d);
        let indoor = PathLossModel::indoor(f).path_loss_db(d);
        let obs = PathLossModel::obstructed(f).path_loss_db(d);
        assert!(fs < indoor && indoor < obs);
    }

    #[test]
    fn received_power_decays_with_distance() {
        let m = PathLossModel::indoor(Frequency::from_megahertz(868.0));
        let tx = dbm_to_watts(0.0);
        let near = m.received_power(tx, Length::from_meters(1.0));
        let far = m.received_power(tx, Length::from_meters(100.0));
        assert!(near > far);
        // n=3: 100 m costs 60 dB more than 1 m.
        let ratio_db = 10.0 * (near.as_watts() / far.as_watts()).log10();
        assert!((ratio_db - 60.0).abs() < 1e-9);
    }

    #[test]
    fn range_inverts_loss() {
        let m = PathLossModel::indoor(Frequency::from_megahertz(868.0));
        let d = Length::from_meters(42.0);
        let loss = m.path_loss_db(d);
        let back = m.range_for_loss(loss);
        assert!((back.as_meters() - 42.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive power")]
    fn zero_power_dbm_panics() {
        let _ = watts_to_dbm(Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn absurd_exponent_rejected() {
        let _ = PathLossModel::new(Frequency::from_megahertz(868.0), 8.0);
    }
}
