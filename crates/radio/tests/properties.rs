//! Property-based tests for the radio models.

use ami_radio::pathloss::{dbm_to_watts, watts_to_dbm};
use ami_radio::{
    analyze_reliability, pure_aloha_throughput, slotted_aloha_throughput, FecScheme, LinkBudget,
    Modulation, Packet, PathLossModel, RadioEnergyModel, SharedChannel, StopAndWaitArq,
};
use ami_units::{DataRate, DataVolume, Frequency, Length, Power, TimeSpan};
use proptest::prelude::*;

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Ook),
        Just(Modulation::Fsk),
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
    ]
}

proptest! {
    /// dBm conversion is a bijection over practical power levels.
    #[test]
    fn dbm_round_trip(dbm in -120.0..40.0f64) {
        let p = dbm_to_watts(dbm);
        prop_assert!((watts_to_dbm(p) - dbm).abs() < 1e-9);
    }

    /// Path loss is monotone in distance and in the exponent.
    #[test]
    fn path_loss_monotone(d1 in 1.0..1000.0f64, d2 in 1.0..1000.0f64, n in 2.0..4.0f64) {
        let f = Frequency::from_megahertz(868.0);
        let model = PathLossModel::new(f, n);
        let l1 = model.path_loss_db(Length::from_meters(d1));
        let l2 = model.path_loss_db(Length::from_meters(d2));
        prop_assert_eq!(d1 < d2, l1 < l2);
        if d1 > 1.0 {
            let harsher = PathLossModel::new(f, (n + 0.5).min(6.0));
            prop_assert!(harsher.path_loss_db(Length::from_meters(d1)) >= l1);
        }
    }

    /// range_for_loss inverts path_loss_db.
    #[test]
    fn range_inverts_loss(d in 1.0..500.0f64, n in 2.0..4.0f64) {
        let model = PathLossModel::new(Frequency::from_megahertz(868.0), n);
        let loss = model.path_loss_db(Length::from_meters(d));
        let back = model.range_for_loss(loss);
        prop_assert!((back.as_meters() - d).abs() < 1e-6 * d);
    }

    /// BER is monotone non-increasing in Eb/N0 for every modulation.
    #[test]
    fn ber_monotone(m in any_modulation(), a in 0.0..50.0f64, b in 0.0..50.0f64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(m.bit_error_rate(hi) <= m.bit_error_rate(lo) + 1e-15);
    }

    /// required_ebn0 meets its BER target for every modulation.
    #[test]
    fn required_ebn0_meets_target(m in any_modulation(), exp in 1.0..9.0f64) {
        let target = 10f64.powf(-exp);
        let ebn0 = m.required_ebn0(target);
        prop_assert!(m.bit_error_rate(ebn0) <= target * 1.01);
    }

    /// Transmit energy decomposes into electronics + amplifier and both
    /// terms are monotone in their drivers.
    #[test]
    fn tx_energy_monotone(bits in 1.0..1e6f64, d1 in 0.0..300.0f64, d2 in 0.0..300.0f64) {
        let radio = RadioEnergyModel::short_range_2003();
        let v = DataVolume::from_bits(bits);
        let e1 = radio.transmit_energy(v, Length::from_meters(d1));
        let e2 = radio.transmit_energy(v, Length::from_meters(d2));
        prop_assert_eq!(d1 <= d2, e1 <= e2);
        prop_assert!(e1 >= radio.receive_energy(v));
    }

    /// A link closed with the minimum required power has ~zero margin,
    /// and more power only helps.
    #[test]
    fn required_power_closes_link(d in 2.0..200.0f64, kbps in 1.0..250.0f64) {
        let link = LinkBudget::new(
            PathLossModel::indoor(Frequency::from_megahertz(868.0)),
            Modulation::Fsk,
            10.0,
            1e-4,
        );
        let rate = DataRate::from_kilobits_per_second(kbps);
        let tx = link.required_tx_power(Length::from_meters(d), rate);
        prop_assert!(link.margin_db(tx, Length::from_meters(d), rate).abs() < 0.01);
        prop_assert!(link.closes(tx * 2.0, Length::from_meters(d), rate));
    }

    /// Packet delivery probability is in [0,1], decreasing in BER and in
    /// payload size.
    #[test]
    fn delivery_probability_sane(payload in 1.0..1e5f64, ber in 0.0..0.01f64) {
        let p = Packet::with_payload(DataVolume::from_bits(payload));
        let prob = p.delivery_probability(ber);
        prop_assert!((0.0..=1.0).contains(&prob));
        let bigger = Packet::with_payload(DataVolume::from_bits(payload * 2.0));
        prop_assert!(bigger.delivery_probability(ber) <= prob);
        prop_assert!(p.delivery_probability(ber / 2.0) >= prob);
    }

    /// Airtime scales linearly with total size and inversely with rate.
    #[test]
    fn airtime_scaling(payload in 8.0..1e5f64, kbps in 1.0..1000.0f64) {
        let p = Packet::with_payload(DataVolume::from_bits(payload));
        let r = DataRate::from_kilobits_per_second(kbps);
        let t = p.airtime(r);
        prop_assert!((t.as_seconds() * r.as_bits_per_second()
            - p.total_bits().as_bits()).abs() < 1e-6);
    }

    /// Received power never exceeds transmitted power (passive channel).
    #[test]
    fn channel_is_passive(dbm in -10.0..30.0f64, d in 1.0..500.0f64) {
        let model = PathLossModel::free_space(Frequency::from_gigahertz(2.4));
        let tx = dbm_to_watts(dbm);
        let rx = model.received_power(tx, Length::from_meters(d));
        prop_assert!(rx <= tx);
        prop_assert!(rx > Power::ZERO);
    }

    /// ARQ: delivery probability is monotone in the budget and expected
    /// transmissions lie in [1, N].
    #[test]
    fn arq_bounds(p in 0.001..1.0f64, n in 1u32..20) {
        let arq = StopAndWaitArq::new(n);
        let bigger = StopAndWaitArq::new(n + 1);
        prop_assert!(bigger.delivery_probability(p) >= arq.delivery_probability(p));
        let e = arq.expected_transmissions(p);
        prop_assert!((1.0 - 1e-9..=f64::from(n) + 1e-9).contains(&e));
    }

    /// FEC: every scheme's residual BER is a valid probability, and coding
    /// helps on good channels.
    #[test]
    fn fec_residual_valid(ber in 0.0..0.5f64) {
        for scheme in FecScheme::all() {
            let r = scheme.residual_ber(ber);
            prop_assert!((0.0..=0.5).contains(&r), "{scheme}: {r}");
        }
        if ber < 1e-3 && ber > 0.0 {
            prop_assert!(FecScheme::Repetition3.residual_ber(ber) < ber);
        }
    }

    /// Reliability analysis: probabilities valid, energy positive, and
    /// more ARQ never reduces delivery.
    #[test]
    fn reliability_report_valid(exp in 2.0..5.0f64, d in 1.0..100.0f64, n in 1u32..12) {
        let ber = 10f64.powf(-exp);
        let radio = RadioEnergyModel::short_range_2003();
        let packet = Packet::sensor_report();
        let report = analyze_reliability(
            &packet, FecScheme::None, StopAndWaitArq::new(n), ber,
            Length::from_meters(d), &radio,
        );
        prop_assert!((0.0..=1.0).contains(&report.delivery_probability));
        prop_assert!((0.0..=1.0).contains(&report.attempt_success));
        prop_assert!(report.energy_per_delivered_bit.as_joules_per_bit() > 0.0);
        let more = analyze_reliability(
            &packet, FecScheme::None, StopAndWaitArq::new(n + 1), ber,
            Length::from_meters(d), &radio,
        );
        prop_assert!(more.delivery_probability >= report.delivery_probability - 1e-12);
    }

    /// ALOHA throughputs are bounded by their textbook peaks everywhere.
    #[test]
    fn aloha_bounded(g in 0.0..20.0f64) {
        prop_assert!(slotted_aloha_throughput(g) <= 1.0 / std::f64::consts::E + 1e-12);
        prop_assert!(pure_aloha_throughput(g) <= 0.5 / std::f64::consts::E + 1e-12);
        prop_assert!(slotted_aloha_throughput(g) >= pure_aloha_throughput(g) - 1e-12);
    }

    /// Channel density: delivered fraction is a probability, monotone
    /// decreasing in node count.
    #[test]
    fn channel_density_monotone(nodes in 1.0..1e5f64, secs in 1.0..600.0f64) {
        let ch = SharedChannel::sensor_default();
        let interval = TimeSpan::from_seconds(secs);
        let f1 = ch.delivered_fraction(nodes, interval);
        let f2 = ch.delivered_fraction(nodes * 2.0, interval);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!(f2 <= f1);
    }
}
