//! Proof that the kernel hot paths are allocation-free at steady state:
//! a counting global allocator watches event-queue churn, interned-id
//! meter transitions, and summary-only trace recording. (This binary
//! holds exactly one test so no concurrent test pollutes the counter.)

use ami_sim::{EnergyMeter, EventQueue, TraceSeries};
use ami_units::{Power, TimeSpan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Counting is scoped to the measuring thread, so the libtest
    // harness's own background threads cannot leak allocations into a
    // measurement. Const-initialized, so reading it never allocates.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(work: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    work();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn kernel_hot_paths_allocate_nothing_at_steady_state() {
    // --- Event queue: pop/schedule churn recycles slab slots. ---
    let mut queue: EventQueue<u64> = EventQueue::new();
    for i in 0..64u64 {
        queue.schedule_in(TimeSpan::from_seconds(i as f64), i);
    }
    // Warm: one churn pass settles heap/slab capacity at the high-water
    // mark (the population never grows past 64 below).
    for i in 0..256u64 {
        let (_, e) = queue.pop().expect("queue stays populated");
        queue.schedule_in(TimeSpan::from_seconds(64.0 + (e % 7) as f64), i);
    }
    let churn = allocations_during(|| {
        for i in 0..100_000u64 {
            let (_, e) = queue.pop().expect("queue stays populated");
            queue.schedule_in(TimeSpan::from_seconds(64.0 + (e % 7) as f64), i);
        }
    });
    assert_eq!(churn, 0, "event-queue churn allocated {churn} times");

    // --- Energy meter: pre-interned transitions are pure arithmetic. ---
    let mut meter = EnergyMeter::new("sleep", Power::from_microwatts(1.0), TimeSpan::ZERO);
    let states = [
        meter.intern("sleep"),
        meter.intern("sense"),
        meter.intern("radio tx"),
        meter.intern("radio rx"),
    ];
    let transitions = allocations_during(|| {
        for i in 1..100_000u64 {
            let id = states[(i % 4) as usize];
            meter.transition_id(
                id,
                Power::from_microwatts((i % 9) as f64),
                TimeSpan::from_seconds(i as f64),
            );
        }
    });
    assert_eq!(
        transitions, 0,
        "meter transitions allocated {transitions} times"
    );
    black_box(meter.total_energy(TimeSpan::from_seconds(100_000.0)));

    // --- Summary-only trace: record() keeps no samples. ---
    let mut trace = TraceSeries::summary_only("power");
    let recording = allocations_during(|| {
        for i in 0..100_000u64 {
            trace.record(TimeSpan::from_seconds(i as f64), (i % 13) as f64);
        }
    });
    assert_eq!(
        recording, 0,
        "summary-only trace allocated {recording} times"
    );
    assert_eq!(trace.len(), 100_000);

    // The counter itself must be live, or the zeros above are vacuous.
    let control = allocations_during(|| {
        black_box(vec![0u8; 32]);
    });
    assert!(control > 0, "the counter must actually be counting");
}
