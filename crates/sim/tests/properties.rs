//! Property-based tests for the Monte-Carlo harness and the parallel
//! runner: summary invariants and serial/parallel bit-exactness.

use ami_sim::{
    par_map_indexed_threads, replicate, replicate_par_threads, sim_rng, summarize, Summary,
};
use proptest::prelude::*;
use rand::RngExt;

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..64)
}

/// Deterministic pseudo-random permutation of `0..n` (Fisher–Yates on a
/// seeded toolkit rng), so the permutation-invariance property explores
/// many orders without a `Shuffle` strategy.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = sim_rng(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    /// The basic shape of any summary: n matches, the mean lies between
    /// the extremes, and the spread is non-negative and bounded by the
    /// range.
    #[test]
    fn summary_invariants(values in sample()) {
        let s = summarize(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.max);
        // Allow one ulp-scale slack: the running mean can round a hair
        // past an extreme for near-constant samples.
        let slack = 1e-9 * s.max.abs().max(s.min.abs()).max(1.0);
        prop_assert!(s.min - slack <= s.mean && s.mean <= s.max + slack);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.std_dev <= (s.max - s.min) + slack);
        prop_assert!(s.ci95_half_width() >= 0.0);
    }

    /// Order statistics (n, min, max) are exactly permutation-invariant;
    /// mean and standard deviation are invariant up to floating-point
    /// re-association of the fold.
    #[test]
    fn summary_is_permutation_invariant(values in sample(), seed in 0u64..1000) {
        let original = summarize(&values);
        let order = permutation(values.len(), seed);
        let shuffled: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        let permuted = summarize(&shuffled);
        prop_assert_eq!(original.n, permuted.n);
        prop_assert_eq!(original.min, permuted.min);
        prop_assert_eq!(original.max, permuted.max);
        let tol = 1e-9 * original.mean.abs().max(1.0);
        prop_assert!((original.mean - permuted.mean).abs() <= tol);
        let stol = 1e-6 * original.std_dev.max(1.0);
        prop_assert!((original.std_dev - permuted.std_dev).abs() <= stol);
    }

    /// A constant observable has zero spread regardless of replication
    /// count or seed.
    #[test]
    fn constant_observable_has_zero_spread(
        value in -1e6..1e6f64,
        replications in 1usize..40,
        base_seed in 0u64..1000,
    ) {
        let s = replicate(replications, base_seed, |_| value);
        // Summing n copies of v and dividing by n can land ulps off v,
        // which also leaks into the (v - mean)² variance fold.
        let tol = 1e-12 * value.abs().max(1.0);
        prop_assert!((s.mean - value).abs() <= tol);
        prop_assert!(s.std_dev <= tol);
        prop_assert_eq!((s.min, s.max), (value, value));
    }

    /// The tentpole contract as a property: for any replication count,
    /// base seed and worker count, the parallel path produces the
    /// bit-identical Summary — `==`, not approximately.
    #[test]
    fn replicate_par_is_bit_exact_with_replicate(
        replications in 1usize..50,
        base_seed in 0u64..u64::MAX,
        threads in 1usize..9,
    ) {
        let observable = |seed: u64| sim_rng(seed).random::<f64>();
        let serial = replicate(replications, base_seed, observable);
        let parallel = replicate_par_threads(threads, replications, base_seed, observable);
        prop_assert_eq!(serial, parallel);
    }

    /// Both paths see the exact seed schedule base, base+1, … (with
    /// wrapping), in order: an observable that recovers the replication
    /// index from its seed reproduces summarize(0..n) bit-exactly.
    #[test]
    fn seed_schedule_is_base_plus_index(
        replications in 1usize..50,
        base_seed in 0u64..u64::MAX,
        threads in 1usize..9,
    ) {
        let index_of_seed = |seed: u64| seed.wrapping_sub(base_seed) as f64;
        let expected: Vec<f64> = (0..replications).map(|k| k as f64).collect();
        let parallel = replicate_par_threads(threads, replications, base_seed, index_of_seed);
        prop_assert_eq!(parallel, summarize(&expected));
    }

    /// par_map_indexed preserves order and pairing for any input and
    /// worker count.
    #[test]
    fn par_map_preserves_order(items in prop::collection::vec(0u64..1000, 0..40),
                               threads in 1usize..9) {
        let mapped = par_map_indexed_threads(threads, &items, |idx, &item| (idx, item * 2));
        prop_assert_eq!(mapped.len(), items.len());
        for (idx, (i, doubled)) in mapped.iter().enumerate() {
            prop_assert_eq!(*i, idx);
            prop_assert_eq!(*doubled, items[idx] * 2);
        }
    }
}

/// `Summary` derives `PartialEq`, so the bit-exactness properties above
/// really compare every field — spot-check the comparison is not vacuous.
#[test]
fn summary_equality_is_field_sensitive() {
    let a = summarize(&[1.0, 2.0, 3.0]);
    let b = Summary {
        mean: f64::from_bits(a.mean.to_bits() + 1),
        ..a.clone()
    };
    assert_ne!(a, b);
    assert_eq!(a, a.clone());
}
