//! Deterministic exogenous fault injection for simulations.
//!
//! The keynote's ambient functions run on networks of unreliable,
//! scavenging devices: nodes die, reboot, lose links, harvesters brown
//! out and batteries fade. The energy-exhaustion model in `ami-net`
//! captures *endogenous* death only; this module layers **exogenous**
//! failures on top, without giving up the toolkit's determinism
//! contract:
//!
//! * a [`FaultSchedule`] is an explicit, validated event list — a pure
//!   value that two runs interpret identically;
//! * a [`FaultModel`] is a seeded stochastic generator whose
//!   [`schedule`](FaultModel::schedule) is a pure function of
//!   `(seed, nodes, rounds)`, drawn from per-node SplitMix64-decorrelated
//!   substreams — the same seed-partitioning discipline as the runner, so
//!   schedules are bit-exact at any `AMBIENCE_THREADS`;
//! * a [`FaultSpec`] is the operator surface: a compact string (set via
//!   [`FAULTS_ENV`], i.e. `AMBIENCE_FAULTS`) parsed into a model plus a
//!   seed-mixing rule, so experiment binaries can be faulted without
//!   recompiling.
//!
//! Consumers query the schedule per round ([`node_down`],
//! [`link_down`], [`harvest_scale`], [`capacity_factor`]) and attribute
//! fault-caused packet losses to the `dropped_fault` counter cause (see
//! [`crate::obs::PacketCounters`]). Round loops that would pay those
//! O(events) scans per query compile the schedule into a
//! [`FaultTimeline`] once and advance a monotone cursor instead — same
//! answers (pinned by tests), O(1) per query.
//!
//! [`node_down`]: FaultSchedule::node_down
//! [`link_down`]: FaultSchedule::link_down
//! [`harvest_scale`]: FaultSchedule::harvest_scale
//! [`capacity_factor`]: FaultSchedule::capacity_factor
//!
//! # Example
//!
//! ```
//! use ami_sim::fault::{FaultEvent, FaultSchedule};
//!
//! let schedule = FaultSchedule::new(vec![
//!     FaultEvent::NodeOutage { node: 3, from: 10, until: 20 },
//!     FaultEvent::NodeDeath { node: 5, round: 40 },
//! ]);
//! assert!(!schedule.node_down(3, 9));
//! assert!(schedule.node_down(3, 10));
//! assert!(!schedule.node_down(3, 20)); // rebooted
//! assert!(schedule.node_down(5, 40));
//! assert!(schedule.node_down(5, 10_000)); // death is permanent
//! ```

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::RngExt;

/// Environment variable experiment binaries consult for fault
/// injection: unset → no faults, otherwise a [`FaultSpec`] string such
/// as `death=0.1,outage=0.2:40`.
pub const FAULTS_ENV: &str = "AMBIENCE_FAULTS";

/// One exogenous failure. Rounds are half-open windows `[from, until)`;
/// a [`NodeDeath`](Self::NodeDeath) is permanent from its round on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// `node` powers off permanently at the start of `round`.
    NodeDeath {
        /// The failing node's raw id.
        node: usize,
        /// First round the node is down.
        round: u64,
    },
    /// `node` is down for rounds in `[from, until)`, then reboots with
    /// whatever energy budget it had left (a powered-off node spends
    /// nothing).
    NodeOutage {
        /// The failing node's raw id.
        node: usize,
        /// First round of the outage.
        from: u64,
        /// First round the node is back up.
        until: u64,
    },
    /// The (symmetric) link between `a` and `b` carries nothing for
    /// rounds in `[from, until)`.
    LinkOutage {
        /// One endpoint's raw id.
        a: usize,
        /// The other endpoint's raw id.
        b: usize,
        /// First round of the outage.
        from: u64,
        /// First round the link is back up.
        until: u64,
    },
    /// Every harvester's output is multiplied by `scale` (in `[0, 1]`)
    /// for rounds in `[from, until)`.
    Brownout {
        /// Output multiplier during the brownout.
        scale: f64,
        /// First round of the brownout.
        from: u64,
        /// First round harvest recovers.
        until: u64,
    },
    /// `node` starts the run with its energy capacity multiplied by
    /// `factor` (in `(0, 1]`) — an aged or cold battery.
    CapacityFade {
        /// The affected node's raw id.
        node: usize,
        /// Capacity multiplier, applied once at deployment.
        factor: f64,
    },
}

/// An explicit, validated list of [`FaultEvent`]s — the value every
/// fault-aware simulation entry point consumes.
///
/// Two runs handed equal schedules behave identically; a schedule is
/// plain data with no interior randomness or environment reads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The no-fault schedule: every query answers "healthy", and faulted
    /// simulation paths degenerate bit-exactly to their unfaulted
    /// originals.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a schedule from events, validating each one.
    ///
    /// # Panics
    ///
    /// Panics when an outage window is empty (`from >= until`), a
    /// brownout scale falls outside `[0, 1]`, or a fade factor falls
    /// outside `(0, 1]` — a malformed fault plan is a configuration
    /// error that must fail loudly, not quietly misfire.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for event in &events {
            match *event {
                FaultEvent::NodeDeath { .. } => {}
                FaultEvent::NodeOutage { from, until, .. }
                | FaultEvent::LinkOutage { from, until, .. } => {
                    assert!(from < until, "empty outage window {from}..{until}");
                }
                FaultEvent::Brownout { scale, from, until } => {
                    assert!(from < until, "empty brownout window {from}..{until}");
                    assert!(
                        (0.0..=1.0).contains(&scale),
                        "brownout scale {scale} outside [0, 1]"
                    );
                }
                FaultEvent::CapacityFade { factor, .. } => {
                    assert!(
                        factor > 0.0 && factor <= 1.0,
                        "fade factor {factor} outside (0, 1]"
                    );
                }
            }
        }
        Self { events }
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The validated event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether `node` is powered off during `round` (dead or mid-outage).
    pub fn node_down(&self, node: usize, round: u64) -> bool {
        self.events.iter().any(|event| match *event {
            FaultEvent::NodeDeath { node: n, round: r } => n == node && round >= r,
            FaultEvent::NodeOutage {
                node: n,
                from,
                until,
            } => n == node && (from..until).contains(&round),
            _ => false,
        })
    }

    /// Whether the link between `x` and `y` (in either order) is down
    /// during `round`.
    pub fn link_down(&self, x: usize, y: usize, round: u64) -> bool {
        self.events.iter().any(|event| match *event {
            FaultEvent::LinkOutage { a, b, from, until } => {
                ((a, b) == (x, y) || (a, b) == (y, x)) && (from..until).contains(&round)
            }
            _ => false,
        })
    }

    /// Harvester output multiplier during `round`: the product of every
    /// active brownout's scale (1.0 when none are active).
    pub fn harvest_scale(&self, round: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::Brownout { scale, from, until } if (from..until).contains(&round) => {
                    Some(scale)
                }
                _ => None,
            })
            .product()
    }

    /// Deployment-time capacity multiplier for `node`: the product of
    /// its fade factors (1.0 when the node is unfaded).
    pub fn capacity_factor(&self, node: usize) -> f64 {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::CapacityFade { node: n, factor } if n == node => Some(factor),
                _ => None,
            })
            .product()
    }

    /// All per-node [`capacity_factor`](Self::capacity_factor)s for a
    /// `nodes`-node run in one pass: factors multiply in event order, so
    /// each entry is bit-identical to the per-node query. Events naming
    /// nodes at or beyond `nodes` are ignored, matching the query's
    /// behaviour for in-range ids.
    pub fn capacity_factors(&self, nodes: usize) -> Vec<f64> {
        let mut factors = vec![1.0; nodes];
        for event in &self.events {
            if let FaultEvent::CapacityFade { node, factor } = *event {
                if node < nodes {
                    factors[node] *= factor;
                }
            }
        }
        factors
    }
}

/// A per-round cursor over a compiled [`FaultSchedule`]: the city-scale
/// replacement for the O(events) [`FaultSchedule::node_down`] /
/// [`FaultSchedule::link_down`] scans the simulators used to pay per
/// query.
///
/// [`compile`](Self::compile) flattens the schedule into round-sorted
/// up/down transitions; [`advance_to`](Self::advance_to) applies the
/// transitions due by a round (a monotone cursor, O(transitions) over a
/// whole run); the point queries then read a counter in O(1). Counters
/// make overlapping windows additive, so the answers match the event
/// scan exactly — pinned by unit tests against the scan on arbitrary
/// schedules — and the whole structure allocates nothing after
/// `compile` (link keys are pre-inserted).
///
/// # Example
///
/// ```
/// use ami_sim::fault::{FaultEvent, FaultSchedule, FaultTimeline};
///
/// let schedule = FaultSchedule::new(vec![
///     FaultEvent::NodeOutage { node: 3, from: 2, until: 5 },
/// ]);
/// let mut timeline = FaultTimeline::compile(&schedule, 8);
/// timeline.advance_to(2);
/// assert!(timeline.node_down(3));
/// timeline.advance_to(5);
/// assert!(!timeline.node_down(3)); // rebooted
/// ```
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    /// Round-sorted node transitions: `(round, node, becomes_down)`.
    node_transitions: Vec<(u64, u32, bool)>,
    /// Round-sorted link transitions: `(round, normalized key, down)`.
    link_transitions: Vec<(u64, (usize, usize), bool)>,
    node_cursor: usize,
    link_cursor: usize,
    /// Active down-windows per node; down while > 0.
    node_active: Vec<u32>,
    /// Active down-windows per normalized link key; keys are
    /// pre-inserted at compile time so advancing never allocates.
    link_active: std::collections::HashMap<(usize, usize), u32>,
    /// Highest round advanced to, enforcing cursor monotonicity.
    advanced_to: u64,
}

impl FaultTimeline {
    /// Compiles `schedule` for a `nodes`-node run.
    ///
    /// Node events naming ids at or beyond `nodes` are dropped — the
    /// simulators never query them. Deaths become a single down
    /// transition (permanent); outages pair a down transition at `from`
    /// with an up transition at `until`, matching the half-open windows
    /// of the event scan.
    pub fn compile(schedule: &FaultSchedule, nodes: usize) -> Self {
        let mut node_transitions = Vec::new();
        let mut link_transitions = Vec::new();
        let mut link_active = std::collections::HashMap::new();
        for event in schedule.events() {
            match *event {
                FaultEvent::NodeDeath { node, round } if node < nodes => {
                    node_transitions.push((round, node as u32, true));
                }
                FaultEvent::NodeOutage { node, from, until } if node < nodes => {
                    node_transitions.push((from, node as u32, true));
                    node_transitions.push((until, node as u32, false));
                }
                FaultEvent::LinkOutage { a, b, from, until } => {
                    let key = if a <= b { (a, b) } else { (b, a) };
                    link_transitions.push((from, key, true));
                    link_transitions.push((until, key, false));
                    link_active.insert(key, 0);
                }
                _ => {}
            }
        }
        node_transitions.sort_by_key(|&(round, ..)| round);
        link_transitions.sort_by_key(|&(round, ..)| round);
        Self {
            node_transitions,
            link_transitions,
            node_cursor: 0,
            link_cursor: 0,
            node_active: vec![0; nodes],
            link_active,
            advanced_to: 0,
        }
    }

    /// Applies every transition due at or before `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round` precedes an earlier `advance_to` call — the
    /// cursor only moves forward, like simulation time.
    pub fn advance_to(&mut self, round: u64) {
        assert!(
            round >= self.advanced_to,
            "fault timeline cannot rewind ({round} < {})",
            self.advanced_to
        );
        self.advanced_to = round;
        while let Some(&(at, node, down)) = self.node_transitions.get(self.node_cursor) {
            if at > round {
                break;
            }
            let active = &mut self.node_active[node as usize];
            *active = if down { *active + 1 } else { *active - 1 };
            self.node_cursor += 1;
        }
        while let Some(&(at, key, down)) = self.link_transitions.get(self.link_cursor) {
            if at > round {
                break;
            }
            let active = self
                .link_active
                .get_mut(&key)
                .expect("link keys pre-inserted at compile");
            *active = if down { *active + 1 } else { *active - 1 };
            self.link_cursor += 1;
        }
    }

    /// Whether `node` is down at the round last advanced to. O(1).
    pub fn node_down(&self, node: usize) -> bool {
        self.node_active[node] > 0
    }

    /// Whether the link between `x` and `y` (either order) is down at
    /// the round last advanced to. O(1).
    pub fn link_down(&self, x: usize, y: usize) -> bool {
        if self.link_active.is_empty() {
            return false;
        }
        let key = if x <= y { (x, y) } else { (y, x) };
        self.link_active.get(&key).is_some_and(|&active| active > 0)
    }

    /// Whether the compiled schedule has any node or link windows at
    /// all; `false` lets round loops skip the per-round refresh.
    pub fn is_trivial(&self) -> bool {
        self.node_transitions.is_empty() && self.link_transitions.is_empty()
    }
}

/// A seeded stochastic fault generator: rates and durations from which
/// [`schedule`](Self::schedule) draws a concrete [`FaultSchedule`].
///
/// Determinism contract: `schedule(seed, nodes, rounds)` is a **pure
/// function** of its arguments. Each node owns a SplitMix64-decorrelated
/// RNG substream (the same discipline as `base_seed + k` replication
/// seeding), so one node's faults never perturb another's draws and the
/// generated schedule is identical at any worker-thread count.
///
/// # Example
///
/// ```
/// use ami_sim::fault::FaultModel;
///
/// let model = FaultModel {
///     death_rate: 0.5,
///     ..FaultModel::none()
/// };
/// let a = model.schedule(7, 20, 100);
/// let b = model.schedule(7, 20, 100);
/// assert_eq!(a, b); // pure in (seed, nodes, rounds)
/// assert!(!a.is_empty());
/// assert!(!a.node_down(0, 0)); // the sink is never faulted
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultModel {
    /// Probability that a sensor dies permanently at a uniform round.
    pub death_rate: f64,
    /// Probability that a sensor suffers one transient outage.
    pub outage_rate: f64,
    /// Duration of transient node outages, in rounds.
    pub outage_rounds: u64,
    /// Probability that a sensor's link to a uniformly drawn peer goes
    /// down for one window.
    pub link_outage_rate: f64,
    /// Duration of link outages, in rounds.
    pub link_outage_rounds: u64,
    /// Probability that a sensor deploys with a faded energy capacity.
    pub fade_rate: f64,
    /// Capacity multiplier applied to faded sensors.
    pub fade_factor: f64,
}

impl FaultModel {
    /// The all-zero model: `schedule` returns [`FaultSchedule::empty`].
    pub fn none() -> Self {
        Self {
            death_rate: 0.0,
            outage_rate: 0.0,
            outage_rounds: 1,
            link_outage_rate: 0.0,
            link_outage_rounds: 1,
            fade_rate: 0.0,
            fade_factor: 1.0,
        }
    }

    /// Draws a concrete schedule for a `nodes`-node, `rounds`-round run.
    ///
    /// Node 0 (the sink, mains-powered by convention) is never faulted.
    /// Outage windows are clamped to end by `rounds` at the earliest
    /// opportunity a full window fits.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`, the fade factor is
    /// outside `(0, 1]`, a nonzero outage rate has a zero duration, or
    /// `rounds` is zero.
    pub fn schedule(&self, seed: u64, nodes: usize, rounds: u64) -> FaultSchedule {
        for (label, rate) in [
            ("death_rate", self.death_rate),
            ("outage_rate", self.outage_rate),
            ("link_outage_rate", self.link_outage_rate),
            ("fade_rate", self.fade_rate),
        ] {
            assert!((0.0..=1.0).contains(&rate), "{label} {rate} outside [0, 1]");
        }
        assert!(
            self.fade_factor > 0.0 && self.fade_factor <= 1.0,
            "fade_factor {} outside (0, 1]",
            self.fade_factor
        );
        assert!(rounds > 0, "schedule at least one round");
        assert!(
            self.outage_rate == 0.0 || self.outage_rounds > 0,
            "outage_rounds must be positive when outage_rate is"
        );
        assert!(
            self.link_outage_rate == 0.0 || self.link_outage_rounds > 0,
            "link_outage_rounds must be positive when link_outage_rate is"
        );

        let mut events = Vec::new();
        for node in 1..nodes {
            // One decorrelated substream per node: faults on node i are
            // invariant under changes to any other node's draws.
            let mut rng = node_substream(seed, node);
            if rng.random_bool(self.death_rate) {
                let round = rng.random_range(0..rounds);
                events.push(FaultEvent::NodeDeath { node, round });
            }
            if rng.random_bool(self.outage_rate) {
                let span = self.outage_rounds.min(rounds);
                let from = rng.random_range(0..=(rounds - span));
                events.push(FaultEvent::NodeOutage {
                    node,
                    from,
                    until: from + span,
                });
            }
            if rng.random_bool(self.link_outage_rate) && nodes > 1 {
                let peer = draw_peer(&mut rng, node, nodes);
                let span = self.link_outage_rounds.min(rounds);
                let from = rng.random_range(0..=(rounds - span));
                events.push(FaultEvent::LinkOutage {
                    a: node,
                    b: peer,
                    from,
                    until: from + span,
                });
            }
            if rng.random_bool(self.fade_rate) {
                events.push(FaultEvent::CapacityFade {
                    node,
                    factor: self.fade_factor,
                });
            }
        }
        FaultSchedule::new(events)
    }
}

/// The per-node fault RNG: the run seed mixed with a SplitMix64-style
/// odd multiplier of the node id, so adjacent nodes get decorrelated
/// streams (the same trick the runner uses for `base_seed + k`).
fn node_substream(seed: u64, node: usize) -> StdRng {
    use rand::SeedableRng;
    let mixed = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    StdRng::seed_from_u64(mixed)
}

/// A uniformly drawn peer id distinct from `node`.
fn draw_peer(rng: &mut StdRng, node: usize, nodes: usize) -> usize {
    let raw = rng.random_range(0..nodes - 1);
    if raw >= node {
        raw + 1
    } else {
        raw
    }
}

/// The operator-facing fault specification: a [`FaultModel`] plus a
/// seed-mixing term, parsed from the compact `AMBIENCE_FAULTS` string.
///
/// # Grammar
///
/// Comma-separated clauses, each `key=value` with colon-separated
/// sub-values; whitespace around clauses is ignored:
///
/// | clause | meaning |
/// |---|---|
/// | `death=RATE` | permanent node death probability |
/// | `outage=RATE:ROUNDS` | transient outage probability and duration |
/// | `link=RATE:ROUNDS` | link-outage probability and duration |
/// | `fade=RATE:FACTOR` | capacity-fade probability and multiplier |
/// | `seed=N` | XOR-mixed into the run seed for the fault stream |
///
/// # Example
///
/// ```
/// use ami_sim::fault::FaultSpec;
///
/// let spec = FaultSpec::parse("death=0.25, outage=0.5:10, seed=3").unwrap();
/// assert_eq!(spec.model.death_rate, 0.25);
/// assert_eq!(spec.model.outage_rounds, 10);
/// let schedule = spec.schedule_for(2003, 16, 200);
/// assert_eq!(schedule, spec.schedule_for(2003, 16, 200)); // pure
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The stochastic generator the spec configures.
    pub model: FaultModel,
    /// XOR-mixed into the run seed, so one binary run can explore
    /// several fault draws over the same workload seed. 0 by default.
    pub seed: u64,
}

impl FaultSpec {
    /// Parses a spec string (see the type-level grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause on unknown keys,
    /// malformed numbers, missing sub-values or out-of-range rates.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut model = FaultModel::none();
        let mut seed = 0u64;
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause {clause:?} is not key=value"))?;
            let mut parts = value.split(':');
            let mut next_f64 = |what: &str| -> Result<f64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("clause {clause:?} is missing its {what}"))?
                    .parse::<f64>()
                    .map_err(|_| format!("clause {clause:?} has a malformed {what}"))
            };
            match key.trim() {
                "death" => model.death_rate = next_f64("rate")?,
                "outage" => {
                    model.outage_rate = next_f64("rate")?;
                    model.outage_rounds = next_f64("duration")? as u64;
                }
                "link" => {
                    model.link_outage_rate = next_f64("rate")?;
                    model.link_outage_rounds = next_f64("duration")? as u64;
                }
                "fade" => {
                    model.fade_rate = next_f64("rate")?;
                    model.fade_factor = next_f64("factor")?;
                }
                "seed" => {
                    seed = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("clause {clause:?} has a malformed seed"))?;
                }
                other => return Err(format!("unknown fault clause key {other:?}")),
            }
        }
        for (label, rate) in [
            ("death", model.death_rate),
            ("outage", model.outage_rate),
            ("link", model.link_outage_rate),
            ("fade", model.fade_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{label} rate {rate} outside [0, 1]"));
            }
        }
        if !(model.fade_factor > 0.0 && model.fade_factor <= 1.0) {
            return Err(format!("fade factor {} outside (0, 1]", model.fade_factor));
        }
        Ok(Self { model, seed })
    }

    /// Reads and parses [`FAULTS_ENV`] (`AMBIENCE_FAULTS`).
    ///
    /// Returns `None` when the variable is unset.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but malformed — like
    /// `AMBIENCE_THREADS`, a misconfigured knob must fail loudly rather
    /// than silently run an unfaulted experiment.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var_os(FAULTS_ENV)?;
        let raw = raw.to_string_lossy();
        Some(Self::parse(&raw).unwrap_or_else(|err| panic!("invalid {FAULTS_ENV}: {err}")))
    }

    /// The concrete schedule for a run: the model drawn at
    /// `run_seed ^ self.seed`. Pure in its arguments.
    pub fn schedule_for(&self, run_seed: u64, nodes: usize, rounds: u64) -> FaultSchedule {
        self.model.schedule(run_seed ^ self.seed, nodes, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_answers_healthy() {
        let schedule = FaultSchedule::empty();
        assert!(schedule.is_empty());
        assert!(!schedule.node_down(3, 0));
        assert!(!schedule.link_down(1, 2, 5));
        assert_eq!(schedule.harvest_scale(9), 1.0);
        assert_eq!(schedule.capacity_factor(4), 1.0);
    }

    #[test]
    fn death_is_permanent_and_outage_reboots() {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::NodeDeath { node: 1, round: 5 },
            FaultEvent::NodeOutage {
                node: 2,
                from: 3,
                until: 6,
            },
        ]);
        assert!(!schedule.node_down(1, 4));
        assert!(schedule.node_down(1, 5));
        assert!(schedule.node_down(1, u64::MAX));
        assert!(!schedule.node_down(2, 2));
        assert!(schedule.node_down(2, 3));
        assert!(schedule.node_down(2, 5));
        assert!(!schedule.node_down(2, 6));
    }

    #[test]
    fn link_outage_is_symmetric_and_windowed() {
        let schedule = FaultSchedule::new(vec![FaultEvent::LinkOutage {
            a: 4,
            b: 7,
            from: 10,
            until: 12,
        }]);
        assert!(schedule.link_down(4, 7, 10));
        assert!(schedule.link_down(7, 4, 11));
        assert!(!schedule.link_down(4, 7, 12));
        assert!(!schedule.link_down(4, 6, 10));
    }

    #[test]
    fn brownouts_and_fades_compound_multiplicatively() {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::Brownout {
                scale: 0.5,
                from: 0,
                until: 10,
            },
            FaultEvent::Brownout {
                scale: 0.4,
                from: 5,
                until: 10,
            },
            FaultEvent::CapacityFade {
                node: 2,
                factor: 0.8,
            },
            FaultEvent::CapacityFade {
                node: 2,
                factor: 0.5,
            },
        ]);
        assert_eq!(schedule.harvest_scale(3), 0.5);
        assert!((schedule.harvest_scale(7) - 0.2).abs() < 1e-15);
        assert_eq!(schedule.harvest_scale(10), 1.0);
        assert!((schedule.capacity_factor(2) - 0.4).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "empty outage window")]
    fn inverted_window_rejected() {
        let _ = FaultSchedule::new(vec![FaultEvent::NodeOutage {
            node: 1,
            from: 9,
            until: 9,
        }]);
    }

    #[test]
    #[should_panic(expected = "fade factor")]
    fn zero_fade_rejected() {
        let _ = FaultSchedule::new(vec![FaultEvent::CapacityFade {
            node: 1,
            factor: 0.0,
        }]);
    }

    #[test]
    fn model_is_pure_in_its_arguments() {
        let model = FaultModel {
            death_rate: 0.3,
            outage_rate: 0.4,
            outage_rounds: 12,
            link_outage_rate: 0.2,
            link_outage_rounds: 6,
            fade_rate: 0.5,
            fade_factor: 0.7,
        };
        assert_eq!(model.schedule(9, 30, 100), model.schedule(9, 30, 100));
        assert_ne!(model.schedule(9, 30, 100), model.schedule(10, 30, 100));
    }

    #[test]
    fn model_never_faults_the_sink_and_respects_bounds() {
        let model = FaultModel {
            death_rate: 1.0,
            outage_rate: 1.0,
            outage_rounds: 10,
            link_outage_rate: 1.0,
            link_outage_rounds: 5,
            fade_rate: 1.0,
            fade_factor: 0.5,
        };
        let rounds = 50;
        let schedule = model.schedule(1, 12, rounds);
        for round in 0..rounds {
            assert!(!schedule.node_down(0, round), "sink faulted at {round}");
        }
        for event in schedule.events() {
            match *event {
                FaultEvent::NodeDeath { node, round } => {
                    assert!(node >= 1 && round < rounds);
                }
                FaultEvent::NodeOutage { node, from, until } => {
                    assert!(node >= 1 && from < until && until <= rounds);
                }
                FaultEvent::LinkOutage { a, b, from, until } => {
                    assert!(a >= 1 && a != b && b < 12);
                    assert!(from < until && until <= rounds);
                }
                FaultEvent::CapacityFade { node, factor } => {
                    assert!(node >= 1 && factor == 0.5);
                }
                FaultEvent::Brownout { .. } => {
                    panic!("the model draws no brownouts");
                }
            }
        }
        // Every sensor drew every fault kind at rate 1.0.
        assert_eq!(schedule.events().len(), 4 * 11);
    }

    #[test]
    fn per_node_substreams_are_stable_under_node_count() {
        // Node 3's faults must not depend on how many other nodes exist:
        // that is what makes model-driven replication thread-invariant
        // and growable.
        let model = FaultModel {
            death_rate: 0.5,
            outage_rate: 0.5,
            outage_rounds: 8,
            ..FaultModel::none()
        };
        let small = model.schedule(42, 5, 100);
        let large = model.schedule(42, 50, 100);
        let on_node_3 = |s: &FaultSchedule| {
            s.events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        FaultEvent::NodeDeath { node: 3, .. }
                            | FaultEvent::NodeOutage { node: 3, .. }
                    )
                })
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(on_node_3(&small), on_node_3(&large));
    }

    #[test]
    fn timeline_matches_the_event_scan_on_model_schedules() {
        // The compiled cursor must answer every (node, link, round)
        // query exactly like the O(events) scan it replaces, including
        // overlapping windows, deaths inside outages and reboots.
        let model = FaultModel {
            death_rate: 0.4,
            outage_rate: 0.6,
            outage_rounds: 7,
            link_outage_rate: 0.5,
            link_outage_rounds: 5,
            fade_rate: 0.0,
            fade_factor: 1.0,
        };
        let nodes = 14;
        let rounds = 60;
        for seed in 0..25u64 {
            let schedule = model.schedule(seed, nodes, rounds);
            let mut timeline = FaultTimeline::compile(&schedule, nodes);
            for round in 0..rounds {
                timeline.advance_to(round);
                for node in 0..nodes {
                    assert_eq!(
                        timeline.node_down(node),
                        schedule.node_down(node, round),
                        "seed {seed} node {node} round {round}"
                    );
                }
                for x in 0..nodes {
                    for y in 0..nodes {
                        assert_eq!(
                            timeline.link_down(x, y),
                            schedule.link_down(x, y, round),
                            "seed {seed} link {x}-{y} round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn timeline_handles_overlapping_windows_and_skips_advances() {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::NodeOutage {
                node: 2,
                from: 1,
                until: 6,
            },
            FaultEvent::NodeOutage {
                node: 2,
                from: 4,
                until: 9,
            },
            FaultEvent::NodeDeath { node: 3, round: 5 },
            FaultEvent::LinkOutage {
                a: 7,
                b: 1,
                from: 2,
                until: 4,
            },
        ]);
        let mut timeline = FaultTimeline::compile(&schedule, 10);
        assert!(!timeline.is_trivial());
        // Jump straight into the overlap: both windows activate at once.
        timeline.advance_to(5);
        assert!(timeline.node_down(2));
        assert!(timeline.node_down(3));
        assert!(!timeline.link_down(1, 7), "link window already closed");
        timeline.advance_to(6);
        assert!(timeline.node_down(2), "second window still open");
        timeline.advance_to(9);
        assert!(!timeline.node_down(2), "rebooted after the overlap");
        assert!(timeline.node_down(3), "death is permanent");
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn timeline_rejects_rewinds() {
        let schedule = FaultSchedule::empty();
        let mut timeline = FaultTimeline::compile(&schedule, 4);
        timeline.advance_to(5);
        timeline.advance_to(3);
    }

    #[test]
    fn capacity_factors_match_the_per_node_query_bitwise() {
        let schedule = FaultSchedule::new(vec![
            FaultEvent::CapacityFade {
                node: 2,
                factor: 0.8,
            },
            FaultEvent::CapacityFade {
                node: 4,
                factor: 0.3,
            },
            FaultEvent::CapacityFade {
                node: 2,
                factor: 0.5,
            },
        ]);
        let factors = schedule.capacity_factors(6);
        for (node, factor) in factors.iter().enumerate() {
            assert_eq!(
                factor.to_bits(),
                schedule.capacity_factor(node).to_bits(),
                "node {node}"
            );
        }
    }

    #[test]
    fn spec_round_trips_the_grammar() {
        let spec =
            FaultSpec::parse(" death=0.1 , outage=0.2:40, link=0.05:12, fade=0.3:0.6, seed=11 ")
                .unwrap();
        assert_eq!(spec.model.death_rate, 0.1);
        assert_eq!(spec.model.outage_rate, 0.2);
        assert_eq!(spec.model.outage_rounds, 40);
        assert_eq!(spec.model.link_outage_rate, 0.05);
        assert_eq!(spec.model.link_outage_rounds, 12);
        assert_eq!(spec.model.fade_rate, 0.3);
        assert_eq!(spec.model.fade_factor, 0.6);
        assert_eq!(spec.seed, 11);
    }

    #[test]
    fn spec_rejects_malformed_clauses() {
        assert!(FaultSpec::parse("death").is_err());
        assert!(FaultSpec::parse("death=x").is_err());
        assert!(FaultSpec::parse("outage=0.1").is_err()); // missing duration
        assert!(FaultSpec::parse("death=1.5").is_err()); // rate out of range
        assert!(FaultSpec::parse("fade=0.5:0.0").is_err()); // factor out of range
        assert!(FaultSpec::parse("bogus=1").is_err());
    }

    #[test]
    fn empty_spec_is_the_null_model() {
        let spec = FaultSpec::parse("").unwrap();
        assert_eq!(spec.model, FaultModel::none());
        assert!(spec.schedule_for(7, 20, 100).is_empty());
    }

    #[test]
    fn spec_seed_mixes_into_the_run_seed() {
        let a = FaultSpec::parse("death=0.5, seed=1").unwrap();
        let b = FaultSpec::parse("death=0.5, seed=2").unwrap();
        assert_ne!(a.schedule_for(7, 30, 100), b.schedule_for(7, 30, 100));
        // seed=0 (default) leaves the run seed untouched.
        let plain = FaultSpec::parse("death=0.5").unwrap();
        assert_eq!(
            plain.schedule_for(7, 30, 100),
            plain.model.schedule(7, 30, 100)
        );
    }
}
