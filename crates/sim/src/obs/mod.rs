//! Structured, deterministic observability for simulation runs.
//!
//! Three layers, cheapest first:
//!
//! 1. **Recording** — hot loops are generic over [`Recorder`]; the
//!    default [`NullRecorder`] monomorphizes to nothing,
//!    [`LedgerRecorder`] fills pre-sized tables with plain arithmetic,
//!    and [`RingRecorder`] keeps only scalar aggregates plus a bounded
//!    ring of recent residuals for n = 10⁶⁺ runs where O(N) observer
//!    memory is unaffordable.
//! 2. **Aggregation** — [`EnergyLedger`] attributes every joule to a
//!    `(node, category)` cell with *unclamped* residuals (overdraft is
//!    reported, never hidden), and [`PacketCounters`] tallies every
//!    offered packet into delivered / dropped-dead-hop /
//!    dropped-disconnected.
//! 3. **Emission** — [`RunManifest`] renders config, seed, runner
//!    policy, ledger totals and the [`CounterTree`] as deterministic
//!    JSON ([`to_json`]): fixed field order, shortest-roundtrip floats,
//!    byte-identical at any `AMBIENCE_THREADS`.
//!
//! Experiment binaries emit manifests when [`MANIFEST_ENV`]
//! (`AMBIENCE_MANIFEST`) is set: `-` → stdout, a path → written there.

#![deny(missing_docs)]

mod counters;
mod json;
mod ledger;
mod manifest;
mod recorder;
mod residual_ring;

pub use counters::{CounterTree, PacketCounters};
pub use json::{json_f64, to_json};
pub use ledger::{EnergyCategory, EnergyLedger};
pub use manifest::{RunManifest, MANIFEST_ENV};
pub use recorder::{LedgerRecorder, NullRecorder, Recorder};
pub use residual_ring::{ResidualStats, RingRecorder};
