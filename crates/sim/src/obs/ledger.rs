//! The energy ledger: per-node, per-category charge records.
//!
//! The keynote's argument is an energy-*accounting* argument — a device
//! lives or dies by where every joule goes — so simulations must be able
//! to say not just *how much* energy a run consumed but *which activity*
//! consumed it on *which node*. The ledger is the attribution store:
//! a pre-sized, flat `f64` table indexed by `(node, category)` that the
//! hot path charges with plain array arithmetic (no hashing, no per-event
//! allocation), folded into totals only when a report or manifest is
//! rendered.
//!
//! Determinism: every fold (`total`, `category_total`, `node_total`) runs
//! in fixed node-then-category order, and [`EnergyLedger::merge`]
//! accumulates element-wise, so merging per-replication ledgers in index
//! order produces bit-identical totals at any worker-thread count.

use ami_units::Energy;

/// The activity a joule is attributed to.
///
/// The four categories are the µW-node's energy story in the source
/// keynote: packet transmission, relay reception, idle listening (the
/// MAC baseline that dominates duty-cycled radios), and the sensing path
/// (sensor bias, conversion and local processing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Radio transmit energy (own reports and relayed forwards).
    Tx,
    /// Radio receive energy spent relaying other nodes' packets.
    RxRelay,
    /// Baseline idle-listening / MAC channel-check energy.
    Idle,
    /// Sensing-path energy: sensor bias, ADC and local processing.
    Sensing,
}

impl EnergyCategory {
    /// All categories, in ledger column order.
    pub const ALL: [Self; 4] = [Self::Tx, Self::RxRelay, Self::Idle, Self::Sensing];

    /// Stable snake_case label used in manifests.
    pub fn label(self) -> &'static str {
        match self {
            Self::Tx => "tx",
            Self::RxRelay => "rx_relay",
            Self::Idle => "idle",
            Self::Sensing => "sensing",
        }
    }

    fn column(self) -> usize {
        match self {
            Self::Tx => 0,
            Self::RxRelay => 1,
            Self::Idle => 2,
            Self::Sensing => 3,
        }
    }
}

const CATEGORIES: usize = EnergyCategory::ALL.len();

/// Per-node, per-category energy charges plus true end-of-run residuals.
///
/// Charges are stored in joules in a flat `nodes × categories` table.
/// Residuals are *not clamped*: a node driven past empty keeps its
/// negative residual, and [`overdraft`](Self::overdraft) totals how far
/// past empty the run went — silently hiding overdraft is exactly the
/// accounting bug this layer exists to expose.
///
/// # Example
///
/// ```
/// use ami_sim::obs::{EnergyCategory, EnergyLedger};
///
/// let mut ledger = EnergyLedger::with_nodes(2);
/// ledger.charge(0, EnergyCategory::Tx, 3.0);
/// ledger.charge(1, EnergyCategory::Idle, 1.0);
/// ledger.set_residual(1, -0.25); // driven past empty
/// assert_eq!(ledger.total().as_joules(), 4.0);
/// assert_eq!(ledger.overdraft().as_joules(), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    /// Flat `nodes × CATEGORIES` charge table, joules.
    charges: Vec<f64>,
    /// True end-of-run budget per node, joules (negative = overdraft).
    residual: Vec<f64>,
}

impl EnergyLedger {
    /// An empty ledger pre-sized for `nodes` nodes.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            charges: vec![0.0; nodes * CATEGORIES],
            residual: vec![0.0; nodes],
        }
    }

    /// Number of node rows.
    pub fn nodes(&self) -> usize {
        self.residual.len()
    }

    /// Adds `joules` to the `(node, category)` cell.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `joules` is negative or not finite;
    /// panics if `node` is out of range.
    #[inline]
    pub fn charge(&mut self, node: usize, category: EnergyCategory, joules: f64) {
        debug_assert!(joules.is_finite() && joules >= 0.0, "bad charge {joules}");
        self.charges[node * CATEGORIES + category.column()] += joules;
    }

    /// The charge recorded for one `(node, category)` cell, joules.
    pub fn node_category(&self, node: usize, category: EnergyCategory) -> f64 {
        self.charges[node * CATEGORIES + category.column()]
    }

    /// Total charged to `node` across categories.
    pub fn node_total(&self, node: usize) -> Energy {
        let row = &self.charges[node * CATEGORIES..(node + 1) * CATEGORIES];
        Energy::from_joules(row.iter().sum())
    }

    /// Total charged to `category` across nodes, folded in node order.
    pub fn category_total(&self, category: EnergyCategory) -> Energy {
        let column = category.column();
        let mut sum = 0.0;
        for node in 0..self.nodes() {
            sum += self.charges[node * CATEGORIES + column];
        }
        Energy::from_joules(sum)
    }

    /// Grand total across nodes and categories, folded node-major.
    pub fn total(&self) -> Energy {
        Energy::from_joules(self.charges.iter().sum())
    }

    /// Fraction of the grand total attributed to `category`
    /// (0 when nothing was charged).
    pub fn fraction(&self, category: EnergyCategory) -> f64 {
        let total = self.total().as_joules();
        if total == 0.0 {
            0.0
        } else {
            self.category_total(category).as_joules() / total
        }
    }

    /// Records `node`'s true end-of-run budget (may be negative).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn set_residual(&mut self, node: usize, joules: f64) {
        self.residual[node] = joules;
    }

    /// True residual budgets per node, joules (negative = overdraft).
    pub fn residuals(&self) -> &[f64] {
        &self.residual
    }

    /// Sum of residual budgets (overdrafts subtract).
    pub fn residual_total(&self) -> Energy {
        Energy::from_joules(self.residual.iter().sum())
    }

    /// How far past empty the run drove its nodes in total: the sum of
    /// `max(0, −residual)` over nodes. (The explicit branch keeps a
    /// fully-funded ledger at exactly `+0.0` — `(-0.0).max(0.0)` would
    /// leak a negative zero into manifests.)
    pub fn overdraft(&self) -> Energy {
        Energy::from_joules(
            self.residual
                .iter()
                .map(|&r| if r < 0.0 { -r } else { 0.0 })
                .sum(),
        )
    }

    /// Element-wise accumulation of `other` into `self`, growing the
    /// node table if `other` is larger. Merging per-replication ledgers
    /// in index order keeps totals bit-identical at any thread count.
    pub fn merge(&mut self, other: &Self) {
        if other.nodes() > self.nodes() {
            self.charges.resize(other.charges.len(), 0.0);
            self.residual.resize(other.residual.len(), 0.0);
        }
        for (slot, &add) in self.charges.iter_mut().zip(&other.charges) {
            *slot += add;
        }
        for (slot, &add) in self.residual.iter_mut().zip(&other.residual) {
            *slot += add;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_attribute_by_node_and_category() {
        let mut ledger = EnergyLedger::with_nodes(3);
        ledger.charge(1, EnergyCategory::Tx, 2.0);
        ledger.charge(1, EnergyCategory::Tx, 0.5);
        ledger.charge(2, EnergyCategory::RxRelay, 1.0);
        ledger.charge(2, EnergyCategory::Idle, 4.0);
        assert_eq!(ledger.node_category(1, EnergyCategory::Tx), 2.5);
        assert_eq!(ledger.node_total(2).as_joules(), 5.0);
        assert_eq!(ledger.category_total(EnergyCategory::Tx).as_joules(), 2.5);
        assert_eq!(ledger.total().as_joules(), 7.5);
        assert_eq!(ledger.node_total(0).as_joules(), 0.0);
    }

    #[test]
    fn categories_partition_the_total() {
        let mut ledger = EnergyLedger::with_nodes(4);
        for node in 0..4 {
            for (k, category) in EnergyCategory::ALL.into_iter().enumerate() {
                ledger.charge(node, category, (node + k) as f64 * 0.125);
            }
        }
        let by_category: f64 = EnergyCategory::ALL
            .into_iter()
            .map(|c| ledger.category_total(c).as_joules())
            .sum();
        assert_eq!(by_category, ledger.total().as_joules());
    }

    #[test]
    fn residuals_and_overdraft_are_unclamped() {
        let mut ledger = EnergyLedger::with_nodes(3);
        ledger.set_residual(0, 1.0);
        ledger.set_residual(1, -0.5);
        ledger.set_residual(2, -0.25);
        assert_eq!(ledger.residual_total().as_joules(), 0.25);
        assert_eq!(ledger.overdraft().as_joules(), 0.75);
    }

    #[test]
    fn merge_accumulates_elementwise() {
        let mut a = EnergyLedger::with_nodes(2);
        a.charge(0, EnergyCategory::Tx, 1.0);
        a.set_residual(0, 2.0);
        let mut b = EnergyLedger::with_nodes(2);
        b.charge(0, EnergyCategory::Tx, 0.5);
        b.charge(1, EnergyCategory::Sensing, 3.0);
        b.set_residual(0, -1.0);
        a.merge(&b);
        assert_eq!(a.node_category(0, EnergyCategory::Tx), 1.5);
        assert_eq!(a.node_category(1, EnergyCategory::Sensing), 3.0);
        assert_eq!(a.residuals(), &[1.0, 0.0]);
    }

    #[test]
    fn merge_grows_to_the_larger_ledger() {
        let mut a = EnergyLedger::with_nodes(1);
        a.charge(0, EnergyCategory::Idle, 1.0);
        let mut b = EnergyLedger::with_nodes(3);
        b.charge(2, EnergyCategory::Idle, 2.0);
        a.merge(&b);
        assert_eq!(a.nodes(), 3);
        assert_eq!(a.total().as_joules(), 3.0);
    }

    #[test]
    fn labels_are_stable_snake_case() {
        let labels: Vec<&str> = EnergyCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["tx", "rx_relay", "idle", "sensing"]);
    }
}
