//! The per-run manifest: one JSON document that pins down what a run
//! *was* — experiment name, configuration, seed, runner policy — and
//! what it *did* — ledger totals and the counter tree.
//!
//! Manifests are a determinism artifact as much as an observability one:
//! two runs of the same experiment must produce byte-identical manifests
//! at any `AMBIENCE_THREADS`, so the document deliberately records the
//! *scheduling policy* (env knob, index-order merge) rather than the
//! live worker count, which is exactly the quantity allowed to vary
//! without changing results.

use super::counters::CounterTree;
use super::json::{json_f64, to_json};
use super::ledger::{EnergyCategory, EnergyLedger};
use serde::Serialize;

/// Environment variable experiment binaries consult for manifest
/// emission: unset → no manifest, `-` → stdout, anything else → a file
/// path the manifest is written to.
pub const MANIFEST_ENV: &str = "AMBIENCE_MANIFEST";

/// An ordered-field JSON manifest under construction.
///
/// Fields render in insertion order, one top-level field per line, so
/// manifests diff cleanly and byte-compare across thread counts.
///
/// # Example
///
/// ```
/// use ami_sim::obs::RunManifest;
///
/// let json = RunManifest::new("demo")
///     .field("seed", &42u64)
///     .runner()
///     .to_json();
/// assert!(json.starts_with("{\n  \"experiment\": \"demo\",\n"));
/// assert!(json.ends_with("}\n"));
/// ```
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// `(name, rendered JSON value)` in insertion order.
    fields: Vec<(&'static str, String)>,
}

impl RunManifest {
    /// Starts a manifest whose first field names the experiment.
    pub fn new(experiment: &str) -> Self {
        let mut manifest = Self { fields: Vec::new() };
        manifest.push("experiment", to_json(experiment));
        manifest
    }

    fn push(&mut self, name: &'static str, rendered: String) {
        debug_assert!(
            self.fields.iter().all(|(n, _)| *n != name),
            "duplicate manifest field {name:?}"
        );
        self.fields.push((name, rendered));
    }

    /// Appends a field rendered from any `Serialize` value.
    pub fn field<T: Serialize + ?Sized>(mut self, name: &'static str, value: &T) -> Self {
        self.push(name, to_json(value));
        self
    }

    /// Appends a field whose value is already-rendered JSON.
    pub fn raw_field(mut self, name: &'static str, json: String) -> Self {
        self.push(name, json);
        self
    }

    /// Appends the runner-policy stanza.
    ///
    /// Records how parallel work is scheduled — the env knob and the
    /// index-order merge contract — but *not* the live worker count:
    /// results are thread-invariant, so the manifest must be too.
    pub fn runner(self) -> Self {
        self.raw_field(
            "runner",
            concat!(
                "{\"threads_env\":\"AMBIENCE_THREADS\",",
                "\"merge\":\"index-order\",",
                "\"thread_invariant\":true}"
            )
            .to_string(),
        )
    }

    /// Appends the energy-ledger stanza: node count, grand total, the
    /// per-category split, and the residual/overdraft totals.
    pub fn ledger(self, ledger: &EnergyLedger) -> Self {
        let mut out = String::from("{\"nodes\":");
        out.push_str(&ledger.nodes().to_string());
        out.push_str(",\"total_j\":");
        out.push_str(&json_f64(ledger.total().as_joules()));
        out.push_str(",\"categories\":{");
        for (k, category) in EnergyCategory::ALL.into_iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(category.label());
            out.push_str("\":");
            out.push_str(&json_f64(ledger.category_total(category).as_joules()));
        }
        out.push_str("},\"residual_total_j\":");
        out.push_str(&json_f64(ledger.residual_total().as_joules()));
        out.push_str(",\"overdraft_j\":");
        out.push_str(&json_f64(ledger.overdraft().as_joules()));
        out.push('}');
        self.raw_field("ledger", out)
    }

    /// Appends the hierarchical counter stanza.
    pub fn counters(self, tree: &CounterTree) -> Self {
        self.raw_field("counters", to_json(tree))
    }

    /// Renders the manifest: a JSON object with one top-level field per
    /// line and a trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (k, (name, rendered)) in self.fields.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&to_json(*name));
            out.push_str(": ");
            out.push_str(rendered);
            if k + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::PacketCounters;

    #[test]
    fn fields_render_in_insertion_order() {
        let json = RunManifest::new("t")
            .field("b", &2u32)
            .field("a", &1u32)
            .to_json();
        assert_eq!(
            json,
            "{\n  \"experiment\": \"t\",\n  \"b\": 2,\n  \"a\": 1\n}\n"
        );
    }

    #[test]
    fn runner_stanza_records_policy_not_thread_count() {
        let json = RunManifest::new("t").runner().to_json();
        assert!(json.contains("\"threads_env\":\"AMBIENCE_THREADS\""));
        assert!(json.contains("\"merge\":\"index-order\""));
        assert!(json.contains("\"thread_invariant\":true"));
        // No live worker count anywhere — that may vary run to run.
        assert!(!json.contains("\"threads\":"));
    }

    #[test]
    fn ledger_stanza_partitions_the_total() {
        let mut ledger = EnergyLedger::with_nodes(2);
        ledger.charge(0, EnergyCategory::Tx, 1.5);
        ledger.charge(1, EnergyCategory::Idle, 0.5);
        ledger.set_residual(1, -0.25);
        let json = RunManifest::new("t").ledger(&ledger).to_json();
        assert!(json.contains("\"nodes\":2"));
        assert!(json.contains("\"total_j\":2"));
        assert!(json.contains("\"tx\":1.5"));
        assert!(json.contains("\"rx_relay\":0"));
        assert!(json.contains("\"idle\":0.5"));
        assert!(json.contains("\"overdraft_j\":0.25"));
    }

    #[test]
    fn counters_stanza_nests_the_tree() {
        let counters = PacketCounters {
            offered: 3,
            delivered: 2,
            dropped_dead_hop: 1,
            dropped_disconnected: 0,
            dropped_fault: 0,
        };
        let json = RunManifest::new("t").counters(&counters.tree()).to_json();
        assert!(json.contains("\"packets\":{\"offered\":3,\"delivered\":2"));
        assert!(json.contains("\"dropped\":{\"dead_hop\":1,\"disconnected\":0,\"fault\":0}"));
    }

    // The duplicate check is a `debug_assert`, so the panic only
    // exists in the debug profile — under `--release` the second
    // `field` call succeeds and this assertion would fail spuriously.
    #[cfg(debug_assertions)]
    #[test]
    fn duplicate_fields_panic_in_debug() {
        let manifest = RunManifest::new("t").field("x", &1u8);
        let result = std::panic::catch_unwind(|| manifest.field("x", &2u8));
        assert!(result.is_err());
    }
}
