//! A bounded residual sink for very large networks.
//!
//! [`LedgerRecorder`](super::LedgerRecorder) holds a `(node, category)`
//! table — O(N) memory — which is the right default up to city scale
//! but the wrong tool at n = 10⁶⁺, where observing a run should not
//! cost another hundred megabytes. [`RingRecorder`] is the O(active)
//! alternative: running scalar aggregates (charge totals, packet
//! counters, residual moments and extremes) plus a fixed-capacity ring
//! of the most recent `(node, residual)` samples. Memory is bounded by
//! the ring capacity no matter how many nodes the run touches, which is
//! what the n = 1M scale smoke's peak-RSS ceiling leans on.
//!
//! Like every [`Recorder`], it is passive — attaching it cannot change
//! simulation results — and deterministic: aggregates fold in call
//! order, which the kernels fix (ascending node id at commit).

use super::counters::PacketCounters;
use super::ledger::EnergyCategory;
use super::recorder::Recorder;

/// Running summary of every residual the sink has seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualStats {
    /// Residuals recorded so far.
    pub count: u64,
    /// Sum of all residuals (joules; call-order fold).
    pub sum: f64,
    /// Smallest residual seen (most overdrawn), `f64::INFINITY` when
    /// none recorded yet.
    pub min: f64,
    /// Largest residual seen, `f64::NEG_INFINITY` when none yet.
    pub max: f64,
    /// Nodes that finished overdrawn (residual < 0).
    pub overdrawn: u64,
    /// Total overdraft magnitude (joules, ≥ 0).
    pub overdraft: f64,
}

/// An O(active)-memory [`Recorder`]: scalar aggregates plus a ring of
/// the most recent residual samples. See the module docs.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    /// Recent `(node, residual)` samples; once full, `head` is the slot
    /// the next sample overwrites (= the oldest retained sample).
    ring: Vec<(u32, f64)>,
    head: usize,
    /// End-to-end packet tallies (O(1) state).
    pub packets: PacketCounters,
    /// Total joules charged across all nodes and categories.
    pub charged: f64,
    /// Individual charge events seen.
    pub charges: u64,
    stats: ResidualStats,
}

impl RingRecorder {
    /// An empty sink retaining at most `capacity` recent residual
    /// samples (`capacity` ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "retain at least one sample");
        Self {
            capacity,
            ring: Vec::with_capacity(capacity),
            head: 0,
            packets: PacketCounters::new(),
            charged: 0.0,
            charges: 0,
            stats: ResidualStats {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                overdrawn: 0,
                overdraft: 0.0,
            },
        }
    }

    /// The running residual summary.
    pub fn stats(&self) -> ResidualStats {
        self.stats
    }

    /// Retained samples, oldest first. At most `capacity` entries; the
    /// kernels record residuals in ascending node id, so these are the
    /// highest-id tail of the node space.
    pub fn recent(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (wrapped, first) = self.ring.split_at(self.head);
        first.iter().chain(wrapped.iter()).copied()
    }
}

impl Recorder for RingRecorder {
    const RETAIN_SAMPLES: bool = false;

    #[inline]
    fn charge(&mut self, _node: usize, _category: EnergyCategory, joules: f64) {
        self.charged += joules;
        self.charges += 1;
    }
    #[inline]
    fn packet_offered(&mut self) {
        self.packets.offered += 1;
    }
    #[inline]
    fn packet_delivered(&mut self) {
        self.packets.delivered += 1;
    }
    #[inline]
    fn packet_dropped_dead_hop(&mut self) {
        self.packets.dropped_dead_hop += 1;
    }
    #[inline]
    fn packet_dropped_disconnected(&mut self) {
        self.packets.dropped_disconnected += 1;
    }
    #[inline]
    fn packet_dropped_fault(&mut self) {
        self.packets.dropped_fault += 1;
    }
    fn record_residual(&mut self, node: usize, joules: f64) {
        let s = &mut self.stats;
        s.count += 1;
        s.sum += joules;
        s.min = s.min.min(joules);
        s.max = s.max.max(joules);
        if joules < 0.0 {
            s.overdrawn += 1;
            s.overdraft -= joules;
        }
        let sample = (node as u32, joules);
        if self.ring.len() < self.capacity {
            self.ring.push(sample);
        } else {
            self.ring[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
    }
    #[inline]
    fn packets_offered(&mut self, count: u64) {
        self.packets.offered += count;
    }
    #[inline]
    fn packets_delivered(&mut self, count: u64) {
        self.packets.delivered += count;
    }
    #[inline]
    fn packets_dropped_disconnected(&mut self, count: u64) {
        self.packets.dropped_disconnected += count;
    }
    #[inline]
    fn packets_dropped_fault(&mut self, count: u64) {
        self.packets.dropped_fault += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_cover_all_samples_ring_keeps_the_tail() {
        let mut rec = RingRecorder::with_capacity(3);
        for node in 0..10usize {
            rec.record_residual(node, node as f64 - 2.0);
        }
        let stats = rec.stats();
        assert_eq!(stats.count, 10);
        assert_eq!(stats.min, -2.0);
        assert_eq!(stats.max, 7.0);
        assert_eq!(stats.overdrawn, 2);
        assert_eq!(stats.overdraft, 3.0);
        assert_eq!(stats.sum, (0..10).map(|n| n as f64 - 2.0).sum::<f64>());
        let recent: Vec<_> = rec.recent().collect();
        assert_eq!(recent, vec![(7, 5.0), (8, 6.0), (9, 7.0)]);
    }

    #[test]
    fn partial_ring_iterates_in_insertion_order() {
        let mut rec = RingRecorder::with_capacity(8);
        rec.record_residual(3, 1.5);
        rec.record_residual(4, -0.5);
        let recent: Vec<_> = rec.recent().collect();
        assert_eq!(recent, vec![(3, 1.5), (4, -0.5)]);
    }

    #[test]
    fn charges_and_packets_fold_into_scalars() {
        let mut rec = RingRecorder::with_capacity(1);
        rec.charge(0, EnergyCategory::Tx, 1.0);
        rec.charge(999_999, EnergyCategory::RxRelay, 0.5);
        rec.packet_offered();
        rec.packet_delivered();
        rec.packets_offered(5);
        rec.packets_dropped_fault(2);
        assert_eq!(rec.charged, 1.5);
        assert_eq!(rec.charges, 2);
        assert_eq!(rec.packets.offered, 6);
        assert_eq!(rec.packets.delivered, 1);
        assert_eq!(rec.packets.dropped_fault, 2);
    }
}
