//! Deterministic JSON rendering for manifests.
//!
//! A minimal JSON backend for the vendored serde data model, so every
//! `#[derive(Serialize)]` config and report in the workspace can be
//! embedded in a run manifest without new plumbing. Determinism rules:
//!
//! * struct fields and map entries render in the order the type emits
//!   them (serde's own contract — derived structs emit declaration
//!   order);
//! * `f64` renders via Rust's shortest-roundtrip `Display`, so equal
//!   bits always produce equal bytes;
//! * non-finite floats render as `null` (JSON has no NaN/∞ literals).
//!
//! Output is compact (no whitespace); the manifest layer adds the only
//! pretty-printing the toolkit does.

use serde::ser::{
    Error as _, Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant,
    SerializeTuple, SerializeTupleStruct, SerializeTupleVariant, Serializer,
};
use std::fmt::Write;

/// Renders any `Serialize` value as compact deterministic JSON.
///
/// # Example
///
/// ```
/// use ami_sim::obs::to_json;
///
/// assert_eq!(to_json(&[1.5f64, 2.0][..]), "[1.5,2]");
/// assert_eq!(to_json(&("id", 7u64)), "[\"id\",7]");
/// ```
///
/// # Panics
///
/// Panics if the value's `Serialize` impl reports an error (none of the
/// toolkit's types do).
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value
        .serialize(Json { out: &mut out })
        .expect("toolkit types serialize infallibly");
    out
}

/// Formats one `f64` exactly as [`to_json`] would.
pub fn json_f64(value: f64) -> String {
    let mut out = String::new();
    write_f64(&mut out, value);
    out
}

fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        write!(out, "{value}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The serde-facing JSON writer.
struct Json<'a> {
    out: &'a mut String,
}

/// Comma-separated compound writer shared by arrays, objects and maps.
struct Compound<'a> {
    out: &'a mut String,
    first: bool,
    close: char,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
    }
}

macro_rules! int_methods {
    ($($method:ident: $ty:ty),+ $(,)?) => {$(
        fn $method(self, v: $ty) -> Result<(), std::fmt::Error> {
            write!(self.out, "{v}")
        }
    )+};
}

impl<'a> Serializer for Json<'a> {
    type Ok = ();
    type Error = std::fmt::Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Self::Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    int_methods!(
        serialize_i8: i8,
        serialize_i16: i16,
        serialize_i32: i32,
        serialize_i64: i64,
        serialize_u8: u8,
        serialize_u16: u16,
        serialize_u32: u32,
        serialize_u64: u64,
    );

    fn serialize_f32(self, v: f32) -> Result<(), Self::Error> {
        // Promote through the shortest f32 representation to avoid the
        // noisy f32→f64 bit-extension digits.
        write!(self.out, "{v}")
    }

    fn serialize_f64(self, v: f64) -> Result<(), Self::Error> {
        write_f64(self.out, v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), Self::Error> {
        write_str(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
        write_str(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Self::Error> {
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for byte in v {
            SerializeSeq::serialize_element(&mut seq, byte)?;
        }
        SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), Self::Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Self::Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Self::Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Self::Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Self::Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.out.push('{');
        write_str(self.out, variant);
        self.out.push(':');
        value.serialize(Json { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
        self.out.push('[');
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error> {
        self.out.push('{');
        write_str(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            out: self.out,
            first: true,
            close: ']', // the variant-wrapping `}` is added by end()
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
        self.out.push('{');
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error> {
        self.out.push('{');
        write_str(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.comma();
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Self::Error> {
        SerializeSeq::end(self)
    }
}

impl SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Self::Error> {
        SerializeSeq::end(self)
    }
}

impl SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push(self.close);
        self.out.push('}'); // close the variant-wrapping object
        Ok(())
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error> {
        self.comma();
        // JSON object keys must be strings; route through a checking
        // serializer so a non-string key fails loudly.
        key.serialize(KeyJson { out: self.out })
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error> {
        self.out.push(':');
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.comma();
        write_str(self.out, key);
        self.out.push(':');
        value.serialize(Json { out: self.out })
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push(self.close);
        Ok(())
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = std::fmt::Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Self::Error> {
        self.out.push(self.close);
        self.out.push('}'); // close the variant-wrapping object
        Ok(())
    }
}

/// Object-key serializer: accepts strings and chars only.
struct KeyJson<'a> {
    out: &'a mut String,
}

macro_rules! key_rejects {
    ($($method:ident: $ty:ty),+ $(,)?) => {$(
        fn $method(self, _v: $ty) -> Result<(), Self::Error> {
            Err(Self::Error::custom("JSON object keys must be strings"))
        }
    )+};
}

impl<'a> Serializer for KeyJson<'a> {
    type Ok = ();
    type Error = std::fmt::Error;
    type SerializeSeq = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeTuple = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeTupleStruct = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeTupleVariant = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeMap = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeStruct = serde::ser::Impossible<(), std::fmt::Error>;
    type SerializeStructVariant = serde::ser::Impossible<(), std::fmt::Error>;

    key_rejects!(
        serialize_bool: bool,
        serialize_i8: i8,
        serialize_i16: i16,
        serialize_i32: i32,
        serialize_i64: i64,
        serialize_u8: u8,
        serialize_u16: u16,
        serialize_u32: u32,
        serialize_u64: u64,
        serialize_f32: f32,
        serialize_f64: f64,
        serialize_bytes: &[u8],
    );

    fn serialize_char(self, v: char) -> Result<(), Self::Error> {
        write_str(self.out, &v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
        write_str(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_some<T: Serialize + ?Sized>(self, _value: &T) -> Result<(), Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_unit(self) -> Result<(), Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Self::Error> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error> {
        Err(Self::Error::custom("JSON object keys must be strings"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::CounterTree;

    #[test]
    fn scalars_render_compactly() {
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&2.0f64), "2");
        assert_eq!(to_json(&"hi"), "\"hi\"");
        assert_eq!(to_json(&Option::<u32>::None), "null");
        assert_eq!(to_json(&Some(3u8)), "3");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        // Shortest-roundtrip display: 0.1 stays "0.1", not 0.1000000...
        assert_eq!(to_json(&0.1f64), "0.1");
        assert_eq!(json_f64(1.0 / 3.0), format!("{}", 1.0_f64 / 3.0));
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(to_json(&"a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_json(&'\u{1}'), "\"\\u0001\"");
    }

    #[test]
    fn sequences_and_tuples_are_arrays() {
        assert_eq!(to_json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&("x", 2u64)), "[\"x\",2]");
        let empty: Vec<u8> = Vec::new();
        assert_eq!(to_json(&empty), "[]");
    }

    #[test]
    fn derived_structs_are_objects_in_field_order() {
        use ami_units::{Energy, Power};
        // quantity! newtypes forward to the raw f64.
        assert_eq!(to_json(&Energy::from_joules(2.5)), "2.5");
        // Shortest roundtrip is honest about binary floats: 20 µW is
        // not exactly 2e-5 W, and the digits say so.
        assert_eq!(
            to_json(&Power::from_microwatts(20.0)),
            format!("{}", Power::from_microwatts(20.0).as_watts())
        );
    }

    #[test]
    fn counter_trees_nest_as_objects() {
        let tree = CounterTree::branch([
            ("delivered", CounterTree::leaf(4)),
            (
                "dropped",
                CounterTree::branch([("dead_hop", CounterTree::leaf(1))]),
            ),
        ]);
        assert_eq!(
            to_json(&tree),
            "{\"delivered\":4,\"dropped\":{\"dead_hop\":1}}"
        );
    }

    #[test]
    fn equal_bits_render_equal_bytes() {
        let v = 0.1 + 0.2; // 0.30000000000000004
        assert_eq!(json_f64(v), json_f64(v));
        assert_eq!(json_f64(v), "0.30000000000000004");
    }
}
