//! Time-series recording with summary statistics.

use ami_units::TimeSpan;

/// A recorded `(time, value)` series with incremental statistics.
///
/// # Example
///
/// ```
/// use ami_sim::TraceSeries;
/// use ami_units::TimeSpan;
///
/// let mut t = TraceSeries::new("buffer level");
/// t.record(TimeSpan::from_seconds(1.0), 3.0);
/// t.record(TimeSpan::from_seconds(2.0), 5.0);
/// assert_eq!(t.mean(), Some(4.0));
/// assert_eq!(t.max(), Some(5.0));
/// ```
#[derive(Debug, Clone)]
pub struct TraceSeries {
    name: String,
    times: Vec<TimeSpan>,
    values: Vec<f64>,
    // Neumaier-compensated running sum: `sum` carries the naive total,
    // `compensation` the low-order bits each addition rounds away.
    // A plain `sum += value` drifts on long series (millions of samples
    // of mixed magnitude), which shifted reported means.
    sum: f64,
    compensation: f64,
    min: f64,
    max: f64,
}

impl TraceSeries {
    /// An empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
            sum: 0.0,
            compensation: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or `time` precedes the last sample.
    pub fn record(&mut self, time: TimeSpan, value: f64) {
        assert!(value.is_finite(), "trace values must be finite");
        if let Some(last) = self.times.last() {
            assert!(time >= *last, "trace times must not decrease");
        }
        self.times.push(time);
        self.values.push(value);
        let t = self.sum + value;
        // Neumaier's branch: recover the low-order bits of whichever
        // addend the rounding truncated.
        self.compensation += if self.sum.abs() >= value.abs() {
            (self.sum - t) + value
        } else {
            (value - t) + self.sum
        };
        self.sum = t;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sample times.
    pub fn times(&self) -> &[TimeSpan] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean, if any samples exist.
    ///
    /// Computed from the compensated running sum, so it does not drift
    /// on long series the way a naive accumulator does.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some((self.sum + self.compensation) / self.values.len() as f64)
        }
    }

    /// Minimum value, if any samples exist.
    pub fn min(&self) -> Option<f64> {
        self.values.first().map(|_| self.min)
    }

    /// Maximum value, if any samples exist.
    pub fn max(&self) -> Option<f64> {
        self.values.first().map(|_| self.max)
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(TimeSpan, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_track_samples() {
        let mut t = TraceSeries::new("x");
        for (i, v) in [4.0, 1.0, 7.0, 2.0].iter().enumerate() {
            t.record(TimeSpan::from_seconds(i as f64), *v);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.mean(), Some(3.5));
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(7.0));
        assert_eq!(t.last().unwrap().1, 2.0);
    }

    #[test]
    fn empty_series_has_no_stats() {
        let t = TraceSeries::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.mean(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.last(), None);
    }

    #[test]
    fn mean_survives_catastrophic_cancellation() {
        // Naive running summation loses the small addend entirely:
        // 1e16 + 1.0 rounds back to 1e16, so the naive mean of
        // [1e16, 1.0, -1e16] is 0 instead of 1/3.
        let mut t = TraceSeries::new("cancel");
        for (i, v) in [1e16, 1.0, -1e16].iter().enumerate() {
            t.record(TimeSpan::from_seconds(i as f64), *v);
        }
        assert_eq!(t.mean(), Some(1.0 / 3.0));
    }

    #[test]
    fn mean_does_not_drift_on_long_series() {
        // A million samples of 0.1 (not exactly representable): the
        // compensated mean stays at the nearest-f64 of 0.1; a naive
        // accumulator is off by ~1e-12 by this length.
        let mut t = TraceSeries::new("long");
        let n = 1_000_000;
        for i in 0..n {
            t.record(TimeSpan::from_seconds(i as f64), 0.1);
        }
        let err = (t.mean().unwrap() - 0.1).abs();
        assert!(err < 1e-15, "compensated mean drifted by {err:e}");
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn unordered_times_rejected() {
        let mut t = TraceSeries::new("x");
        t.record(TimeSpan::from_seconds(2.0), 1.0);
        t.record(TimeSpan::from_seconds(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_rejected() {
        let mut t = TraceSeries::new("x");
        t.record(TimeSpan::ZERO, f64::NAN);
    }
}
