//! Time-series recording with summary statistics.

use crate::obs::Recorder;
use ami_units::TimeSpan;

/// A recorded `(time, value)` series with incremental statistics.
///
/// By default every sample is retained; [`TraceSeries::summary_only`]
/// builds a series that keeps only the incremental statistics (count,
/// compensated sum, min/max, last sample), so day-scale simulations can
/// record millions of samples without carrying them. All statistics are
/// computed identically in both modes — the Neumaier-compensated sum
/// sees the same additions in the same order, so [`TraceSeries::mean`]
/// is bit-identical whether or not samples are retained.
///
/// Retention can also be tied to the observability layer's
/// [`Recorder`] gate: [`TraceSeries::for_recorder`] retains samples
/// only when the recorder type asks for them
/// ([`Recorder::RETAIN_SAMPLES`]), so un-instrumented runs get the
/// summary-only fast path automatically.
///
/// # Example
///
/// ```
/// use ami_sim::TraceSeries;
/// use ami_units::TimeSpan;
///
/// let mut t = TraceSeries::new("buffer level");
/// t.record(TimeSpan::from_seconds(1.0), 3.0);
/// t.record(TimeSpan::from_seconds(2.0), 5.0);
/// assert_eq!(t.mean(), Some(4.0));
/// assert_eq!(t.max(), Some(5.0));
///
/// let mut s = TraceSeries::summary_only("buffer level");
/// s.record(TimeSpan::from_seconds(1.0), 3.0);
/// s.record(TimeSpan::from_seconds(2.0), 5.0);
/// assert_eq!(s.mean(), Some(4.0)); // identical statistics...
/// assert!(s.values().is_empty()); // ...without the samples
/// ```
#[derive(Debug, Clone)]
pub struct TraceSeries {
    name: String,
    retain: bool,
    times: Vec<TimeSpan>,
    values: Vec<f64>,
    /// Samples seen (equals `values.len()` when retaining).
    count: usize,
    /// Last recorded sample, kept even in summary mode for the
    /// monotonic-time check and [`TraceSeries::last`].
    last: Option<(TimeSpan, f64)>,
    // Neumaier-compensated running sum: `sum` carries the naive total,
    // `compensation` the low-order bits each addition rounds away.
    // A plain `sum += value` drifts on long series (millions of samples
    // of mixed magnitude), which shifted reported means.
    sum: f64,
    compensation: f64,
    min: f64,
    max: f64,
}

impl TraceSeries {
    /// An empty named series retaining every sample.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_retention(name, true)
    }

    /// An empty named series keeping only summary statistics: `record`
    /// never allocates, and [`TraceSeries::times`] /
    /// [`TraceSeries::values`] stay empty.
    pub fn summary_only(name: impl Into<String>) -> Self {
        Self::with_retention(name, false)
    }

    /// An empty named series whose retention follows the recorder type
    /// `R`: full samples for instrumented runs
    /// (`R::RETAIN_SAMPLES == true`), summary-only otherwise (e.g.
    /// [`crate::obs::NullRecorder`]).
    pub fn for_recorder<R: Recorder>(name: impl Into<String>) -> Self {
        Self::with_retention(name, R::RETAIN_SAMPLES)
    }

    fn with_retention(name: impl Into<String>, retain: bool) -> Self {
        Self {
            name: name.into(),
            retain,
            times: Vec::new(),
            values: Vec::new(),
            count: 0,
            last: None,
            sum: 0.0,
            compensation: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` when every sample is kept (not summary-only mode).
    pub fn retains_samples(&self) -> bool {
        self.retain
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or `time` precedes the last sample.
    pub fn record(&mut self, time: TimeSpan, value: f64) {
        assert!(value.is_finite(), "trace values must be finite");
        if let Some((last_time, _)) = self.last {
            assert!(time >= last_time, "trace times must not decrease");
        }
        if self.retain {
            self.times.push(time);
            self.values.push(value);
        }
        self.count += 1;
        self.last = Some((time, value));
        let t = self.sum + value;
        // Neumaier's branch: recover the low-order bits of whichever
        // addend the rounding truncated.
        self.compensation += if self.sum.abs() >= value.abs() {
            (self.sum - t) + value
        } else {
            (value - t) + self.sum
        };
        self.sum = t;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded (counted even in summary-only mode).
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The sample times (empty in summary-only mode).
    pub fn times(&self) -> &[TimeSpan] {
        &self.times
    }

    /// The sample values (empty in summary-only mode).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean, if any samples exist.
    ///
    /// Computed from the compensated running sum, so it does not drift
    /// on long series the way a naive accumulator does, and is
    /// bit-identical in retaining and summary-only modes.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some((self.sum + self.compensation) / self.count as f64)
        }
    }

    /// Minimum value, if any samples exist.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum value, if any samples exist.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(TimeSpan, f64)> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{LedgerRecorder, NullRecorder};

    #[test]
    fn statistics_track_samples() {
        let mut t = TraceSeries::new("x");
        for (i, v) in [4.0, 1.0, 7.0, 2.0].iter().enumerate() {
            t.record(TimeSpan::from_seconds(i as f64), *v);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.mean(), Some(3.5));
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(7.0));
        assert_eq!(t.last().unwrap().1, 2.0);
    }

    #[test]
    fn empty_series_has_no_stats() {
        let t = TraceSeries::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.mean(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.last(), None);
    }

    #[test]
    fn mean_survives_catastrophic_cancellation() {
        // Naive running summation loses the small addend entirely:
        // 1e16 + 1.0 rounds back to 1e16, so the naive mean of
        // [1e16, 1.0, -1e16] is 0 instead of 1/3.
        let mut t = TraceSeries::new("cancel");
        for (i, v) in [1e16, 1.0, -1e16].iter().enumerate() {
            t.record(TimeSpan::from_seconds(i as f64), *v);
        }
        assert_eq!(t.mean(), Some(1.0 / 3.0));
    }

    #[test]
    fn mean_does_not_drift_on_long_series() {
        // A million samples of 0.1 (not exactly representable): the
        // compensated mean stays at the nearest-f64 of 0.1; a naive
        // accumulator is off by ~1e-12 by this length.
        let mut t = TraceSeries::new("long");
        let n = 1_000_000;
        for i in 0..n {
            t.record(TimeSpan::from_seconds(i as f64), 0.1);
        }
        let err = (t.mean().unwrap() - 0.1).abs();
        assert!(err < 1e-15, "compensated mean drifted by {err:e}");
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn unordered_times_rejected() {
        let mut t = TraceSeries::new("x");
        t.record(TimeSpan::from_seconds(2.0), 1.0);
        t.record(TimeSpan::from_seconds(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_rejected() {
        let mut t = TraceSeries::new("x");
        t.record(TimeSpan::ZERO, f64::NAN);
    }

    #[test]
    fn summary_mode_statistics_are_bit_identical() {
        // Adversarial magnitudes so any change to the summation order or
        // compensation path would show: the summary-mode statistics must
        // be *bit*-equal to the retaining ones, not merely close.
        let samples: Vec<f64> = (0..10_000)
            .map(|i| {
                let x = i as f64;
                (x * 0.7).sin() * 10f64.powf((i % 17) as f64 - 8.0)
            })
            .collect();
        let mut full = TraceSeries::new("x");
        let mut summary = TraceSeries::summary_only("x");
        for (i, &v) in samples.iter().enumerate() {
            let t = TimeSpan::from_seconds(i as f64);
            full.record(t, v);
            summary.record(t, v);
        }
        assert!(full.retains_samples());
        assert!(!summary.retains_samples());
        assert_eq!(full.len(), summary.len());
        assert_eq!(
            full.mean().unwrap().to_bits(),
            summary.mean().unwrap().to_bits()
        );
        assert_eq!(full.min(), summary.min());
        assert_eq!(full.max(), summary.max());
        assert_eq!(full.last(), summary.last());
        assert!(summary.times().is_empty());
        assert!(summary.values().is_empty());
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn summary_mode_still_rejects_unordered_times() {
        let mut t = TraceSeries::summary_only("x");
        t.record(TimeSpan::from_seconds(2.0), 1.0);
        t.record(TimeSpan::from_seconds(1.0), 1.0);
    }

    #[test]
    fn recorder_gate_selects_retention() {
        assert!(TraceSeries::for_recorder::<LedgerRecorder>("x").retains_samples());
        assert!(!TraceSeries::for_recorder::<NullRecorder>("x").retains_samples());
    }
}
