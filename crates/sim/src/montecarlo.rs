//! Monte-Carlo replication: run a seeded experiment many times and
//! summarize the spread.
//!
//! Several toolkit simulations are stochastic in a single seed (actual
//! task demands, random topologies). Confidence in a reported number
//! means replicating across seeds; this module provides the harness and
//! the summary statistics, keeping determinism: replication `k` of a
//! study with base seed `s` always uses seed `s + k` — whether the
//! replications run serially ([`replicate`]) or across worker threads
//! ([`replicate_par`], which merges observables back in seed order and
//! is therefore bit-exact with the serial path).

/// Summary statistics of a replicated scalar observable.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Half-width of the ~95 % normal-approximation confidence interval
    /// on the mean (`1.96·σ/√n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (σ/μ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

/// Runs `experiment` for `replications` seeds starting at `base_seed`
/// and summarizes the returned observable.
///
/// # Example
///
/// ```
/// use ami_sim::{replicate, sim_rng};
/// use rand::RngExt;
///
/// // The mean of a uniform [0,1) draw concentrates near 0.5.
/// let summary = replicate(100, 7, |seed| {
///     let mut rng = sim_rng(seed);
///     rng.random::<f64>()
/// });
/// assert!((summary.mean - 0.5).abs() < 0.1);
/// assert_eq!(summary.n, 100);
/// ```
///
/// # Panics
///
/// Panics if `replications` is zero or the experiment returns a
/// non-finite observable.
pub fn replicate(
    replications: usize,
    base_seed: u64,
    mut experiment: impl FnMut(u64) -> f64,
) -> Summary {
    assert!(replications > 0, "at least one replication");
    let mut values = Vec::with_capacity(replications);
    for k in 0..replications {
        let v = experiment(base_seed.wrapping_add(k as u64));
        assert!(v.is_finite(), "observable must be finite, got {v}");
        values.push(v);
    }
    summarize(&values)
}

/// Parallel [`replicate`]: the same seed schedule (`base_seed + k`),
/// spread across the default [`runner::thread_count`](crate::runner::thread_count)
/// workers, merged back in seed order.
///
/// Bit-exact with [`replicate`]: replication `k` sees the identical
/// seed, and [`summarize`] folds the identical ordered sample vector,
/// so even floating-point rounding matches. `tests/determinism.rs`
/// asserts `replicate_par == replicate` at 1, 2 and 8 threads.
///
/// The experiment closure takes `Fn` (not `FnMut`) plus `Sync` because
/// workers share it; any per-replication state belongs inside the
/// closure, keyed on the seed.
///
/// # Panics
///
/// Panics if `replications` is zero or the experiment returns a
/// non-finite observable.
pub fn replicate_par(
    replications: usize,
    base_seed: u64,
    experiment: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    replicate_par_threads(
        crate::runner::thread_count(),
        replications,
        base_seed,
        experiment,
    )
}

/// [`replicate_par`] with an explicit worker count (1 runs the plain
/// serial loop). Exposed so tests and benchmarks can pin the topology.
///
/// # Panics
///
/// Panics if `threads` or `replications` is zero, or the experiment
/// returns a non-finite observable.
pub fn replicate_par_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    experiment: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    assert!(replications > 0, "at least one replication");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    let values = crate::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        let v = experiment(seed);
        assert!(v.is_finite(), "observable must be finite, got {v}");
        v
    });
    summarize(&values)
}

/// Summarizes an existing sample.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-finite entries.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let n = values.len();
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        assert!(v.is_finite(), "sample must be finite");
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_rng;
    use rand::RngExt;

    #[test]
    fn constant_experiment_has_zero_spread() {
        let s = replicate(10, 0, |_| 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!((s.min, s.max), (42.0, 42.0));
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let mut seen = Vec::new();
        let _ = replicate(5, 100, |seed| {
            seen.push(seed);
            0.0
        });
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn uniform_sample_statistics() {
        let s = replicate(2000, 1, |seed| sim_rng(seed).random::<f64>());
        assert!((s.mean - 0.5).abs() < 0.02);
        // Uniform [0,1): σ = 1/√12 ≈ 0.2887.
        assert!((s.std_dev - 0.2887).abs() < 0.02);
        assert!(s.min >= 0.0 && s.max < 1.0);
        assert!(s.ci95_half_width() < 0.02);
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.290_994).abs() < 1e-6);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert!((s.cv() - 0.516_398).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = replicate(0, 0, |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_observable_rejected() {
        let _ = replicate(1, 0, |_| f64::NAN);
    }
}
