//! Monte-Carlo replication: run a seeded experiment many times and
//! summarize the spread.
//!
//! Several toolkit simulations are stochastic in a single seed (actual
//! task demands, random topologies). Confidence in a reported number
//! means replicating across seeds; this module provides the harness and
//! the summary statistics, keeping determinism: replication `k` of a
//! study with base seed `s` always uses seed `s + k` — whether the
//! replications run serially ([`replicate`]) or across worker threads
//! ([`replicate_par`], which merges observables back in seed order and
//! is therefore bit-exact with the serial path).

/// Summary statistics of a replicated scalar observable.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Half-width of the ~95 % normal-approximation confidence interval
    /// on the mean (`1.96·σ/√n`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (σ/μ); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

/// Runs `experiment` for `replications` seeds starting at `base_seed`
/// and summarizes the returned observable.
///
/// # Example
///
/// ```
/// use ami_sim::{replicate, sim_rng};
/// use rand::RngExt;
///
/// // The mean of a uniform [0,1) draw concentrates near 0.5.
/// let summary = replicate(100, 7, |seed| {
///     let mut rng = sim_rng(seed);
///     rng.random::<f64>()
/// });
/// assert!((summary.mean - 0.5).abs() < 0.1);
/// assert_eq!(summary.n, 100);
/// ```
///
/// # Panics
///
/// Panics if `replications` is zero or the experiment returns a
/// non-finite observable.
pub fn replicate(
    replications: usize,
    base_seed: u64,
    mut experiment: impl FnMut(u64) -> f64,
) -> Summary {
    assert!(replications > 0, "at least one replication");
    let mut values = Vec::with_capacity(replications);
    for k in 0..replications {
        let v = experiment(base_seed.wrapping_add(k as u64));
        assert!(v.is_finite(), "observable must be finite, got {v}");
        values.push(v);
    }
    summarize(&values)
}

/// Parallel [`replicate`]: the same seed schedule (`base_seed + k`),
/// spread across the default [`runner::thread_count`](crate::runner::thread_count)
/// workers, merged back in seed order.
///
/// Bit-exact with [`replicate`]: replication `k` sees the identical
/// seed, and [`summarize`] folds the identical ordered sample vector,
/// so even floating-point rounding matches. `tests/determinism.rs`
/// asserts `replicate_par == replicate` at 1, 2 and 8 threads.
///
/// The experiment closure takes `Fn` (not `FnMut`) plus `Sync` because
/// workers share it; any per-replication state belongs inside the
/// closure, keyed on the seed.
///
/// # Panics
///
/// Panics if `replications` is zero or the experiment returns a
/// non-finite observable.
pub fn replicate_par(
    replications: usize,
    base_seed: u64,
    experiment: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    replicate_par_threads(
        crate::runner::thread_count(),
        replications,
        base_seed,
        experiment,
    )
}

/// [`replicate_par`] with an explicit worker count (1 runs the plain
/// serial loop). Exposed so tests and benchmarks can pin the topology.
///
/// # Panics
///
/// Panics if `threads` or `replications` is zero, or the experiment
/// returns a non-finite observable.
pub fn replicate_par_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    experiment: impl Fn(u64) -> f64 + Sync,
) -> Summary {
    assert!(replications > 0, "at least one replication");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    let values = crate::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        let v = experiment(seed);
        assert!(v.is_finite(), "observable must be finite, got {v}");
        v
    });
    summarize(&values)
}

/// Multi-observable [`replicate`]: one pass over the seed schedule, one
/// [`Summary`] per observable.
///
/// Callers that summarize several observables of the same experiment
/// previously re-ran the whole replication per observable (N passes over
/// N·replications experiment runs). Here the experiment returns all its
/// observables at once — `observables` names them and fixes their order
/// — and each replication runs exactly once.
///
/// # Example
///
/// ```
/// use ami_sim::{replicate_all, sim_rng};
/// use rand::RngExt;
///
/// let [raw, squared] = replicate_all(100, 7, 2, |seed, out| {
///     let x = sim_rng(seed).random::<f64>();
///     out[0] = x;
///     out[1] = x * x;
/// })
/// .try_into()
/// .unwrap();
/// assert!((raw.mean - 0.5).abs() < 0.1);
/// assert!(squared.mean < raw.mean); // x² < x on [0,1)
/// ```
///
/// # Panics
///
/// Panics if `replications` or `observables` is zero, or the experiment
/// writes a non-finite observable.
pub fn replicate_all(
    replications: usize,
    base_seed: u64,
    observables: usize,
    mut experiment: impl FnMut(u64, &mut [f64]),
) -> Vec<Summary> {
    assert!(replications > 0, "at least one replication");
    assert!(observables > 0, "at least one observable");
    // Column-major: values[obs] is the sample vector of one observable,
    // in seed order — each summarized exactly like a solo `replicate`.
    let mut values = vec![Vec::with_capacity(replications); observables];
    let mut row = vec![f64::NAN; observables];
    for k in 0..replications {
        row.fill(f64::NAN);
        experiment(base_seed.wrapping_add(k as u64), &mut row);
        for (obs, &v) in row.iter().enumerate() {
            assert!(v.is_finite(), "observable {obs} must be finite, got {v}");
            values[obs].push(v);
        }
    }
    values.iter().map(|column| summarize(column)).collect()
}

/// Parallel [`replicate_all`] on the default worker count: same seed
/// schedule, observables merged back in seed order per column, so every
/// summary is bit-exact with the serial pass.
///
/// # Panics
///
/// Panics if `replications` or `observables` is zero, or the experiment
/// writes a non-finite observable.
pub fn replicate_all_par(
    replications: usize,
    base_seed: u64,
    observables: usize,
    experiment: impl Fn(u64, &mut [f64]) + Sync,
) -> Vec<Summary> {
    replicate_all_par_threads(
        crate::runner::thread_count(),
        replications,
        base_seed,
        observables,
        experiment,
    )
}

/// [`replicate_all_par`] with an explicit worker count (1 runs the plain
/// serial loop). Exposed so tests and benchmarks can pin the topology.
///
/// # Panics
///
/// Panics if `threads`, `replications` or `observables` is zero, or the
/// experiment writes a non-finite observable.
pub fn replicate_all_par_threads(
    threads: usize,
    replications: usize,
    base_seed: u64,
    observables: usize,
    experiment: impl Fn(u64, &mut [f64]) + Sync,
) -> Vec<Summary> {
    assert!(replications > 0, "at least one replication");
    assert!(observables > 0, "at least one observable");
    let seeds: Vec<u64> = (0..replications)
        .map(|k| base_seed.wrapping_add(k as u64))
        .collect();
    let rows = crate::runner::par_map_indexed_threads(threads, &seeds, |_, &seed| {
        let mut row = vec![f64::NAN; observables];
        experiment(seed, &mut row);
        for (obs, &v) in row.iter().enumerate() {
            assert!(v.is_finite(), "observable {obs} must be finite, got {v}");
        }
        row
    });
    (0..observables)
        .map(|obs| {
            let column: Vec<f64> = rows.iter().map(|row| row[obs]).collect();
            summarize(&column)
        })
        .collect()
}

/// Summarizes an existing sample.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-finite entries.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let n = values.len();
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        assert!(v.is_finite(), "sample must be finite");
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_rng;
    use rand::RngExt;

    #[test]
    fn constant_experiment_has_zero_spread() {
        let s = replicate(10, 0, |_| 42.0);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!((s.min, s.max), (42.0, 42.0));
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let mut seen = Vec::new();
        let _ = replicate(5, 100, |seed| {
            seen.push(seed);
            0.0
        });
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn uniform_sample_statistics() {
        let s = replicate(2000, 1, |seed| sim_rng(seed).random::<f64>());
        assert!((s.mean - 0.5).abs() < 0.02);
        // Uniform [0,1): σ = 1/√12 ≈ 0.2887.
        assert!((s.std_dev - 0.2887).abs() < 0.02);
        assert!(s.min >= 0.0 && s.max < 1.0);
        assert!(s.ci95_half_width() < 0.02);
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.290_994).abs() < 1e-6);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        assert!((s.cv() - 0.516_398).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = replicate(0, 0, |_| 0.0);
    }

    #[test]
    fn replicate_all_matches_per_observable_replicate() {
        // One multi-observable pass must produce exactly the summaries
        // the old one-pass-per-observable pattern did.
        let observable = |seed: u64, obs: usize| {
            let mut rng = sim_rng(seed);
            let x: f64 = rng.random();
            match obs {
                0 => x,
                _ => x * x,
            }
        };
        let solo = [
            replicate(200, 42, |seed| observable(seed, 0)),
            replicate(200, 42, |seed| observable(seed, 1)),
        ];
        let all = replicate_all(200, 42, 2, |seed, out| {
            let mut rng = sim_rng(seed);
            let x: f64 = rng.random();
            out[0] = x;
            out[1] = x * x;
        });
        assert_eq!(all.as_slice(), &solo);
    }

    #[test]
    fn replicate_all_par_is_bit_exact_with_serial() {
        let experiment = |seed: u64, out: &mut [f64]| {
            let mut rng = sim_rng(seed);
            out[0] = rng.random();
            out[1] = rng.random_range(0.0..10.0);
            out[2] = f64::from(rng.random_range(0u32..100));
        };
        let serial = replicate_all(97, 5, 3, experiment);
        for threads in [1, 2, 8] {
            let par = replicate_all_par_threads(threads, 97, 5, 3, experiment);
            assert_eq!(par, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one observable")]
    fn replicate_all_rejects_zero_observables() {
        let _ = replicate_all(1, 0, 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "observable 1 must be finite")]
    fn replicate_all_rejects_unwritten_observables() {
        // Forgetting to fill an observable leaves the NaN sentinel, which
        // names the offending column.
        let _ = replicate_all(1, 0, 2, |_, out| {
            out[0] = 1.0;
        });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_observable_rejected() {
        let _ = replicate(1, 0, |_| f64::NAN);
    }
}
