//! Deterministic discrete-event simulation kernel with energy accounting.
//!
//! Ambient-intelligence functions are realized by *networks* of devices,
//! so their evaluation needs an event-driven simulator. This kernel is
//! deliberately minimal and fully deterministic:
//!
//! * [`EventQueue`] — a time-ordered queue with FIFO tie-breaking by
//!   sequence number, so identical runs replay identically;
//! * [`EnergyMeter`] — per-device power-state tracking that integrates
//!   energy exactly between state changes and keeps a per-state
//!   breakdown, with states interned to [`StateId`]s so the hot path
//!   never touches a string;
//! * [`TraceSeries`] — a lightweight time-series recorder with summary
//!   statistics and an allocation-free summary-only mode;
//! * [`sim_rng`] — the sanctioned source of *sequential* randomness
//!   (a seeded [`rand::rngs::StdRng`]);
//! * [`rng`] — addressable *counter-based* randomness
//!   ([`rng::packet_rng`]) for kernels whose work items may execute in
//!   any order without changing results;
//! * [`runner`] — seed-partitioned parallel execution for independent
//!   work (replications, sweep grids) that is bit-exact with serial at
//!   any thread count (`AMBIENCE_THREADS` overrides the worker count);
//! * [`obs`] — the observability layer: per-node energy ledgers,
//!   hierarchical packet counters and deterministic JSON run manifests,
//!   recorded through a zero-cost [`obs::Recorder`] hook;
//! * [`fault`] — deterministic exogenous fault injection: explicit
//!   [`FaultSchedule`]s or seeded [`FaultModel`] draws (node death,
//!   outage/reboot, link outage, harvester brownout, capacity fade),
//!   parsed from the `AMBIENCE_FAULTS` spec by [`FaultSpec`].
//!
//! # Example
//!
//! ```
//! use ami_sim::EventQueue;
//! use ami_units::TimeSpan;
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule_in(TimeSpan::from_millis(2.0), "b");
//! queue.schedule_in(TimeSpan::from_millis(1.0), "a");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!((ev, t.as_millis()), ("a", 1.0));
//! ```

pub mod energy;
pub mod fault;
pub mod montecarlo;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod trace;

pub use energy::{EnergyMeter, StateId};
pub use fault::{FaultEvent, FaultModel, FaultSchedule, FaultSpec, FAULTS_ENV};
pub use montecarlo::{
    replicate, replicate_all, replicate_all_par, replicate_all_par_threads, replicate_par,
    replicate_par_threads, summarize, Summary,
};
pub use obs::{
    CounterTree, EnergyCategory, EnergyLedger, LedgerRecorder, NullRecorder, PacketCounters,
    Recorder, RunManifest, MANIFEST_ENV,
};
pub use queue::EventQueue;
pub use runner::{par_map_indexed, par_map_indexed_threads, thread_count};
pub use trace::TraceSeries;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The single sanctioned way to obtain randomness in simulations:
/// a seeded, portable [`StdRng`]. Two runs with the same seed produce
/// identical event streams.
pub fn sim_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = sim_rng(42);
        let mut b = sim_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = sim_rng(1);
        let mut b = sim_rng(2);
        let same = (0..10)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 10);
    }
}
