//! Addressable per-packet randomness for order-independent kernels.
//!
//! [`crate::sim_rng`] hands out one *sequential* stream per seed: the
//! right tool when a run consumes randomness in a single fixed order,
//! and the wrong one the moment work items may execute out of order —
//! a hop's draw count would decide which values its neighbours see.
//! This module keys a counter-based generator
//! ([`rand::counter::CounterRng`]) by logical coordinates instead:
//! every `(seed, round, packet)` tuple owns an independent,
//! well-decorrelated stream whose draws depend on nothing but the
//! tuple. Kernels that draw through [`packet_rng`] are free to process
//! packets in any order — serially, region-parallel, or resumed from
//! the middle — and still produce bit-identical results.
//!
//! # Example
//!
//! ```
//! use ami_sim::rng::packet_rng;
//! use rand::RngExt;
//!
//! let mut forward = packet_rng(2003, 0, 7);
//! let mut reversed = packet_rng(2003, 0, 7);
//! // Same coordinates, same stream — regardless of which other
//! // packets were processed in between.
//! assert_eq!(forward.next_u64(), reversed.next_u64());
//! ```

#![deny(missing_docs)]

pub use rand::counter::CounterRng;

/// The channel-randomness stream of one packet: keyed by the run seed,
/// the round it was offered in, and the offering node's id. Every ARQ
/// attempt of every hop of that packet draws from this stream in walk
/// order; no other packet shares it.
pub fn packet_rng(seed: u64, round: u64, source: u64) -> CounterRng {
    CounterRng::keyed(&[seed, round, source])
}

#[cfg(test)]
mod tests {
    use super::packet_rng;
    use rand::RngExt;

    #[test]
    fn coordinates_pin_the_stream() {
        let a: Vec<u64> = {
            let mut rng = packet_rng(2003, 3, 11);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = packet_rng(2003, 3, 11);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn each_coordinate_separates_streams() {
        let mut base = packet_rng(1, 2, 3);
        for (seed, round, source) in [(2, 2, 3), (1, 3, 3), (1, 2, 4)] {
            let mut other = packet_rng(seed, round, source);
            let same = (0..32)
                .filter(|_| base.next_u64() == other.next_u64())
                .count();
            assert_eq!(same, 0, "({seed}, {round}, {source})");
        }
    }

    #[test]
    fn floats_are_uniform_unit() {
        let mut rng = packet_rng(42, 0, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
