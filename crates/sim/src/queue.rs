//! The deterministic event queue.
//!
//! Internally the queue is an index min-heap over small `(time, seq,
//! slot)` keys plus a slab of event payloads with a free list: sifting
//! moves 24-byte keys instead of whole events, and `pop` /
//! `schedule_in` recycle slab slots and heap capacity, so the loop
//! allocates nothing at steady state (`tests/zero_alloc.rs` proves it
//! with a counting global allocator). The retired `BinaryHeap`
//! implementation survives as a test-only reference that a proptest
//! replays arbitrary `schedule_in`/`pop` interleavings against,
//! event-for-event.

use ami_units::TimeSpan;
use std::cmp::Ordering;

/// A heap key: absolute time plus the tie-breaking sequence number, and
/// the slab slot holding the event payload.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    time: TimeSpan,
    seq: u64,
    slot: u32,
}

impl HeapKey {
    /// Strict total order: earlier time first, ties broken FIFO by
    /// sequence number (sequence numbers are unique, so two keys never
    /// compare equal).
    #[inline]
    fn before(&self, other: &HeapKey) -> bool {
        match self.time.total_cmp(&other.time) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// The queue tracks *current simulation time*: popping an event advances
/// `now()` to that event's timestamp. Scheduling into the past is rejected.
///
/// # Example
///
/// ```
/// use ami_sim::EventQueue;
/// use ami_units::TimeSpan;
///
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.schedule_in(TimeSpan::from_seconds(1.0), 1);
/// q.schedule_in(TimeSpan::from_seconds(1.0), 2); // same instant: FIFO
/// assert_eq!(q.pop().unwrap().1, 1);
/// assert_eq!(q.pop().unwrap().1, 2);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Binary min-heap of keys (earliest `(time, seq)` at the root).
    heap: Vec<HeapKey>,
    /// Event payloads, indexed by `HeapKey::slot`.
    slots: Vec<Option<E>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    seq: u64,
    now: TimeSpan,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: TimeSpan::ZERO,
        }
    }

    /// An empty queue at time zero with room for `capacity` pending
    /// events before any (re)allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            seq: 0,
            now: TimeSpan::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> TimeSpan {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time.
    pub fn schedule_at(&mut self, at: TimeSpan, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({} < {})",
            at,
            self.now
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 pending events");
                self.slots.push(Some(event));
                // Grow the free list's capacity alongside the slab: every
                // live slot may be freed by a pop, and pops must stay
                // allocation-free (a draining queue would otherwise
                // reallocate `free` mid-loop).
                self.free.reserve(self.slots.len() - self.free.len());
                slot
            }
        };
        self.heap.push(HeapKey {
            time: at,
            seq: self.seq,
            slot,
        });
        self.seq += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedules `event` after a `delay` from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: TimeSpan, event: E) {
        assert!(!delay.is_negative(), "delay must be non-negative");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing simulation time to its timestamp.
    pub fn pop(&mut self) -> Option<(TimeSpan, E)> {
        let root = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.sift_down(last);
        }
        let event = self.slots[root.slot as usize]
            .take()
            .expect("scheduled slot holds an event");
        self.free.push(root.slot);
        self.now = root.time;
        Some((root.time, event))
    }

    /// Pops the earliest event only if it occurs at or before `deadline`;
    /// otherwise leaves the queue untouched and advances time to the
    /// deadline (useful for bounded-horizon runs).
    pub fn pop_until(&mut self, deadline: TimeSpan) -> Option<(TimeSpan, E)> {
        match self.heap.first() {
            Some(key) if key.time <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<TimeSpan> {
        self.heap.first().map(|key| key.time)
    }

    /// Hole-based sift: the key at `idx` is lifted out and parents slide
    /// down into the hole, so each level costs one key move instead of a
    /// three-move swap. Comparison decisions are identical to the swap
    /// form, so the pop order (and with it every downstream result) is
    /// unchanged.
    fn sift_up(&mut self, mut idx: usize) {
        let key = self.heap[idx];
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if key.before(&self.heap[parent]) {
                self.heap[idx] = self.heap[parent];
                idx = parent;
            } else {
                break;
            }
        }
        self.heap[idx] = key;
    }

    /// Places `key` starting from the root hole left by a pop: the hole
    /// walks unconditionally to the bottom choosing the smaller child
    /// (one comparison per level instead of two — `key` came from the
    /// heap's tail, so it almost always belongs near the bottom), then
    /// the key bubbles back up from there. Pop order is a pure function
    /// of the key set (the comparison is a strict total order, so the
    /// minimum is unique at every step), so the internal layout this
    /// produces cannot change any popped sequence — the `BinaryHeap`
    /// reference proptest pins that equivalence.
    fn sift_down(&mut self, key: HeapKey) {
        let len = self.heap.len();
        let mut idx = 0;
        loop {
            let left = 2 * idx + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap[right].before(&self.heap[left]) {
                right
            } else {
                left
            };
            self.heap[idx] = self.heap[child];
            idx = child;
        }
        self.heap[idx] = key;
        self.sift_up(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(3.0), 'c');
        q.schedule_at(TimeSpan::from_seconds(1.0), 'a');
        q.schedule_at(TimeSpan::from_seconds(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(TimeSpan::from_seconds(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(TimeSpan::from_seconds(2.0), ());
        assert_eq!(q.now(), TimeSpan::ZERO);
        q.pop();
        assert_eq!(q.now(), TimeSpan::from_seconds(2.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(2.0), ());
        q.pop();
        q.schedule_at(TimeSpan::from_seconds(1.0), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(5.0), 'x');
        assert!(q.pop_until(TimeSpan::from_seconds(4.0)).is_none());
        assert_eq!(q.now(), TimeSpan::from_seconds(4.0));
        assert_eq!(q.len(), 1);
        let (t, e) = q.pop_until(TimeSpan::from_seconds(6.0)).unwrap();
        assert_eq!((t.as_seconds(), e), (5.0, 'x'));
    }

    #[test]
    fn relative_scheduling_stacks() {
        let mut q = EventQueue::new();
        q.schedule_in(TimeSpan::from_seconds(1.0), 1);
        q.pop();
        q.schedule_in(TimeSpan::from_seconds(1.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_seconds(), 2.0);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(4);
        for i in 0..4u64 {
            q.schedule_in(TimeSpan::from_seconds(i as f64), i);
        }
        // Churn far more events than the peak population: the slab must
        // stay at the high-water mark.
        for i in 0..1000u64 {
            let (_, e) = q.pop().unwrap();
            q.schedule_in(TimeSpan::from_seconds(4.0), e + i);
        }
        assert_eq!(q.slots.len(), 4);
        assert_eq!(q.len(), 4);
    }
}

/// The retired `BinaryHeap` queue, kept verbatim as the ordering oracle
/// for the slab implementation (mirrors the reference Dijkstra scan the
/// network crate keeps for its heap router).
#[cfg(test)]
mod reference {
    use ami_units::TimeSpan;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Debug)]
    struct Scheduled<E> {
        time: TimeSpan,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest-first;
            // ties break FIFO by sequence number.
            other
                .time
                .total_cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The pre-slab event queue.
    #[derive(Debug)]
    pub struct ReferenceQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        seq: u64,
        now: TimeSpan,
    }

    impl<E> ReferenceQueue<E> {
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                seq: 0,
                now: TimeSpan::ZERO,
            }
        }

        pub fn now(&self) -> TimeSpan {
            self.now
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn schedule_in(&mut self, delay: TimeSpan, event: E) {
            assert!(!delay.is_negative(), "delay must be non-negative");
            let at = self.now + delay;
            self.heap.push(Scheduled {
                time: at,
                seq: self.seq,
                event,
            });
            self.seq += 1;
        }

        pub fn pop(&mut self) -> Option<(TimeSpan, E)> {
            let sched = self.heap.pop()?;
            self.now = sched.time;
            Some((sched.time, sched.event))
        }
    }
}

#[cfg(test)]
mod reference_equivalence {
    use super::reference::ReferenceQueue;
    use super::EventQueue;
    use ami_units::TimeSpan;
    use proptest::prelude::*;

    /// One step of an interleaving: schedule an event at one of a few
    /// coarse delays (coarse so simultaneous events — the tie-break case
    /// — are common), or pop (op == 1).
    fn interleaving() -> impl Strategy<Value = Vec<(u8, u8)>> {
        prop::collection::vec((0u8..2, 0u8..4), 1..200)
    }

    proptest! {
        /// The slab queue replays any schedule_in/pop interleaving
        /// event-for-event like the retired BinaryHeap implementation:
        /// same popped (time, payload) stream, same clock, same final
        /// population.
        #[test]
        fn slab_queue_matches_reference_event_for_event(ops in interleaving()) {
            let mut fast: EventQueue<u64> = EventQueue::new();
            let mut slow: ReferenceQueue<u64> = ReferenceQueue::new();
            for (step, &(op, delay)) in ops.iter().enumerate() {
                if op == 1 {
                    let a = fast.pop();
                    let b = slow.pop();
                    prop_assert_eq!(a, b);
                } else {
                    let delay = TimeSpan::from_seconds(f64::from(delay));
                    fast.schedule_in(delay, step as u64);
                    slow.schedule_in(delay, step as u64);
                }
                prop_assert_eq!(fast.now(), slow.now());
                prop_assert_eq!(fast.len(), slow.len());
            }
            // Drain: the leftovers must agree too.
            loop {
                let a = fast.pop();
                let b = slow.pop();
                prop_assert_eq!(a, b);
                if fast.is_empty() && slow.len() == 0 {
                    break;
                }
            }
        }
    }
}
