//! The deterministic event queue.

use ami_units::TimeSpan;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at an absolute time with a tie-breaking sequence.
#[derive(Debug)]
struct Scheduled<E> {
    time: TimeSpan,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first;
        // ties break FIFO by sequence number.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// The queue tracks *current simulation time*: popping an event advances
/// `now()` to that event's timestamp. Scheduling into the past is rejected.
///
/// # Example
///
/// ```
/// use ami_sim::EventQueue;
/// use ami_units::TimeSpan;
///
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.schedule_in(TimeSpan::from_seconds(1.0), 1);
/// q.schedule_in(TimeSpan::from_seconds(1.0), 2); // same instant: FIFO
/// assert_eq!(q.pop().unwrap().1, 1);
/// assert_eq!(q.pop().unwrap().1, 2);
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: TimeSpan,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: TimeSpan::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> TimeSpan {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time.
    pub fn schedule_at(&mut self, at: TimeSpan, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({} < {})",
            at,
            self.now
        );
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after a `delay` from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: TimeSpan, event: E) {
        assert!(!delay.is_negative(), "delay must be non-negative");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing simulation time to its timestamp.
    pub fn pop(&mut self) -> Option<(TimeSpan, E)> {
        let sched = self.heap.pop()?;
        self.now = sched.time;
        Some((sched.time, sched.event))
    }

    /// Pops the earliest event only if it occurs at or before `deadline`;
    /// otherwise leaves the queue untouched and advances time to the
    /// deadline (useful for bounded-horizon runs).
    pub fn pop_until(&mut self, deadline: TimeSpan) -> Option<(TimeSpan, E)> {
        match self.heap.peek() {
            Some(s) if s.time <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<TimeSpan> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(3.0), 'c');
        q.schedule_at(TimeSpan::from_seconds(1.0), 'a');
        q.schedule_at(TimeSpan::from_seconds(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(TimeSpan::from_seconds(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(TimeSpan::from_seconds(2.0), ());
        assert_eq!(q.now(), TimeSpan::ZERO);
        q.pop();
        assert_eq!(q.now(), TimeSpan::from_seconds(2.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(2.0), ());
        q.pop();
        q.schedule_at(TimeSpan::from_seconds(1.0), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(TimeSpan::from_seconds(5.0), 'x');
        assert!(q.pop_until(TimeSpan::from_seconds(4.0)).is_none());
        assert_eq!(q.now(), TimeSpan::from_seconds(4.0));
        assert_eq!(q.len(), 1);
        let (t, e) = q.pop_until(TimeSpan::from_seconds(6.0)).unwrap();
        assert_eq!((t.as_seconds(), e), (5.0, 'x'));
    }

    #[test]
    fn relative_scheduling_stacks() {
        let mut q = EventQueue::new();
        q.schedule_in(TimeSpan::from_seconds(1.0), 1);
        q.pop();
        q.schedule_in(TimeSpan::from_seconds(1.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_seconds(), 2.0);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}
