//! Seed-partitioned parallel execution with a serial-equality guarantee.
//!
//! Every sweep and Monte-Carlo study in the toolkit is *independent
//! work*: cell `(i)` of a grid or replication `k` of a study depends
//! only on its own inputs (and its own seed), never on a sibling. This
//! module exploits that to spread the work across OS threads while
//! keeping the toolkit's determinism contract intact:
//!
//! * work item `i` computes `f(i, item)` — a pure function of the index
//!   and input, never of scheduling;
//! * results are merged back **in index order**, so downstream consumers
//!   (e.g. [`summarize`](crate::summarize), which folds floats in sample
//!   order) see the byte-identical vector a serial loop would produce.
//!
//! Together these make parallel execution bit-exact with serial at any
//! thread count — a property enforced by `tests/determinism.rs` at 1, 2
//! and 8 threads.
//!
//! # Thread-count policy
//!
//! [`thread_count`] reads the `AMBIENCE_THREADS` environment variable
//! (any integer ≥ 1); when unset it uses
//! [`std::thread::available_parallelism`]. A set-but-invalid value
//! (`0`, `-1`, `abc`, empty) is a configuration error and panics with a
//! clear message — silently falling back would run a determinism
//! experiment at a thread count the operator never asked for. At 1 the
//! implementation runs the plain serial loop on the calling thread — no
//! pool, no channels — so CI boxes and laptops behave identically to
//! the pre-parallel toolkit.
//!
//! # Example
//!
//! ```
//! use ami_sim::runner::{par_map_indexed, par_map_indexed_threads};
//!
//! let squares = par_map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Any explicit thread count produces the identical result.
//! let with_8 = par_map_indexed_threads(8, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, with_8);
//! ```

#![deny(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "AMBIENCE_THREADS";

/// The worker-thread count: `AMBIENCE_THREADS` if set (which must then
/// be an integer ≥ 1), else [`std::thread::available_parallelism`],
/// else 1.
///
/// # Panics
///
/// Panics if `AMBIENCE_THREADS` is set but is not an integer ≥ 1 — a
/// misconfigured knob must fail loudly, not silently pick its own
/// parallelism.
pub fn thread_count() -> usize {
    let raw = std::env::var_os(THREADS_ENV).map(|v| v.to_string_lossy().into_owned());
    thread_count_from(raw.as_deref())
}

/// [`thread_count`] with the environment read factored out, so the
/// rejection rules are testable without mutating process-global state.
fn thread_count_from(raw: Option<&str>) -> usize {
    match raw {
        Some(raw) => {
            // Only plain decimal digits: `parse::<usize>` alone would
            // also accept `+8` or surrounding whitespace, which the
            // documented contract does not promise and which downstream
            // tooling would mis-log.
            let plain = !raw.is_empty() && raw.bytes().all(|b| b.is_ascii_digit());
            match raw.parse::<usize>() {
                Ok(n) if plain && n >= 1 => n,
                _ => panic!("{THREADS_ENV} must be an integer >= 1, got {raw:?}"),
            }
        }
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` with the default [`thread_count`], returning
/// results in item order. See [`par_map_indexed_threads`].
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed_threads(thread_count(), items, f)
}

/// Maps `f` over `items` on `threads` workers, returning results in
/// item order — bit-exact with the serial `items.iter().enumerate()`
/// loop as long as `f` is a pure function of `(index, item)`.
///
/// Work is distributed by atomic index-stealing, so uneven cell costs
/// (a dying network simulates slower than a healthy one) cannot starve
/// a worker; the merge order is fixed by the result slot, not by
/// completion order.
///
/// # Panics
///
/// Panics if `threads` is 0, or propagates the first panic raised by
/// `f` on any worker.
pub fn par_map_indexed_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(threads > 0, "at least one worker thread");
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    // Contention-free merge: each worker accumulates `(index, value)`
    // pairs in a private buffer — no shared slot vector, no lock on the
    // hot path — and the buffers are merged into index-ordered slots
    // only after every worker has joined.
    let mut buffers: Vec<Vec<(usize, U)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        local.push((idx, f(idx, &items[idx])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buffers.push(local),
                // Re-raise the worker's payload on the caller: a panic
                // inside `f` must propagate, not strand its siblings.
                Err(payload) => resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (idx, value) in buffers.into_iter().flatten() {
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// What the dispatch slot holds between the start and finish barriers.
enum JobSlot {
    /// No job posted (the state between `run` calls).
    Idle,
    /// A job to execute this generation. The pointer is valid for the
    /// whole generation: `RoundPool::run` does not return (and thus the
    /// borrow it erased does not end) until every worker has passed the
    /// finish barrier.
    Run(JobPtr),
    /// The scope is closing; workers exit after the start barrier.
    Exit,
}

/// A type-erased `&(dyn Fn(usize) + Sync)` smuggled across the barrier.
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (it is shared with every worker for the
// duration of one generation) and the pointer never outlives the `run`
// call that posted it.
unsafe impl Send for JobPtr {}

struct PoolShared {
    job: Mutex<JobSlot>,
    /// Generation start: `workers + 1` parties (the driver posts, then
    /// everyone crosses together).
    start: Barrier,
    /// Generation finish: the driver's `run` returns only after every
    /// worker has crossed, so the job borrow is never outlived.
    finish: Barrier,
    /// Panic payloads captured by workers this generation; re-raised on
    /// the driver thread so a panicking job cannot deadlock the barrier.
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

/// A reusable team of scoped worker threads synchronized at explicit
/// barriers — the intra-run region scheduler.
///
/// [`par_map_indexed_threads`] spawns a fresh scope per call, which is
/// fine for coarse work items (whole replications, sweep cells) but not
/// for a simulation that dispatches several short parallel phases *per
/// round* over thousands of rounds. `RoundPool` spawns its workers once
/// and re-dispatches them per phase: [`run`](Self::run) posts a job,
/// releases the start barrier, and returns after the finish barrier —
/// two barrier crossings instead of thread creation and teardown.
///
/// Determinism contract: `run(job)` executes `job(worker)` once per
/// worker index `0..threads` concurrently. The job partitions its work
/// by worker index (e.g. region `w` of a node partition); any merge
/// across workers is the caller's responsibility and must use a fixed
/// order, never completion order.
///
/// A panic inside a job is captured on the worker, carried across the
/// finish barrier, and re-raised by `run` on the driver thread — it
/// propagates instead of deadlocking the team.
///
/// # Example
///
/// ```
/// use ami_sim::runner::RoundPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// RoundPool::scoped(4, |pool| {
///     for _round in 0..3 {
///         pool.run(&|worker| {
///             total.fetch_add(worker as u64 + 1, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(total.into_inner(), 3 * (1 + 2 + 3 + 4));
/// ```
pub struct RoundPool<'scope> {
    shared: Option<&'scope PoolShared>,
    threads: usize,
}

impl RoundPool<'_> {
    /// Spawns `threads` workers for the duration of `f` and hands `f` a
    /// pool handle to dispatch jobs through. With `threads == 1` no
    /// worker is spawned at all: jobs run inline on the calling thread,
    /// so single-threaded configurations behave exactly like a plain
    /// loop (no pool, no barriers).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0, and propagates panics raised by `f` or
    /// by a job.
    pub fn scoped<R>(threads: usize, f: impl FnOnce(&RoundPool<'_>) -> R) -> R {
        assert!(threads > 0, "at least one worker thread");
        if threads == 1 {
            return f(&RoundPool {
                shared: None,
                threads: 1,
            });
        }
        let shared = PoolShared {
            job: Mutex::new(JobSlot::Idle),
            start: Barrier::new(threads + 1),
            finish: Barrier::new(threads + 1),
            panics: Mutex::new(Vec::new()),
        };
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let shared = &shared;
                scope.spawn(move || loop {
                    shared.start.wait();
                    let job = match &*shared.job.lock().expect("job slot lock") {
                        JobSlot::Idle => unreachable!("start barrier without a posted job"),
                        JobSlot::Run(JobPtr(ptr)) => *ptr,
                        JobSlot::Exit => break,
                    };
                    // SAFETY: the driver keeps the posted job borrow
                    // alive until the finish barrier below.
                    let job = unsafe { &*job };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(worker))) {
                        shared.panics.lock().expect("panic list lock").push(payload);
                    }
                    shared.finish.wait();
                });
            }
            let pool = RoundPool {
                shared: Some(&shared),
                threads,
            };
            // Guard `f` so workers always receive Exit — a panicking
            // driver must not leave the team parked on the start barrier.
            let result = catch_unwind(AssertUnwindSafe(|| f(&pool)));
            *shared.job.lock().expect("job slot lock") = JobSlot::Exit;
            shared.start.wait();
            match result {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            }
        })
    }

    /// The worker count this pool dispatches over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `job(worker)` once per worker index `0..threads()`,
    /// returning after every worker has finished. With one thread the
    /// job runs inline as `job(0)`.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic captured inside `job`.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared else {
            return job(0);
        };
        // SAFETY: the borrow's lifetime is erased only to cross the
        // dispatch slot; `run` does not return until every worker has
        // passed the finish barrier, so no worker holds the job past
        // the borrow's real lifetime.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        *shared.job.lock().expect("job slot lock") = JobSlot::Run(JobPtr(erased));
        shared.start.wait();
        shared.finish.wait();
        *shared.job.lock().expect("job slot lock") = JobSlot::Idle;
        let mut panics = shared.panics.lock().expect("panic list lock");
        if !panics.is_empty() {
            // Re-raise the first captured payload; drop any others from
            // the same generation so they cannot leak into a later run.
            let payload = panics.swap_remove(0);
            panics.clear();
            drop(panics);
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 16] {
            let parallel = par_map_indexed_threads(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let tagged = par_map_indexed_threads(2, &items, |idx, &s| format!("{idx}{s}"));
        assert_eq!(tagged, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed_threads(4, &empty, |_, &x: &u32| x).is_empty());
        assert_eq!(par_map_indexed_threads(4, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed_threads(32, &[1, 2], |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map_indexed_threads(0, &[1], |_, &x| x);
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed_threads(4, &items, |idx, &x| {
                if idx == 13 {
                    panic!("boom at {idx}");
                }
                x * 2
            })
        }));
        let payload = result.expect_err("panic inside f must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries its message");
        assert_eq!(message, "boom at 13");
    }

    #[test]
    fn round_pool_is_reusable_and_merges_bit_exactly() {
        // A per-worker partial sum over a fixed partition, merged in
        // worker order, must equal the serial fold — across many reuses
        // of the same worker team.
        let values: Vec<f64> = (0..1000).map(|k| (k as f64).sin()).collect();
        let chunk = values.len().div_ceil(4);
        let serial: f64 = values.chunks(chunk).map(|c| c.iter().sum::<f64>()).sum();
        for threads in [1, 2, 4, 8] {
            RoundPool::scoped(threads, |pool| {
                for _round in 0..50 {
                    let partials: Vec<Mutex<f64>> = (0..4).map(|_| Mutex::new(0.0)).collect();
                    pool.run(&|worker| {
                        // Workers own interleaved region stripes.
                        for region in (worker..4).step_by(pool.threads().max(1)) {
                            let sum: f64 = values
                                .chunks(chunk)
                                .nth(region)
                                .map(|c| c.iter().sum())
                                .unwrap_or(0.0);
                            *partials[region].lock().unwrap() = sum;
                        }
                    });
                    let merged: f64 = partials.iter().map(|p| *p.lock().unwrap()).sum();
                    assert_eq!(merged.to_bits(), serial.to_bits(), "threads {threads}");
                }
            });
        }
    }

    #[test]
    fn round_pool_job_panic_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            RoundPool::scoped(4, |pool| {
                pool.run(&|worker| {
                    if worker == 2 {
                        panic!("region failed");
                    }
                });
            })
        }));
        assert!(result.is_err(), "job panic must reach the scoped caller");
    }

    #[test]
    fn round_pool_survives_a_panicking_generation() {
        // After a job panic is re-raised, the same pool must still
        // dispatch later generations (the barrier team stays aligned).
        RoundPool::scoped(3, |pool| {
            let first = catch_unwind(AssertUnwindSafe(|| {
                pool.run(&|_worker| panic!("one bad round"));
            }));
            assert!(first.is_err());
            let hits = AtomicUsize::new(0);
            pool.run(&|_worker| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn round_pool_zero_threads_rejected() {
        RoundPool::scoped(0, |_pool| ());
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn valid_env_values_are_accepted() {
        assert_eq!(thread_count_from(Some("1")), 1);
        assert_eq!(thread_count_from(Some("8")), 8);
        assert!(thread_count_from(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn whitespace_padded_env_value_rejected() {
        let _ = thread_count_from(Some(" 4 "));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn zero_env_value_rejected() {
        let _ = thread_count_from(Some("0"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn negative_env_value_rejected() {
        let _ = thread_count_from(Some("-1"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn non_numeric_env_value_rejected() {
        let _ = thread_count_from(Some("abc"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn empty_env_value_rejected() {
        let _ = thread_count_from(Some(""));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn plus_prefixed_env_value_rejected() {
        // `parse::<usize>` alone accepts "+8"; the documented contract
        // is a plain decimal integer.
        let _ = thread_count_from(Some("+8"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn hex_env_value_rejected() {
        let _ = thread_count_from(Some("0x8"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn inner_whitespace_env_value_rejected() {
        let _ = thread_count_from(Some("4 2"));
    }
}
