//! Seed-partitioned parallel execution with a serial-equality guarantee.
//!
//! Every sweep and Monte-Carlo study in the toolkit is *independent
//! work*: cell `(i)` of a grid or replication `k` of a study depends
//! only on its own inputs (and its own seed), never on a sibling. This
//! module exploits that to spread the work across OS threads while
//! keeping the toolkit's determinism contract intact:
//!
//! * work item `i` computes `f(i, item)` — a pure function of the index
//!   and input, never of scheduling;
//! * results are merged back **in index order**, so downstream consumers
//!   (e.g. [`summarize`](crate::summarize), which folds floats in sample
//!   order) see the byte-identical vector a serial loop would produce.
//!
//! Together these make parallel execution bit-exact with serial at any
//! thread count — a property enforced by `tests/determinism.rs` at 1, 2
//! and 8 threads.
//!
//! # Thread-count policy
//!
//! [`thread_count`] reads the `AMBIENCE_THREADS` environment variable
//! (any integer ≥ 1); when unset it uses
//! [`std::thread::available_parallelism`]. A set-but-invalid value
//! (`0`, `-1`, `abc`, empty) is a configuration error and panics with a
//! clear message — silently falling back would run a determinism
//! experiment at a thread count the operator never asked for. At 1 the
//! implementation runs the plain serial loop on the calling thread — no
//! pool, no channels — so CI boxes and laptops behave identically to
//! the pre-parallel toolkit.
//!
//! # Example
//!
//! ```
//! use ami_sim::runner::{par_map_indexed, par_map_indexed_threads};
//!
//! let squares = par_map_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Any explicit thread count produces the identical result.
//! let with_8 = par_map_indexed_threads(8, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, with_8);
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "AMBIENCE_THREADS";

/// The worker-thread count: `AMBIENCE_THREADS` if set (which must then
/// be an integer ≥ 1), else [`std::thread::available_parallelism`],
/// else 1.
///
/// # Panics
///
/// Panics if `AMBIENCE_THREADS` is set but is not an integer ≥ 1 — a
/// misconfigured knob must fail loudly, not silently pick its own
/// parallelism.
pub fn thread_count() -> usize {
    let raw = std::env::var_os(THREADS_ENV).map(|v| v.to_string_lossy().into_owned());
    thread_count_from(raw.as_deref())
}

/// [`thread_count`] with the environment read factored out, so the
/// rejection rules are testable without mutating process-global state.
fn thread_count_from(raw: Option<&str>) -> usize {
    match raw {
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("{THREADS_ENV} must be an integer >= 1, got {raw:?}"),
        },
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` with the default [`thread_count`], returning
/// results in item order. See [`par_map_indexed_threads`].
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed_threads(thread_count(), items, f)
}

/// Maps `f` over `items` on `threads` workers, returning results in
/// item order — bit-exact with the serial `items.iter().enumerate()`
/// loop as long as `f` is a pure function of `(index, item)`.
///
/// Work is distributed by atomic index-stealing, so uneven cell costs
/// (a dying network simulates slower than a healthy one) cannot starve
/// a worker; the merge order is fixed by the result slot, not by
/// completion order.
///
/// # Panics
///
/// Panics if `threads` is 0, or propagates the first panic raised by
/// `f` on any worker.
pub fn par_map_indexed_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    assert!(threads > 0, "at least one worker thread");
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                // Compute outside the lock; the critical section is one
                // slot write.
                let value = f(idx, &items[idx]);
                slots.lock().expect("no poisoned slot vector")[idx] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 16] {
            let parallel = par_map_indexed_threads(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c"];
        let tagged = par_map_indexed_threads(2, &items, |idx, &s| format!("{idx}{s}"));
        assert_eq!(tagged, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_indexed_threads(4, &empty, |_, &x: &u32| x).is_empty());
        assert_eq!(par_map_indexed_threads(4, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map_indexed_threads(32, &[1, 2], |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = par_map_indexed_threads(0, &[1], |_, &x| x);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn valid_env_values_are_accepted() {
        assert_eq!(thread_count_from(Some("1")), 1);
        assert_eq!(thread_count_from(Some("8")), 8);
        assert_eq!(thread_count_from(Some(" 4 ")), 4); // whitespace ok
        assert!(thread_count_from(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn zero_env_value_rejected() {
        let _ = thread_count_from(Some("0"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn negative_env_value_rejected() {
        let _ = thread_count_from(Some("-1"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn non_numeric_env_value_rejected() {
        let _ = thread_count_from(Some("abc"));
    }

    #[test]
    #[should_panic(expected = "must be an integer >= 1")]
    fn empty_env_value_rejected() {
        let _ = thread_count_from(Some(""));
    }
}
