//! Per-device energy accounting over power states.

use ami_units::{Energy, Power, TimeSpan};
use std::collections::BTreeMap;

/// Integrates a device's energy exactly as it moves between named power
/// states, keeping a per-state time and energy breakdown.
///
/// # Example
///
/// ```
/// use ami_sim::EnergyMeter;
/// use ami_units::{Power, TimeSpan};
///
/// let mut m = EnergyMeter::new("sleep", Power::from_microwatts(2.0), TimeSpan::ZERO);
/// m.transition("rx", Power::from_milliwatts(15.0), TimeSpan::from_seconds(10.0));
/// m.transition("sleep", Power::from_microwatts(2.0), TimeSpan::from_seconds(10.1));
/// let total = m.total_energy(TimeSpan::from_seconds(20.0));
/// // 10 s sleep + 0.1 s rx + 9.9 s sleep ≈ 1.54 mJ.
/// assert!((total.as_millijoules() - 1.5398).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    state: String,
    power: Power,
    since: TimeSpan,
    by_state_energy: BTreeMap<String, Energy>,
    by_state_time: BTreeMap<String, TimeSpan>,
    transitions: u64,
}

impl EnergyMeter {
    /// Starts metering in `state` drawing `power` at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative.
    pub fn new(state: impl Into<String>, power: Power, start: TimeSpan) -> Self {
        assert!(!power.is_negative(), "state power must be non-negative");
        Self {
            state: state.into(),
            power,
            since: start,
            by_state_energy: BTreeMap::new(),
            by_state_time: BTreeMap::new(),
            transitions: 0,
        }
    }

    /// The current state name.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// The current state's power.
    pub fn power(&self) -> Power {
        self.power
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Folds the elapsed interval into the breakdown.
    fn settle(&mut self, now: TimeSpan) {
        let dt = now - self.since;
        assert!(!dt.is_negative(), "time must not run backwards");
        let e = self.power * dt;
        *self
            .by_state_energy
            .entry(self.state.clone())
            .or_insert(Energy::ZERO) += e;
        *self
            .by_state_time
            .entry(self.state.clone())
            .or_insert(TimeSpan::ZERO) += dt;
        self.since = now;
    }

    /// Moves to a new state at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition or `power` is negative.
    pub fn transition(&mut self, state: impl Into<String>, power: Power, now: TimeSpan) {
        assert!(!power.is_negative(), "state power must be non-negative");
        self.settle(now);
        self.state = state.into();
        self.power = power;
        self.transitions += 1;
    }

    /// Adds an instantaneous energy cost (e.g. a startup transient) to the
    /// named bucket without changing state.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn charge(&mut self, bucket: impl Into<String>, energy: Energy) {
        assert!(!energy.is_negative(), "charged energy must be non-negative");
        *self
            .by_state_energy
            .entry(bucket.into())
            .or_insert(Energy::ZERO) += energy;
    }

    /// Total energy consumed up to `now` (including the open interval).
    pub fn total_energy(&self, now: TimeSpan) -> Energy {
        let open = self.power * (now - self.since).max(TimeSpan::ZERO);
        self.by_state_energy.values().copied().sum::<Energy>() + open
    }

    /// Average power over `[start, now]` given the metering start time.
    pub fn average_power(&self, start: TimeSpan, now: TimeSpan) -> Power {
        let span = now - start;
        if span <= TimeSpan::ZERO {
            return Power::ZERO;
        }
        self.total_energy(now) / span
    }

    /// Energy attributed to `state` in closed intervals so far.
    pub fn energy_in(&self, state: &str) -> Energy {
        self.by_state_energy
            .get(state)
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Time spent in `state` in closed intervals so far.
    pub fn time_in(&self, state: &str) -> TimeSpan {
        self.by_state_time
            .get(state)
            .copied()
            .unwrap_or(TimeSpan::ZERO)
    }

    /// The per-state energy breakdown (closed intervals only), sorted by
    /// state name.
    pub fn breakdown(&self) -> Vec<(String, Energy)> {
        self.by_state_energy
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64) -> TimeSpan {
        TimeSpan::from_seconds(t)
    }

    #[test]
    fn constant_state_integrates_linearly() {
        let m = EnergyMeter::new("on", Power::from_watts(2.0), s(0.0));
        assert_eq!(m.total_energy(s(5.0)).as_joules(), 10.0);
        assert_eq!(m.average_power(s(0.0), s(5.0)).as_watts(), 2.0);
    }

    #[test]
    fn transitions_split_the_integral() {
        let mut m = EnergyMeter::new("a", Power::from_watts(1.0), s(0.0));
        m.transition("b", Power::from_watts(3.0), s(2.0));
        m.transition("a", Power::from_watts(1.0), s(4.0));
        // closed: a 2 J, b 6 J; open: a 1 J more by t=5.
        assert_eq!(m.energy_in("a").as_joules(), 2.0);
        assert_eq!(m.energy_in("b").as_joules(), 6.0);
        assert_eq!(m.total_energy(s(5.0)).as_joules(), 9.0);
        assert_eq!(m.time_in("b").as_seconds(), 2.0);
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn charges_add_to_buckets() {
        let mut m = EnergyMeter::new("sleep", Power::ZERO, s(0.0));
        m.charge("startup", Energy::from_microjoules(5.0));
        m.charge("startup", Energy::from_microjoules(5.0));
        assert_eq!(m.energy_in("startup").as_microjoules(), 10.0);
        assert_eq!(m.total_energy(s(10.0)).as_microjoules(), 10.0);
    }

    #[test]
    fn breakdown_lists_all_states() {
        let mut m = EnergyMeter::new("x", Power::from_watts(1.0), s(0.0));
        m.transition("y", Power::from_watts(1.0), s(1.0));
        m.transition("z", Power::from_watts(1.0), s(2.0));
        let names: Vec<String> = m.breakdown().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_reversal_panics() {
        let mut m = EnergyMeter::new("a", Power::ZERO, s(5.0));
        m.transition("b", Power::ZERO, s(4.0));
    }

    #[test]
    fn average_power_of_duty_cycle() {
        let mut m = EnergyMeter::new("on", Power::from_milliwatts(10.0), s(0.0));
        m.transition("off", Power::ZERO, s(1.0));
        // 1 s on out of 10 s → 1 mW average.
        let avg = m.average_power(s(0.0), s(10.0));
        assert!((avg.as_milliwatts() - 1.0).abs() < 1e-12);
    }
}
