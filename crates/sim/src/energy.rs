//! Per-device energy accounting over power states.
//!
//! State names are *interned*: the first time a name is seen it is
//! assigned a dense [`StateId`] slot, and every subsequent transition or
//! charge is plain indexed arithmetic over `Vec` accumulators — no
//! per-transition `String` clone, no tree/hash walk with owned keys.
//! Day-scale event-driven simulations make tens of thousands of
//! transitions over a handful of states, so the hot path is
//! [`EnergyMeter::transition_id`] / [`EnergyMeter::charge_id`] on
//! pre-interned ids, which allocate nothing at steady state. The
//! string-keyed entry points ([`EnergyMeter::transition`],
//! [`EnergyMeter::charge`]) intern on first use and then cost one
//! by-reference hash lookup.

use ami_units::{Energy, Power, TimeSpan};
use std::collections::HashMap;

/// A dense handle for an interned state (or charge-bucket) name,
/// obtained from [`EnergyMeter::intern`]. Ids are only meaningful for
/// the meter that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The dense slot index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Integrates a device's energy exactly as it moves between named power
/// states, keeping a per-state time and energy breakdown.
///
/// # Example
///
/// ```
/// use ami_sim::EnergyMeter;
/// use ami_units::{Power, TimeSpan};
///
/// let mut m = EnergyMeter::new("sleep", Power::from_microwatts(2.0), TimeSpan::ZERO);
/// m.transition("rx", Power::from_milliwatts(15.0), TimeSpan::from_seconds(10.0));
/// m.transition("sleep", Power::from_microwatts(2.0), TimeSpan::from_seconds(10.1));
/// let total = m.total_energy(TimeSpan::from_seconds(20.0));
/// // 10 s sleep + 0.1 s rx + 9.9 s sleep ≈ 1.54 mJ.
/// assert!((total.as_millijoules() - 1.5398).abs() < 1e-3);
/// ```
///
/// The allocation-free hot path pre-interns the state set once:
///
/// ```
/// use ami_sim::EnergyMeter;
/// use ami_units::{Power, TimeSpan};
///
/// let mut m = EnergyMeter::new("sleep", Power::from_microwatts(2.0), TimeSpan::ZERO);
/// let rx = m.intern("rx");
/// let sleep = m.intern("sleep");
/// for k in 0..1000 {
///     let t = TimeSpan::from_seconds(k as f64);
///     m.transition_id(rx, Power::from_milliwatts(15.0), t);
///     m.transition_id(sleep, Power::from_microwatts(2.0), t + TimeSpan::from_millis(1.0));
/// }
/// assert_eq!(m.transitions(), 2000);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    state: StateId,
    power: Power,
    since: TimeSpan,
    /// Interned names, indexed by `StateId`.
    names: Vec<String>,
    /// Name → id lookup for the string-keyed entry points.
    index: HashMap<String, u32>,
    /// Ids in name-sorted order, maintained incrementally at intern time
    /// so `breakdown()` never re-sorts.
    sorted: Vec<u32>,
    /// Closed-interval energy per id.
    energy: Vec<Energy>,
    /// Closed-interval time per id.
    time: Vec<TimeSpan>,
    /// Whether the id was ever settled into or charged — `breakdown()`
    /// lists exactly these, matching the lazily-inserted map the meter
    /// used to keep.
    touched: Vec<bool>,
    transitions: u64,
}

impl EnergyMeter {
    /// Starts metering in `state` drawing `power` at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative.
    pub fn new(state: impl AsRef<str>, power: Power, start: TimeSpan) -> Self {
        assert!(!power.is_negative(), "state power must be non-negative");
        let mut meter = Self {
            state: StateId(0),
            power,
            since: start,
            names: Vec::new(),
            index: HashMap::new(),
            sorted: Vec::new(),
            energy: Vec::new(),
            time: Vec::new(),
            touched: Vec::new(),
            transitions: 0,
        };
        meter.state = meter.intern(state);
        meter
    }

    /// Interns `name`, returning its dense id; the same name always maps
    /// to the same id. Interning is the only allocating operation — do it
    /// at registration time and drive the simulation loop through
    /// [`transition_id`](Self::transition_id) /
    /// [`charge_id`](Self::charge_id).
    pub fn intern(&mut self, name: impl AsRef<str>) -> StateId {
        let name = name.as_ref();
        if let Some(&id) = self.index.get(name) {
            return StateId(id);
        }
        let id = u32::try_from(self.names.len()).expect("fewer than 2^32 states");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        let at = self
            .sorted
            .partition_point(|&other| self.names[other as usize].as_str() < name);
        self.sorted.insert(at, id);
        self.energy.push(Energy::ZERO);
        self.time.push(TimeSpan::ZERO);
        self.touched.push(false);
        StateId(id)
    }

    /// The interned name behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this meter.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.names[id.index()]
    }

    /// The current state name.
    pub fn state(&self) -> &str {
        &self.names[self.state.index()]
    }

    /// The current state's id.
    pub fn state_id(&self) -> StateId {
        self.state
    }

    /// The current state's power.
    pub fn power(&self) -> Power {
        self.power
    }

    /// Number of state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Folds the elapsed interval into the breakdown.
    #[inline]
    fn settle(&mut self, now: TimeSpan) {
        let dt = now - self.since;
        assert!(!dt.is_negative(), "time must not run backwards");
        let slot = self.state.index();
        self.energy[slot] += self.power * dt;
        self.time[slot] += dt;
        self.touched[slot] = true;
        self.since = now;
    }

    /// Moves to a new state at time `now`, interning `state` if needed.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition or `power` is negative.
    pub fn transition(&mut self, state: impl AsRef<str>, power: Power, now: TimeSpan) {
        let id = self.intern(state);
        self.transition_id(id, power, now);
    }

    /// Moves to the pre-interned state `id` at time `now` — the
    /// allocation-free hot path.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last transition, `power` is negative,
    /// or `id` was not issued by this meter.
    #[inline]
    pub fn transition_id(&mut self, id: StateId, power: Power, now: TimeSpan) {
        assert!(!power.is_negative(), "state power must be non-negative");
        assert!(id.index() < self.names.len(), "unknown state id");
        self.settle(now);
        self.state = id;
        self.power = power;
        self.transitions += 1;
    }

    /// Adds an instantaneous energy cost (e.g. a startup transient) to the
    /// named bucket without changing state, interning `bucket` if needed.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn charge(&mut self, bucket: impl AsRef<str>, energy: Energy) {
        let id = self.intern(bucket);
        self.charge_id(id, energy);
    }

    /// [`charge`](Self::charge) against a pre-interned bucket — the
    /// allocation-free hot path.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative or `id` was not issued by this meter.
    #[inline]
    pub fn charge_id(&mut self, id: StateId, energy: Energy) {
        assert!(!energy.is_negative(), "charged energy must be non-negative");
        self.energy[id.index()] += energy;
        self.touched[id.index()] = true;
    }

    /// Total energy consumed up to `now` (including the open interval).
    pub fn total_energy(&self, now: TimeSpan) -> Energy {
        let open = self.power * (now - self.since).max(TimeSpan::ZERO);
        // Fold in name-sorted order: bit-identical to the sorted-map
        // accumulator this meter used to keep.
        self.breakdown_iter().map(|(_, e)| e).sum::<Energy>() + open
    }

    /// Average power over `[start, now]` given the metering start time.
    pub fn average_power(&self, start: TimeSpan, now: TimeSpan) -> Power {
        let span = now - start;
        if span <= TimeSpan::ZERO {
            return Power::ZERO;
        }
        self.total_energy(now) / span
    }

    /// Energy attributed to `state` in closed intervals so far.
    pub fn energy_in(&self, state: &str) -> Energy {
        self.index
            .get(state)
            .map(|&id| self.energy[id as usize])
            .unwrap_or(Energy::ZERO)
    }

    /// Time spent in `state` in closed intervals so far.
    pub fn time_in(&self, state: &str) -> TimeSpan {
        self.index
            .get(state)
            .map(|&id| self.time[id as usize])
            .unwrap_or(TimeSpan::ZERO)
    }

    /// The per-state energy breakdown (closed intervals only), sorted by
    /// state name.
    pub fn breakdown(&self) -> Vec<(String, Energy)> {
        self.breakdown_iter()
            .map(|(name, e)| (name.to_owned(), e))
            .collect()
    }

    /// Borrowing [`breakdown`](Self::breakdown): the same name-sorted
    /// rows without cloning any key — use this when reading the
    /// breakdown repeatedly mid-run (e.g. per observed round).
    pub fn breakdown_iter(&self) -> impl Iterator<Item = (&str, Energy)> + '_ {
        self.sorted
            .iter()
            .filter(|&&id| self.touched[id as usize])
            .map(|&id| (self.names[id as usize].as_str(), self.energy[id as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64) -> TimeSpan {
        TimeSpan::from_seconds(t)
    }

    #[test]
    fn constant_state_integrates_linearly() {
        let m = EnergyMeter::new("on", Power::from_watts(2.0), s(0.0));
        assert_eq!(m.total_energy(s(5.0)).as_joules(), 10.0);
        assert_eq!(m.average_power(s(0.0), s(5.0)).as_watts(), 2.0);
    }

    #[test]
    fn transitions_split_the_integral() {
        let mut m = EnergyMeter::new("a", Power::from_watts(1.0), s(0.0));
        m.transition("b", Power::from_watts(3.0), s(2.0));
        m.transition("a", Power::from_watts(1.0), s(4.0));
        // closed: a 2 J, b 6 J; open: a 1 J more by t=5.
        assert_eq!(m.energy_in("a").as_joules(), 2.0);
        assert_eq!(m.energy_in("b").as_joules(), 6.0);
        assert_eq!(m.total_energy(s(5.0)).as_joules(), 9.0);
        assert_eq!(m.time_in("b").as_seconds(), 2.0);
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn charges_add_to_buckets() {
        let mut m = EnergyMeter::new("sleep", Power::ZERO, s(0.0));
        m.charge("startup", Energy::from_microjoules(5.0));
        m.charge("startup", Energy::from_microjoules(5.0));
        assert_eq!(m.energy_in("startup").as_microjoules(), 10.0);
        assert_eq!(m.total_energy(s(10.0)).as_microjoules(), 10.0);
    }

    #[test]
    fn breakdown_lists_all_states() {
        let mut m = EnergyMeter::new("x", Power::from_watts(1.0), s(0.0));
        m.transition("y", Power::from_watts(1.0), s(1.0));
        m.transition("z", Power::from_watts(1.0), s(2.0));
        let names: Vec<String> = m.breakdown().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn breakdown_is_name_sorted_whatever_the_intern_order() {
        let mut m = EnergyMeter::new("zeta", Power::from_watts(1.0), s(0.0));
        m.charge("alpha", Energy::from_joules(1.0));
        m.charge("mid", Energy::from_joules(2.0));
        m.transition("alpha", Power::ZERO, s(1.0)); // settles zeta
        let names: Vec<String> = m.breakdown().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn interned_ids_are_stable_and_shared_with_string_paths() {
        let mut m = EnergyMeter::new("a", Power::from_watts(1.0), s(0.0));
        let a = m.intern("a");
        let b = m.intern("b");
        assert_eq!(m.intern("a"), a);
        assert_eq!(m.state_id(), a);
        assert_eq!(m.state_name(b), "b");
        m.transition_id(b, Power::from_watts(3.0), s(2.0));
        assert_eq!(m.state(), "b");
        // The string path lands in the same accumulator slots.
        m.transition("a", Power::from_watts(1.0), s(4.0));
        assert_eq!(m.energy_in("a").as_joules(), 2.0);
        assert_eq!(m.energy_in("b").as_joules(), 6.0);
    }

    #[test]
    fn breakdown_iter_matches_breakdown_without_cloning() {
        let mut m = EnergyMeter::new("b", Power::from_watts(1.0), s(0.0));
        m.transition("a", Power::from_watts(2.0), s(1.0));
        m.transition("b", Power::from_watts(1.0), s(2.0));
        let owned = m.breakdown();
        let borrowed: Vec<(String, Energy)> =
            m.breakdown_iter().map(|(n, e)| (n.to_owned(), e)).collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    #[should_panic(expected = "unknown state id")]
    fn foreign_state_id_rejected() {
        let mut other = EnergyMeter::new("a", Power::ZERO, s(0.0));
        let foreign = other.intern("somewhere else");
        let _ = other.intern("pad");
        let mut m = EnergyMeter::new("a", Power::ZERO, s(0.0));
        m.transition_id(StateId(foreign.0 + 1), Power::ZERO, s(1.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_reversal_panics() {
        let mut m = EnergyMeter::new("a", Power::ZERO, s(5.0));
        m.transition("b", Power::ZERO, s(4.0));
    }

    #[test]
    fn average_power_of_duty_cycle() {
        let mut m = EnergyMeter::new("on", Power::from_milliwatts(10.0), s(0.0));
        m.transition("off", Power::ZERO, s(1.0));
        // 1 s on out of 10 s → 1 mW average.
        let avg = m.average_power(s(0.0), s(10.0));
        assert!((avg.as_milliwatts() - 1.0).abs() < 1e-12);
    }
}
