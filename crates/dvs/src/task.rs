//! Periodic task sets measured in operations.

use ami_units::{ComputeRate, OpCount, TimeSpan};

/// An implicit-deadline periodic task: a job of up to `wcet_ops` operations
/// is released every `period` and must finish within it.
///
/// Actual per-job demand varies; [`PeriodicTask::best_case_fraction`]
/// bounds it from below (jobs draw uniformly in
/// `[best_case_fraction, 1] × wcet_ops` during simulation).
///
/// # Example
///
/// ```
/// use ami_dvs::PeriodicTask;
/// use ami_units::{OpCount, TimeSpan};
///
/// let audio = PeriodicTask::new("audio", TimeSpan::from_millis(24.0),
///                               OpCount::from_mega_ops(0.5));
/// assert!((audio.utilization_ops().as_mops() - 20.833).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTask {
    name: String,
    period: TimeSpan,
    wcet_ops: OpCount,
    best_case_fraction: f64,
}

impl PeriodicTask {
    /// Creates a task with a default best-case demand of 40 % of WCET
    /// (the slack-rich media-decode regime).
    ///
    /// # Panics
    ///
    /// Panics if `period` or `wcet_ops` is not positive.
    pub fn new(name: impl Into<String>, period: TimeSpan, wcet_ops: OpCount) -> Self {
        assert!(period > TimeSpan::ZERO, "period must be positive");
        assert!(wcet_ops.as_ops() > 0.0, "WCET must be positive");
        Self {
            name: name.into(),
            period,
            wcet_ops,
            best_case_fraction: 0.4,
        }
    }

    /// Sets the best-case demand fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn with_best_case_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "best-case fraction must lie in (0, 1]"
        );
        self.best_case_fraction = fraction;
        self
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Release period (= deadline).
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// Worst-case operations per job.
    pub fn wcet_ops(&self) -> OpCount {
        self.wcet_ops
    }

    /// Best-case demand as a fraction of WCET.
    pub fn best_case_fraction(&self) -> f64 {
        self.best_case_fraction
    }

    /// Worst-case sustained demand: `wcet / period`.
    pub fn utilization_ops(&self) -> ComputeRate {
        ComputeRate::new(self.wcet_ops.as_ops() / self.period.as_seconds())
    }
}

/// A set of periodic tasks scheduled together.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<PeriodicTask>,
}

impl TaskSet {
    /// Creates a set.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(tasks: Vec<PeriodicTask>) -> Self {
        assert!(!tasks.is_empty(), "a task set needs at least one task");
        Self { tasks }
    }

    /// The tasks.
    pub fn tasks(&self) -> &[PeriodicTask] {
        &self.tasks
    }

    /// Total worst-case demand of the set.
    pub fn total_demand(&self) -> ComputeRate {
        ComputeRate::new(
            self.tasks
                .iter()
                .map(|t| t.utilization_ops().as_ops_per_second())
                .sum(),
        )
    }

    /// Worst-case utilization against a processor of `capacity`.
    pub fn utilization(&self, capacity: ComputeRate) -> f64 {
        self.total_demand().as_ops_per_second() / capacity.as_ops_per_second()
    }

    /// A video-playback task set: one frame-decode task whose demand
    /// varies wildly frame-to-frame (I/P/B frames), plus audio. The
    /// high-variance companion to [`TaskSet::personal_audio`]: the gap
    /// between WCET-based and clairvoyant policies is largest here.
    pub fn video_playback() -> Self {
        Self::new(vec![
            PeriodicTask::new(
                "frame decode",
                TimeSpan::from_millis(40.0),
                OpCount::from_mega_ops(8.0),
            )
            .with_best_case_fraction(0.15),
            PeriodicTask::new(
                "audio decode",
                TimeSpan::from_millis(24.0),
                OpCount::from_mega_ops(0.6),
            ),
        ])
    }

    /// A personal-audio-node task set (CS2): channel decode + audio decode
    /// + user interface housekeeping.
    pub fn personal_audio() -> Self {
        Self::new(vec![
            PeriodicTask::new(
                "channel decode",
                TimeSpan::from_millis(24.0),
                OpCount::from_mega_ops(1.2),
            ),
            PeriodicTask::new(
                "audio decode",
                TimeSpan::from_millis(24.0),
                OpCount::from_mega_ops(0.6),
            ),
            PeriodicTask::new(
                "ui housekeeping",
                TimeSpan::from_millis(100.0),
                OpCount::from_mega_ops(0.1),
            )
            .with_best_case_fraction(0.1),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_sums_over_tasks() {
        let set = TaskSet::new(vec![
            PeriodicTask::new(
                "a",
                TimeSpan::from_millis(10.0),
                OpCount::from_mega_ops(1.0),
            ),
            PeriodicTask::new(
                "b",
                TimeSpan::from_millis(20.0),
                OpCount::from_mega_ops(1.0),
            ),
        ]);
        // 100 + 50 MOPS.
        assert!((set.total_demand().as_mops() - 150.0).abs() < 1e-9);
        assert!((set.utilization(ComputeRate::from_mops(300.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn personal_audio_is_under_100_mops() {
        let demand = TaskSet::personal_audio().total_demand();
        assert!(demand.as_mops() > 50.0 && demand.as_mops() < 100.0);
    }

    #[test]
    fn video_playback_is_heavier_and_more_variable() {
        let audio = TaskSet::personal_audio();
        let video = TaskSet::video_playback();
        assert!(video.total_demand() > audio.total_demand());
        let min_bcet = video
            .tasks()
            .iter()
            .map(|t| t.best_case_fraction())
            .fold(1.0, f64::min);
        assert!(min_bcet < 0.2, "frame decode must be high-variance");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_set_rejected() {
        let _ = TaskSet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "best-case fraction")]
    fn bad_fraction_rejected() {
        let _ = PeriodicTask::new("x", TimeSpan::from_millis(1.0), OpCount::from_ops(1.0))
            .with_best_case_fraction(0.0);
    }
}
