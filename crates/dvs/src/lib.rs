//! Dynamic voltage scaling and power management for the personal (mW)
//! device class.
//!
//! The keynote's personal node runs signal-processing task sets on a
//! battery; its central IC-design lever is running *just fast enough*:
//! because dynamic energy scales with `V²` and achievable frequency only
//! ~linearly in `V`, any slack converted into lower supply voltage is a
//! quadratic energy win. This crate provides:
//!
//! * [`PeriodicTask`]/[`TaskSet`] — implicit-deadline periodic tasks
//!   measured in operations;
//! * [`DvsPolicy`] — the frequency-selection policies compared in F4
//!   (none, per-job worst-case stretch, utilization-static, clairvoyant);
//! * [`simulate_taskset`] — a job-accurate simulation on an
//!   `ami-arch` [`Processor`](ami_arch::Processor), reporting energy,
//!   deadline misses and average power;
//! * [`Dpm`] — timeout-based shutdown for the gaps DVS cannot fill.
//!
//! # Example
//!
//! ```
//! use ami_arch::{ArchitectureClass, Processor};
//! use ami_dvs::{DvsPolicy, PeriodicTask, TaskSet, simulate_taskset};
//! use ami_tech::TechnologyNode;
//! use ami_units::{OpCount, TimeSpan};
//!
//! let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
//! let tasks = TaskSet::new(vec![PeriodicTask::new(
//!     "audio", TimeSpan::from_millis(24.0), OpCount::from_mega_ops(0.5),
//! )]);
//! let none = simulate_taskset(&dsp, &tasks, DvsPolicy::None, TimeSpan::from_seconds(10.0), 7);
//! let dvs = simulate_taskset(&dsp, &tasks, DvsPolicy::WorstCaseStretch,
//!                            TimeSpan::from_seconds(10.0), 7);
//! assert!(dvs.total_energy < none.total_energy);
//! assert_eq!(dvs.deadline_misses, 0);
//! ```

pub mod dpm;
pub mod levels;
pub mod policy;
pub mod simulate;
pub mod task;

pub use dpm::Dpm;
pub use levels::FrequencyLadder;
pub use policy::DvsPolicy;
pub use simulate::{simulate_taskset, simulate_taskset_with_levels, DvsReport};
pub use task::{PeriodicTask, TaskSet};
