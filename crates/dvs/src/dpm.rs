//! Timeout-based dynamic power management for idle gaps.

use ami_units::{Energy, Power, TimeSpan};

/// A shutdown policy: after `timeout` of idleness, drop to `sleep_power`;
/// waking back up costs `wake_energy`.
///
/// # Example
///
/// ```
/// use ami_dvs::Dpm;
/// use ami_units::{Energy, Power, TimeSpan};
///
/// let dpm = Dpm::new(Power::from_microwatts(10.0), Energy::from_microjoules(50.0),
///                    TimeSpan::from_millis(5.0));
/// let idle = Power::from_milliwatts(2.0);
/// // A long gap is cheaper asleep, a tiny one is not.
/// let long = dpm.gap_energy(idle, TimeSpan::from_seconds(1.0));
/// assert!(long < idle * TimeSpan::from_seconds(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dpm {
    sleep_power: Power,
    wake_energy: Energy,
    timeout: TimeSpan,
}

impl Dpm {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if any argument is negative.
    pub fn new(sleep_power: Power, wake_energy: Energy, timeout: TimeSpan) -> Self {
        assert!(
            !sleep_power.is_negative(),
            "sleep power must be non-negative"
        );
        assert!(
            !wake_energy.is_negative(),
            "wake energy must be non-negative"
        );
        assert!(!timeout.is_negative(), "timeout must be non-negative");
        Self {
            sleep_power,
            wake_energy,
            timeout,
        }
    }

    /// Sleep-state power.
    pub fn sleep_power(&self) -> Power {
        self.sleep_power
    }

    /// Energy of one wake-up.
    pub fn wake_energy(&self) -> Energy {
        self.wake_energy
    }

    /// The idle-time threshold after which the device shuts down.
    pub fn timeout(&self) -> TimeSpan {
        self.timeout
    }

    /// The gap length beyond which sleeping (immediately) would pay off
    /// against idling at `idle_power` — the classic break-even time.
    ///
    /// # Panics
    ///
    /// Panics if `idle_power` does not exceed the sleep power.
    pub fn breakeven_gap(&self, idle_power: Power) -> TimeSpan {
        let saving = idle_power - self.sleep_power;
        assert!(
            saving > Power::ZERO,
            "idle power must exceed sleep power for DPM to pay"
        );
        self.wake_energy / saving
    }

    /// Energy spent over an idle gap of length `gap` under this policy,
    /// idling at `idle_power` until the timeout then sleeping.
    pub fn gap_energy(&self, idle_power: Power, gap: TimeSpan) -> Energy {
        assert!(!gap.is_negative(), "gap must be non-negative");
        if gap <= self.timeout {
            idle_power * gap
        } else {
            idle_power * self.timeout + self.sleep_power * (gap - self.timeout) + self.wake_energy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpm() -> Dpm {
        Dpm::new(
            Power::from_microwatts(10.0),
            Energy::from_microjoules(100.0),
            TimeSpan::from_millis(10.0),
        )
    }

    #[test]
    fn short_gap_stays_idle() {
        let idle = Power::from_milliwatts(1.0);
        let gap = TimeSpan::from_millis(5.0);
        assert_eq!(dpm().gap_energy(idle, gap), idle * gap);
    }

    #[test]
    fn long_gap_sleeps_and_saves() {
        let idle = Power::from_milliwatts(1.0);
        let gap = TimeSpan::from_seconds(2.0);
        let with = dpm().gap_energy(idle, gap);
        let without = idle * gap;
        assert!(with < without);
    }

    #[test]
    fn breakeven_formula() {
        // 100 µJ wake / (1 mW − 10 µW) ≈ 101 ms.
        let be = dpm().breakeven_gap(Power::from_milliwatts(1.0));
        assert!((be.as_millis() - 101.0).abs() < 1.0);
    }

    #[test]
    fn pathological_gap_just_over_timeout_can_lose() {
        // Right past the timeout the wake energy is charged but almost no
        // sleep time is banked: the policy loses — the classic DPM hazard.
        let idle = Power::from_milliwatts(1.0);
        let gap = TimeSpan::from_millis(11.0);
        let with = dpm().gap_energy(idle, gap);
        let without = idle * gap;
        assert!(with > without);
    }

    #[test]
    #[should_panic(expected = "exceed sleep power")]
    fn breakeven_needs_saving() {
        let _ = dpm().breakeven_gap(Power::from_microwatts(5.0));
    }
}
