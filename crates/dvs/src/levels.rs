//! Discrete frequency ladders: real DVS hardware offers a handful of
//! voltage/frequency operating points, not a continuum.
//!
//! Quantizing a policy's ideal rate *up* to the next available level is
//! safe (deadlines still met) but gives back part of the voltage win —
//! the quantization loss that ablation A4 measures.

use ami_units::ComputeRate;

/// A set of normalized speed levels in `(0, 1]`, always containing 1.0.
///
/// # Example
///
/// ```
/// use ami_dvs::FrequencyLadder;
/// use ami_units::ComputeRate;
///
/// let ladder = FrequencyLadder::new(vec![0.25, 0.5, 0.75]);
/// let peak = ComputeRate::from_mops(1000.0);
/// let q = ladder.quantize_up(ComputeRate::from_mops(300.0), peak);
/// assert_eq!(q.as_mops(), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyLadder {
    /// Ascending normalized levels, ending in 1.0.
    levels: Vec<f64>,
}

impl FrequencyLadder {
    /// Builds a ladder from normalized levels; 1.0 is appended if absent.
    ///
    /// # Panics
    ///
    /// Panics if any level is outside `(0, 1]` or levels are not strictly
    /// ascending.
    pub fn new(mut levels: Vec<f64>) -> Self {
        for &l in &levels {
            assert!(l > 0.0 && l <= 1.0, "levels must lie in (0, 1]");
        }
        for pair in levels.windows(2) {
            assert!(pair[0] < pair[1], "levels must strictly ascend");
        }
        if levels.last() != Some(&1.0) {
            levels.push(1.0);
        }
        Self { levels }
    }

    /// The continuous idealization (a single full-range "ladder" that
    /// passes every rate through unquantized).
    pub fn continuous() -> Self {
        Self { levels: Vec::new() }
    }

    /// A 2003-era four-point ladder: 25/50/75/100 %.
    pub fn four_point() -> Self {
        Self::new(vec![0.25, 0.5, 0.75])
    }

    /// A two-point (half/full) ladder.
    pub fn two_point() -> Self {
        Self::new(vec![0.5])
    }

    /// Normalized levels (empty for the continuous idealization).
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// `true` for the continuous idealization.
    pub fn is_continuous(&self) -> bool {
        self.levels.is_empty()
    }

    /// Quantizes `rate` up to the smallest available level ≥ it.
    /// The continuous ladder returns the rate unchanged (clamped to peak).
    pub fn quantize_up(&self, rate: ComputeRate, peak: ComputeRate) -> ComputeRate {
        let clamped = rate.min(peak);
        if self.levels.is_empty() {
            return clamped;
        }
        let frac = clamped.as_ops_per_second() / peak.as_ops_per_second();
        let level = self
            .levels
            .iter()
            .copied()
            .find(|&l| l >= frac - 1e-12)
            .unwrap_or(1.0);
        peak * level
    }
}

impl Default for FrequencyLadder {
    fn default() -> Self {
        Self::continuous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak() -> ComputeRate {
        ComputeRate::from_mops(1000.0)
    }

    #[test]
    fn quantizes_to_next_level_up() {
        let ladder = FrequencyLadder::four_point();
        let q = |mops: f64| {
            ladder
                .quantize_up(ComputeRate::from_mops(mops), peak())
                .as_mops()
        };
        assert_eq!(q(10.0), 250.0);
        assert_eq!(q(250.0), 250.0);
        assert_eq!(q(251.0), 500.0);
        assert_eq!(q(990.0), 1000.0);
    }

    #[test]
    fn continuous_is_identity() {
        let ladder = FrequencyLadder::continuous();
        let r = ComputeRate::from_mops(123.0);
        assert_eq!(ladder.quantize_up(r, peak()), r);
        assert!(ladder.is_continuous());
    }

    #[test]
    fn full_speed_always_available() {
        let ladder = FrequencyLadder::new(vec![0.3]);
        assert_eq!(ladder.levels(), &[0.3, 1.0]);
        let over = ComputeRate::from_mops(2000.0);
        assert_eq!(ladder.quantize_up(over, peak()), peak());
    }

    #[test]
    fn quantization_never_lowers_a_rate() {
        let ladder = FrequencyLadder::four_point();
        for mops in [1.0, 100.0, 400.0, 600.0, 800.0, 999.0] {
            let r = ComputeRate::from_mops(mops);
            assert!(ladder.quantize_up(r, peak()) >= r);
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn unsorted_levels_rejected() {
        let _ = FrequencyLadder::new(vec![0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn out_of_range_level_rejected() {
        let _ = FrequencyLadder::new(vec![1.5]);
    }
}
