//! Frequency-selection policies for periodic jobs.

use ami_units::{ComputeRate, OpCount, TimeSpan};

/// How the scheduler picks an execution speed for each job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DvsPolicy {
    /// Always run at peak speed; idle out the slack. The baseline.
    None,
    /// Run the whole set at the constant speed that just covers the
    /// worst-case utilization (classic static voltage scaling).
    UtilizationStatic,
    /// The static speed, raised per job when a late start puts its own
    /// worst case under deadline pressure (safe, no clairvoyance).
    WorstCaseStretch,
    /// Scale the static speed by each job's `actual/WCET` ratio — the
    /// occupancy-preserving oracle: every job holds the processor exactly
    /// as long as the static schedule budgeted for it, at the lowest
    /// feasible speed. A lower bound for constant-occupancy policies.
    Clairvoyant,
}

impl DvsPolicy {
    /// Occupancy the scaled schedule aims for. Preemptive EDF is feasible
    /// at 100 %, but the non-preemptive executor needs headroom for
    /// blocking by already-started jobs; 90 % absorbs one maximal job of
    /// the sets we target while keeping most of the voltage win.
    pub const OCCUPANCY_TARGET: f64 = 0.9;

    /// All policies, in increasing aggressiveness.
    pub fn all() -> [DvsPolicy; 4] {
        [
            DvsPolicy::None,
            DvsPolicy::UtilizationStatic,
            DvsPolicy::WorstCaseStretch,
            DvsPolicy::Clairvoyant,
        ]
    }

    /// Chooses the throughput for a job.
    ///
    /// * `wcet`/`actual` — worst-case and actual demand of the job;
    /// * `window` — the time available to it (its deadline share);
    /// * `peak` — the processor's peak throughput;
    /// * `set_utilization` — the set's worst-case utilization in `[0, 1]`.
    ///
    /// Returned rate is clamped to `peak`.
    pub fn job_rate(
        self,
        wcet: OpCount,
        actual: OpCount,
        window: TimeSpan,
        peak: ComputeRate,
        set_utilization: f64,
    ) -> ComputeRate {
        let needed = |ops: OpCount| ComputeRate::new(ops.as_ops() / window.as_seconds());
        let static_rate = peak * (set_utilization / Self::OCCUPANCY_TARGET).clamp(0.0, 1.0);
        let rate = match self {
            DvsPolicy::None => peak,
            DvsPolicy::UtilizationStatic => static_rate,
            DvsPolicy::WorstCaseStretch => needed(wcet).max(static_rate),
            DvsPolicy::Clairvoyant => {
                static_rate * (actual.as_ops() / wcet.as_ops()).clamp(0.0, 1.0)
            }
        };
        rate.min(peak)
    }
}

impl std::fmt::Display for DvsPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DvsPolicy::None => "no DVS",
            DvsPolicy::UtilizationStatic => "static (utilization)",
            DvsPolicy::WorstCaseStretch => "per-job WCET stretch",
            DvsPolicy::Clairvoyant => "clairvoyant (oracle)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mops(v: f64) -> ComputeRate {
        ComputeRate::from_mops(v)
    }

    #[test]
    fn none_always_peak() {
        let r = DvsPolicy::None.job_rate(
            OpCount::from_ops(1.0),
            OpCount::from_ops(1.0),
            TimeSpan::from_seconds(1.0),
            mops(100.0),
            0.1,
        );
        assert_eq!(r, mops(100.0));
    }

    #[test]
    fn stretch_rises_under_deadline_pressure() {
        // With a comfortable window the static rate governs…
        let relaxed = DvsPolicy::WorstCaseStretch.job_rate(
            OpCount::from_mega_ops(10.0),
            OpCount::from_mega_ops(4.0),
            TimeSpan::from_seconds(0.5),
            mops(100.0),
            0.2,
        );
        assert!((relaxed.as_mops() - 100.0 * 0.2 / DvsPolicy::OCCUPANCY_TARGET).abs() < 1e-9);
        // …but a squeezed window forces the WCET-meeting speed.
        let squeezed = DvsPolicy::WorstCaseStretch.job_rate(
            OpCount::from_mega_ops(10.0),
            OpCount::from_mega_ops(4.0),
            TimeSpan::from_seconds(0.125),
            mops(100.0),
            0.2,
        );
        assert!((squeezed.as_mops() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn clairvoyant_is_never_faster_than_stretch() {
        let wcet = OpCount::from_mega_ops(10.0);
        let actual = OpCount::from_mega_ops(6.0);
        let window = TimeSpan::from_seconds(0.1);
        let peak = mops(500.0);
        let stretch = DvsPolicy::WorstCaseStretch.job_rate(wcet, actual, window, peak, 0.2);
        let oracle = DvsPolicy::Clairvoyant.job_rate(wcet, actual, window, peak, 0.2);
        assert!(oracle <= stretch);
    }

    #[test]
    fn rates_clamp_to_peak() {
        let r = DvsPolicy::WorstCaseStretch.job_rate(
            OpCount::from_mega_ops(1000.0),
            OpCount::from_mega_ops(1000.0),
            TimeSpan::from_millis(1.0),
            mops(100.0),
            1.0,
        );
        assert_eq!(r, mops(100.0));
    }

    #[test]
    fn static_uses_utilization_over_occupancy_target() {
        let r = DvsPolicy::UtilizationStatic.job_rate(
            OpCount::from_ops(1.0),
            OpCount::from_ops(1.0),
            TimeSpan::from_seconds(1.0),
            mops(200.0),
            0.25,
        );
        assert!((r.as_mops() - 200.0 * 0.25 / DvsPolicy::OCCUPANCY_TARGET).abs() < 1e-9);
    }
}
